//! Minimal table rendering: fixed-width ASCII for the terminal and CSV
//! for the `results/` directory (the experiment harness commits one CSV
//! per reproduced table/figure).

use std::fmt::Write as _;
use std::io;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV.
    pub fn to_csv<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let line = |cells: &[String]| {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(w, "{}", line(&self.header))?;
        for row in &self.rows {
            writeln!(w, "{}", line(row))?;
        }
        Ok(())
    }
}

/// Writes a table to a CSV file, creating parent directories.
pub fn write_csv(table: &Table, path: &std::path::Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    table.to_csv(io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["n", "BMMM", "BMW"]);
        t.row(["5", "1.00", "1.05"]);
        t.row(["10", "1.00", "1.05"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("BMMM"));
        assert!(lines[2].trim_start().starts_with('5'));
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_output() {
        let mut buf = Vec::new();
        sample().to_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "n,BMMM,BMW\n5,1.00,1.05\n10,1.00,1.05\n");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a"]);
        t.row(["x,y"]);
        t.row(["say \"hi\""]);
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "a\n\"x,y\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("rmm_stats_test_csv");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/table.csv");
        write_csv(&sample(), &path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
