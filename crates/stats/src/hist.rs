//! Histograms and percentiles — distribution views of completion time
//! and contention counts beyond the paper's means.

use serde::{Deserialize, Serialize};

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow
/// bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// Whether `other` has the same shape (same `[lo, hi)` and bin
    /// count), i.e. can be merged bin-for-bin.
    pub fn same_shape(&self, other: &Histogram) -> bool {
        self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len()
    }

    /// Adds `other`'s counts into `self`. Counts are integers, so the
    /// merge is exact and order-independent (any merge tree yields the
    /// same bins).
    ///
    /// # Panics
    /// If the histograms have different shapes.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.same_shape(other),
            "cannot merge histograms of different shapes: \
             [{}, {})×{} vs [{}, {})×{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len()
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }

    /// A one-line ASCII sparkline of the distribution.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .map(|&c| {
                GLYPHS[(c as usize * (GLYPHS.len() - 1))
                    .div_ceil(max as usize)
                    .min(7)]
            })
            .collect()
    }
}

/// The `p`-th percentile (0–100) of `samples` by linear interpolation on
/// the sorted data. Returns 0 for empty input.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(5.5);
        h.record(9.9);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn out_of_range_samples_are_counted() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0);
        h.record(10.0);
        h.record(99.0);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.count(), 3);
        assert!(h.bins().iter().all(|&b| b == 0));
    }

    #[test]
    fn bin_edges() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_lo(2), 50.0);
    }

    #[test]
    fn sparkline_has_one_glyph_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 0.6, 1.5, 3.5] {
            h.record(x);
        }
        assert_eq!(h.sparkline().chars().count(), 4);
    }

    #[test]
    fn merge_adds_counts_exactly() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        a.record(-5.0);
        b.record(1.5);
        b.record(99.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bins()[0], 2);
        assert_eq!(a.out_of_range(), (1, 1));
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |xs: &[f64]| {
            let mut h = Histogram::new(0.0, 8.0, 8);
            for &x in xs {
                h.record(x);
            }
            h
        };
        let (a, b, c) = (mk(&[1.0, 2.0]), mk(&[3.0]), mk(&[7.5, 0.5]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c.clone();
        right.merge(&a);
        right.merge(&b);
        assert_eq!(left.bins(), right.bins());
        assert_eq!(left.count(), right.count());
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.merge(&Histogram::new(0.0, 10.0, 6));
    }

    #[test]
    fn percentile_of_known_data() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&data, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile(&data, 100.0) - 100.0).abs() < 1e-9);
        assert!((percentile(&data, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&data, 95.0) - 95.05).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        assert!((percentile(&[0.0, 10.0], 25.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_handles_degenerate_inputs() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[3.0, 3.0, 3.0], 50.0), 3.0);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let data = [5.0, 1.0, 9.0, 4.0, 2.0, 8.0];
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = percentile(&data, p);
            assert!(v >= prev);
            prev = v;
        }
    }
}
