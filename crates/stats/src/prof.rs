//! Self-profiling phase timers for the simulation engine.
//!
//! A [`Profiler`] is a fixed array of per-[`Phase`] accumulators
//! (nanoseconds + call counts) that the engine laps through as it steps.
//! The engine holds it behind an `Option<Box<Profiler>>`, so a disabled
//! profiler costs one branch per phase boundary — the same
//! zero-cost-when-off contract as the trace `EventSink`.
//!
//! An enabled profiler is a **deterministic sampling profiler**: it
//! times the phases of every `stride`-th unit (engine slot or fast-path
//! scan) with chained monotonic-clock reads and only bumps call
//! counters in between. Call counts are always exact; reported
//! nanoseconds are the sampled sums scaled back up by the stride — a
//! whole-run estimate whose per-phase *fractions* converge over the
//! thousands of slots a run executes. Stride 1 times everything and
//! reports exact totals; the engine's default stride keeps the
//! profiled-run overhead on a saturated network under the CI gate.
//!
//! Profiling is a pure observer: it never draws from the simulation RNG
//! and never perturbs dynamics, so profiled and unprofiled runs produce
//! byte-identical results (the differential suite checks this).

use serde::{Deserialize, Serialize};

/// The engine phases a [`Profiler`] attributes time to.
///
/// Together these cover the whole slot loop of `Engine::step`; the
/// extra [`Phase::HorizonScan`] covers the quiescence/wakeup-hint scan
/// of the event-horizon fast path (`Engine::advance_to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Building the per-node carrier-sense (busy) map.
    CarrierSense,
    /// Resolving ended transmissions at the channel (capture, FER).
    Resolve,
    /// Delivering resolved receptions to station `on_receive` handlers.
    Deliver,
    /// Per-slot station FSM dispatch (`on_slot`).
    FsmDispatch,
    /// Draining the outbox and launching new transmissions.
    TxLaunch,
    /// Scanning station wakeup hints in the event-horizon fast path.
    HorizonScan,
}

impl Phase {
    /// Every phase, in reporting order.
    pub const ALL: [Phase; 6] = [
        Phase::CarrierSense,
        Phase::Resolve,
        Phase::Deliver,
        Phase::FsmDispatch,
        Phase::TxLaunch,
        Phase::HorizonScan,
    ];

    /// Stable snake_case name used in reports and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::CarrierSense => "carrier_sense",
            Phase::Resolve => "resolve",
            Phase::Deliver => "deliver",
            Phase::FsmDispatch => "fsm_dispatch",
            Phase::TxLaunch => "tx_launch",
            Phase::HorizonScan => "horizon_scan",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::CarrierSense => 0,
            Phase::Resolve => 1,
            Phase::Deliver => 2,
            Phase::FsmDispatch => 3,
            Phase::TxLaunch => 4,
            Phase::HorizonScan => 5,
        }
    }
}

/// Accumulates per-phase wall-clock while the engine runs.
#[derive(Debug, Clone)]
pub struct Profiler {
    ns: [u64; Phase::ALL.len()],
    calls: [u64; Phase::ALL.len()],
    /// Every `stride`-th unit is timed (1 = time everything).
    stride: u64,
    /// Units registered so far via [`Profiler::begin_unit`].
    units: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A fresh profiler that times every unit (stride 1).
    pub fn new() -> Self {
        Profiler::with_stride(1)
    }

    /// A fresh profiler timing every `stride`-th unit (clamped to ≥ 1).
    pub fn with_stride(stride: u64) -> Self {
        Profiler {
            ns: Default::default(),
            calls: Default::default(),
            stride: stride.max(1),
            units: 0,
        }
    }

    /// Registers the start of one profiled unit (an engine slot, a
    /// fast-path scan) and says whether its phases should be *timed*
    /// this round or merely counted. Deterministic: the first unit is
    /// always timed, then every `stride`-th after it.
    #[inline]
    pub fn begin_unit(&mut self) -> bool {
        let timed = self.units.is_multiple_of(self.stride);
        self.units += 1;
        timed
    }

    /// Adds one timed lap of `ns` nanoseconds to `phase`.
    #[inline]
    pub fn record(&mut self, phase: Phase, ns: u64) {
        let i = phase.index();
        self.ns[i] += ns;
        self.calls[i] += 1;
    }

    /// Counts an execution of `phase` without timing it (the unsampled
    /// units of a stride > 1 profiler).
    #[inline]
    pub fn record_call(&mut self, phase: Phase) {
        self.calls[phase.index()] += 1;
    }

    /// Snapshot of the accumulated attribution. With stride > 1 the
    /// nanoseconds are the sampled sums scaled by the stride (a
    /// whole-run estimate); call counts are exact either way.
    pub fn report(&self) -> ProfileReport {
        let scale = |ns: u64| ns.saturating_mul(self.stride);
        ProfileReport {
            phases: Phase::ALL
                .iter()
                .map(|&p| PhaseStat {
                    name: p.name().to_string(),
                    ns: scale(self.ns[p.index()]),
                    calls: self.calls[p.index()],
                })
                .collect(),
            total_ns: scale(self.ns.iter().sum()),
        }
    }
}

/// One phase's share of a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase name (see [`Phase::name`]).
    pub name: String,
    /// Total nanoseconds attributed to the phase (a stride-scaled
    /// estimate when the profiler sampled, see [`Profiler::report`]).
    pub ns: u64,
    /// Number of phase executions counted (always exact).
    pub calls: u64,
}

/// Serializable per-phase cost attribution for one (or many, merged)
/// engine runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Per-phase totals, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStat>,
    /// Sum of all phase nanoseconds.
    pub total_ns: u64,
}

impl ProfileReport {
    /// The stat for `name`, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Fraction of total profiled time spent in `name` (0 when nothing
    /// was recorded).
    pub fn fraction(&self, name: &str) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.phase(name)
            .map_or(0.0, |p| p.ns as f64 / self.total_ns as f64)
    }

    /// Folds `other`'s attribution into `self`. Phases are matched by
    /// name; ones `self` has not seen yet are appended, so merging
    /// reports from identical engines is exact and order-independent.
    pub fn merge(&mut self, other: &ProfileReport) {
        for p in &other.phases {
            match self.phases.iter_mut().find(|mine| mine.name == p.name) {
                Some(mine) => {
                    mine.ns += p.ns;
                    mine.calls += p.calls;
                }
                None => self.phases.push(p.clone()),
            }
        }
        self.total_ns += other.total_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_phase() {
        let mut prof = Profiler::new();
        prof.record(Phase::Resolve, 100);
        prof.record(Phase::Resolve, 50);
        prof.record(Phase::TxLaunch, 7);
        let r = prof.report();
        assert_eq!(r.phase("resolve").unwrap().ns, 150);
        assert_eq!(r.phase("resolve").unwrap().calls, 2);
        assert_eq!(r.phase("tx_launch").unwrap().ns, 7);
        assert_eq!(r.total_ns, 157);
        assert!((r.fraction("resolve") - 150.0 / 157.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_stride_times_every_nth_unit_and_scales_ns() {
        let mut prof = Profiler::with_stride(4);
        // Units 0, 4, 8 are timed; the rest only count.
        let mut timed_units = 0;
        for _ in 0..9 {
            if prof.begin_unit() {
                timed_units += 1;
                prof.record(Phase::Resolve, 100);
            } else {
                prof.record_call(Phase::Resolve);
            }
        }
        assert_eq!(timed_units, 3);
        let r = prof.report();
        let resolve = r.phase("resolve").unwrap();
        assert_eq!(resolve.calls, 9, "calls are exact under sampling");
        assert_eq!(resolve.ns, 3 * 100 * 4, "ns scale by the stride");
        assert_eq!(r.total_ns, 1200);
    }

    #[test]
    fn stride_one_times_every_unit() {
        let mut prof = Profiler::new();
        for _ in 0..5 {
            assert!(prof.begin_unit());
        }
    }

    #[test]
    fn report_lists_every_phase_in_order() {
        let r = Profiler::new().report();
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "carrier_sense",
                "resolve",
                "deliver",
                "fsm_dispatch",
                "tx_launch",
                "horizon_scan"
            ]
        );
        assert_eq!(r.total_ns, 0);
        assert_eq!(r.fraction("resolve"), 0.0);
    }

    #[test]
    fn merge_adds_by_name() {
        let mut a = Profiler::new();
        a.record(Phase::Deliver, 10);
        let mut b = Profiler::new();
        b.record(Phase::Deliver, 5);
        b.record(Phase::CarrierSense, 3);
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.phase("deliver").unwrap().ns, 15);
        assert_eq!(r.phase("deliver").unwrap().calls, 2);
        assert_eq!(r.phase("carrier_sense").unwrap().ns, 3);
        assert_eq!(r.total_ns, 18);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut prof = Profiler::new();
        prof.record(Phase::FsmDispatch, 42);
        let r = prof.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
