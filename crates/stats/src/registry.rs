//! A small metrics registry: named monotonic counters and named
//! fixed-bucket histograms, serializable for export alongside a trace.
//!
//! Stored as sorted vectors of named entries rather than maps so the
//! JSON layout is stable and the derive-based serde stack applies.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};

/// A named monotonic counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedCounter {
    /// Metric name (e.g. `tx_frames`).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// A named histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedHistogram {
    /// Metric name (e.g. `batch_len`).
    pub name: String,
    /// The distribution.
    pub histogram: Histogram,
}

/// A collection of named counters and histograms for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: Vec<NamedCounter>,
    histograms: Vec<NamedHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first if
    /// needed.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self
            .counters
            .binary_search_by(|c| c.name.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].value += delta,
            Err(i) => self.counters.insert(
                i,
                NamedCounter {
                    name: name.to_string(),
                    value: delta,
                },
            ),
        }
    }

    /// Increments the counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// The value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|c| c.name.as_str().cmp(name))
            .map(|i| self.counters[i].value)
            .unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &[NamedCounter] {
        &self.counters
    }

    /// The histogram `name`, creating it with the given shape on first
    /// use. The shape of an existing histogram is kept as-is.
    pub fn histogram_mut(&mut self, name: &str, lo: f64, hi: f64, bins: usize) -> &mut Histogram {
        let i = match self
            .histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
        {
            Ok(i) => i,
            Err(i) => {
                self.histograms.insert(
                    i,
                    NamedHistogram {
                        name: name.to_string(),
                        histogram: Histogram::new(lo, hi, bins),
                    },
                );
                i
            }
        };
        &mut self.histograms[i].histogram
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].histogram)
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> &[NamedHistogram] {
        &self.histograms
    }

    /// Folds `other`'s counters and histograms into `self`.
    ///
    /// Counters and bins are integers, so the merge is exact and fully
    /// order-independent: merging a set of per-run registries in any
    /// order (or any tree shape — the partial merges a parallel sweep
    /// produces) yields identical contents, and the sorted storage keeps
    /// the serialized layout canonical without a separate finalize step.
    ///
    /// # Panics
    /// If a histogram name carries different shapes in the two
    /// registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for c in &other.counters {
            self.add(&c.name, c.value);
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|mine| mine.name.as_str().cmp(&h.name))
            {
                Ok(i) => self.histograms[i].histogram.merge(&h.histogram),
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut reg = MetricsRegistry::new();
        reg.inc("zeta");
        reg.add("alpha", 3);
        reg.inc("zeta");
        assert_eq!(reg.counter("zeta"), 2);
        assert_eq!(reg.counter("alpha"), 3);
        assert_eq!(reg.counter("missing"), 0);
        let names: Vec<&str> = reg.counters().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn histograms_create_on_first_use_and_keep_shape() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_mut("h", 0.0, 10.0, 10).record(5.0);
        // Second call with a different shape must not reset the data.
        reg.histogram_mut("h", 0.0, 99.0, 3).record(7.0);
        let h = reg.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bins().len(), 10);
        assert!(reg.histogram("other").is_none());
    }

    #[test]
    fn empty_registry_reports_empty() {
        let mut reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        reg.inc("x");
        assert!(!reg.is_empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let part = |names: &[&str], hist: f64| {
            let mut reg = MetricsRegistry::new();
            for n in names {
                reg.inc(n);
            }
            reg.histogram_mut("h", 0.0, 10.0, 10).record(hist);
            reg
        };
        let parts = [
            part(&["alpha", "zeta"], 1.0),
            part(&["zeta"], 9.5),
            part(&["beta", "alpha", "alpha"], 4.0),
        ];
        // Merge the same parts in two different orders / tree shapes.
        let mut left = MetricsRegistry::new();
        for p in &parts {
            left.merge(p);
        }
        let mut right_tail = parts[2].clone();
        right_tail.merge(&parts[0]);
        let mut right = parts[1].clone();
        right.merge(&right_tail);
        assert_eq!(
            serde_json::to_string(&left).unwrap(),
            serde_json::to_string(&right).unwrap(),
            "merge order must not leak into the serialized registry"
        );
        assert_eq!(left.counter("alpha"), 3);
        assert_eq!(left.counter("zeta"), 2);
        assert_eq!(left.histogram("h").unwrap().count(), 3);
    }

    #[test]
    fn merge_into_empty_clones_histograms() {
        let mut src = MetricsRegistry::new();
        src.histogram_mut("gaps", 0.0, 4.0, 4).record(1.0);
        src.add("n", 2);
        let mut dst = MetricsRegistry::new();
        dst.merge(&src);
        assert_eq!(dst.counter("n"), 2);
        assert_eq!(dst.histogram("gaps").unwrap().count(), 1);
        // And the source is untouched.
        assert_eq!(src.histogram("gaps").unwrap().count(), 1);
    }

    #[test]
    fn registry_round_trips_through_json() {
        let mut reg = MetricsRegistry::new();
        reg.add("frames", 42);
        reg.histogram_mut("gaps", 0.0, 8.0, 8).record(3.0);
        let json = serde_json::to_string(&reg).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter("frames"), 42);
        assert_eq!(back.histogram("gaps").unwrap().count(), 1);
        assert_eq!(
            back.histogram("gaps").unwrap().bins(),
            [0, 0, 0, 1, 0, 0, 0, 0]
        );
    }
}
