//! Per-message metrics and per-run aggregation.

use serde::{Deserialize, Serialize};

/// One message's fate, reduced to the fields the paper's metrics need.
/// Produced by the simulation runner from the sender's record plus the
/// ground-truth receiver ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MessageMetric {
    /// Multicast/broadcast (`true`) vs unicast (`false`).
    pub is_group: bool,
    /// Number of intended receivers.
    pub intended: usize,
    /// Intended receivers that actually decoded the data frame.
    pub delivered: usize,
    /// Intended receivers that were healthy (no injected fault active)
    /// for the message's whole service window. Equals `intended` when no
    /// fault plan is configured.
    pub reachable: usize,
    /// Reachable receivers that actually decoded the data frame.
    pub delivered_reachable: usize,
    /// The sender's protocol run finished (it believes the transfer done).
    pub completed: bool,
    /// The service timeout expired first.
    pub timed_out: bool,
    /// Contention phases spent on the message.
    pub contention_phases: u32,
    /// Slots from arrival to completion, when completed.
    pub completion_time: Option<u64>,
    /// Arrival slot (for end-of-run population cuts).
    pub arrival: u64,
}

impl MessageMetric {
    /// Fraction of intended receivers reached (1.0 for empty groups).
    pub fn delivered_frac(&self) -> f64 {
        if self.intended == 0 {
            1.0
        } else {
            self.delivered as f64 / self.intended as f64
        }
    }

    /// The paper's success criterion: completed before timing out *and*
    /// delivered to at least `threshold` of the intended receivers.
    pub fn successful(&self, threshold: f64) -> bool {
        self.completed && !self.timed_out && self.delivered_frac() + 1e-12 >= threshold
    }

    /// Fraction of *reachable* receivers reached (1.0 for groups with no
    /// reachable member). This is the fault-aware delivery figure: a
    /// crashed receiver cannot count against the protocol.
    pub fn reachable_frac(&self) -> f64 {
        if self.reachable == 0 {
            1.0
        } else {
            self.delivered_reachable as f64 / self.reachable as f64
        }
    }
}

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Messages in the population.
    pub messages: usize,
    /// Successful delivery rate at the configured threshold.
    pub delivery_rate: f64,
    /// Mean contention phases per message.
    pub avg_contention_phases: f64,
    /// Mean completion time over completed messages (slots).
    pub avg_completion_time: f64,
    /// Mean delivered fraction over all messages.
    pub avg_delivered_frac: f64,
    /// Mean delivered fraction counting only *reachable* (unfaulted)
    /// receivers. Equals `avg_delivered_frac` when no faults are
    /// configured.
    pub avg_reachable_frac: f64,
}

impl RunMetrics {
    /// Computes the paper's metrics over `messages` at the given
    /// reliability `threshold`. By convention only group messages are
    /// counted (the figures compare multicast service); pass
    /// pre-filtered slices for other populations.
    pub fn compute(messages: &[MessageMetric], threshold: f64) -> RunMetrics {
        let n = messages.len();
        if n == 0 {
            return RunMetrics {
                messages: 0,
                delivery_rate: 0.0,
                avg_contention_phases: 0.0,
                avg_completion_time: 0.0,
                avg_delivered_frac: 0.0,
                avg_reachable_frac: 0.0,
            };
        }
        let successes = messages.iter().filter(|m| m.successful(threshold)).count();
        let phases: u64 = messages
            .iter()
            .map(|m| u64::from(m.contention_phases))
            .sum();
        let (ct_sum, ct_n) = messages
            .iter()
            .filter_map(|m| m.completion_time)
            .fold((0u64, 0usize), |(s, c), t| (s + t, c + 1));
        let frac_sum: f64 = messages.iter().map(|m| m.delivered_frac()).sum();
        let reach_sum: f64 = messages.iter().map(|m| m.reachable_frac()).sum();
        RunMetrics {
            messages: n,
            delivery_rate: successes as f64 / n as f64,
            avg_contention_phases: phases as f64 / n as f64,
            avg_completion_time: if ct_n == 0 {
                0.0
            } else {
                ct_sum as f64 / ct_n as f64
            },
            avg_delivered_frac: frac_sum / n as f64,
            avg_reachable_frac: reach_sum / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(
        intended: usize,
        delivered: usize,
        completed: bool,
        timed_out: bool,
    ) -> MessageMetric {
        MessageMetric {
            is_group: true,
            intended,
            delivered,
            reachable: intended,
            delivered_reachable: delivered,
            completed,
            timed_out,
            contention_phases: 2,
            completion_time: completed.then_some(30),
            arrival: 0,
        }
    }

    #[test]
    fn full_delivery_succeeds_at_any_threshold() {
        let m = metric(5, 5, true, false);
        for t in [0.5, 0.9, 1.0] {
            assert!(m.successful(t));
        }
    }

    #[test]
    fn threshold_cuts_partial_delivery() {
        let m = metric(10, 8, true, false);
        assert!(m.successful(0.8));
        assert!(!m.successful(0.9));
    }

    #[test]
    fn timeout_always_fails() {
        let m = metric(5, 5, false, true);
        assert!(!m.successful(0.5));
    }

    #[test]
    fn completed_but_under_threshold_fails() {
        // BSMA's failure mode: sender believes done, receivers disagree.
        let m = metric(4, 1, true, false);
        assert!(!m.successful(0.9));
        assert!((m.delivered_frac() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_group_counts_as_fully_delivered() {
        let m = metric(0, 0, true, false);
        assert_eq!(m.delivered_frac(), 1.0);
        assert!(m.successful(1.0));
    }

    #[test]
    fn run_metrics_aggregates() {
        let msgs = vec![
            metric(5, 5, true, false), // success
            metric(5, 2, true, false), // under threshold
            metric(5, 5, false, true), // timeout
        ];
        let r = RunMetrics::compute(&msgs, 0.9);
        assert_eq!(r.messages, 3);
        assert!((r.delivery_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.avg_contention_phases - 2.0).abs() < 1e-12);
        // Two messages completed, both at 30 slots.
        assert!((r.avg_completion_time - 30.0).abs() < 1e-12);
        assert!((r.avg_delivered_frac - (1.0 + 0.4 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reachable_frac_ignores_faulted_receivers() {
        // 5 intended, 2 crashed: only 3 reachable, all 3 delivered.
        let mut m = metric(5, 3, true, false);
        m.reachable = 3;
        m.delivered_reachable = 3;
        assert!((m.delivered_frac() - 0.6).abs() < 1e-12);
        assert_eq!(m.reachable_frac(), 1.0);
        // Whole group faulted: vacuously delivered.
        m.reachable = 0;
        m.delivered_reachable = 0;
        assert_eq!(m.reachable_frac(), 1.0);
    }

    #[test]
    fn aggregate_reachable_matches_delivered_without_faults() {
        let msgs = vec![metric(5, 5, true, false), metric(5, 2, true, false)];
        let r = RunMetrics::compute(&msgs, 0.9);
        assert!((r.avg_reachable_frac - r.avg_delivered_frac).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_all_zero() {
        let r = RunMetrics::compute(&[], 0.9);
        assert_eq!(r.messages, 0);
        assert_eq!(r.delivery_rate, 0.0);
    }
}
