//! Cross-run summaries: mean, standard deviation, 95% confidence
//! interval. The paper reports means over 100 runs with different random
//! seeds; we additionally carry the CI so shape comparisons are honest.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`. An empty sample yields
    /// all-zero statistics.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                ci95: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary {
                n,
                mean,
                std: 0.0,
                ci95: 0.0,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std = var.sqrt();
        let ci95 = 1.96 * std / (n as f64).sqrt();
        Summary { n, mean, std, ci95 }
    }

    /// `mean ± ci95` formatted for tables.
    pub fn display(&self) -> String {
        if self.n <= 1 {
            format!("{:.3}", self.mean)
        } else {
            format!("{:.3} ±{:.3}", self.mean, self.ci95)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_has_no_spread() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_mean_and_std() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with n-1: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let big: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::of(&big);
        assert!(big.ci95 < small.ci95);
    }

    #[test]
    fn constant_samples_have_zero_ci() {
        let s = Summary::of(&[2.0; 50]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Summary::of(&[1.0]).display(), "1.000");
        let d = Summary::of(&[1.0, 2.0]).display();
        assert!(d.starts_with("1.500 ±"));
    }
}
