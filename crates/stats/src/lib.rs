//! Metrics and statistics for the multicast MAC evaluation.
//!
//! The paper's three evaluation metrics (Section 7):
//!
//! * **successful delivery rate** — successful transmissions / requests,
//!   where a transmission succeeds iff it completes before the service
//!   timeout *and* reaches at least the *reliability threshold* fraction
//!   of its intended receivers,
//! * **average number of contention phases** per message,
//! * **average message completion time**.
//!
//! [`MessageMetric`] is the protocol-agnostic per-message record these
//! are computed from; [`Summary`] aggregates per-run values across seeds
//! with 95% confidence intervals; [`table`] renders result tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod merge;
pub mod metrics;
pub mod prof;
pub mod prom;
pub mod registry;
pub mod summary;
pub mod table;

pub use hist::{percentile, Histogram};
pub use merge::RunMetricsMerge;
pub use metrics::{MessageMetric, RunMetrics};
pub use prof::{Phase, PhaseStat, ProfileReport, Profiler};
pub use prom::{render_profile, render_registry};
pub use registry::{MetricsRegistry, NamedCounter, NamedHistogram};
pub use summary::Summary;
pub use table::{write_csv, Table};
