//! Order-independent partial merging of per-run metrics.
//!
//! A parallel sweep finishes its runs in a nondeterministic order, but
//! float addition is not associative — summing per-run means in arrival
//! order would make the aggregate depend on scheduling. [`RunMetricsMerge`]
//! therefore *collects* per-run metrics keyed by seed (collection order
//! is irrelevant) and only sums in [`RunMetricsMerge::finalize`], which
//! first sorts by seed. Any merge tree over any partition of the runs
//! finalizes to the bit-identical aggregate the serial runner computes
//! over its seed-ordered results.

use crate::metrics::RunMetrics;
use serde::{Deserialize, Serialize};

/// An accumulating, order-independent partial merge of per-run
/// [`RunMetrics`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetricsMerge {
    parts: Vec<SeededMetrics>,
}

/// One run's metrics tagged with the seed that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SeededMetrics {
    seed: u64,
    metrics: RunMetrics,
}

impl RunMetricsMerge {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunMetricsMerge::default()
    }

    /// Absorbs one run's metrics. Order of absorption never matters.
    pub fn absorb(&mut self, seed: u64, metrics: RunMetrics) {
        self.parts.push(SeededMetrics { seed, metrics });
    }

    /// Folds another partial merge in (e.g. one worker's share of a
    /// sweep point).
    pub fn merge(&mut self, other: RunMetricsMerge) {
        self.parts.extend(other.parts);
    }

    /// Runs absorbed so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether nothing has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Collapses the partial into the across-run mean, summing in
    /// canonical (seed-ascending) order so the result is bit-identical
    /// no matter how the partials were produced or combined. Ties on
    /// seed keep absorption order (the serial runner never produces
    /// duplicate seeds).
    pub fn finalize(&self) -> RunMetrics {
        let mut parts: Vec<&SeededMetrics> = self.parts.iter().collect();
        parts.sort_by_key(|p| p.seed);
        let n = parts.len().max(1) as f64;
        let sum = |get: &dyn Fn(&RunMetrics) -> f64| -> f64 {
            parts.iter().map(|p| get(&p.metrics)).sum::<f64>() / n
        };
        RunMetrics {
            messages: parts.iter().map(|p| p.metrics.messages).sum(),
            delivery_rate: sum(&|m| m.delivery_rate),
            avg_contention_phases: sum(&|m| m.avg_contention_phases),
            avg_completion_time: sum(&|m| m.avg_completion_time),
            avg_delivered_frac: sum(&|m| m.avg_delivered_frac),
            avg_reachable_frac: sum(&|m| m.avg_reachable_frac),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(x: f64) -> RunMetrics {
        RunMetrics {
            messages: 10,
            delivery_rate: x,
            avg_contention_phases: 1.0 + x,
            avg_completion_time: 30.0 * x,
            avg_delivered_frac: x / 2.0,
            avg_reachable_frac: x / 3.0,
        }
    }

    #[test]
    fn finalize_matches_serial_mean() {
        let xs = [0.91, 0.8700001, 0.99, 0.123456789];
        let mut acc = RunMetricsMerge::new();
        for (seed, &x) in xs.iter().enumerate() {
            acc.absorb(seed as u64, metrics(x));
        }
        let out = acc.finalize();
        let serial: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert_eq!(out.delivery_rate.to_bits(), serial.to_bits());
        assert_eq!(out.messages, 40);
    }

    #[test]
    fn any_merge_tree_finalizes_identically() {
        // Values chosen so float addition order actually matters.
        let xs = [1e16, 1.0, -1e16, 3.0, 1e-8, 7.77];
        let absorb_all = |order: &[usize]| {
            let mut acc = RunMetricsMerge::new();
            for &i in order {
                acc.absorb(i as u64, metrics(xs[i]));
            }
            acc
        };
        let flat = absorb_all(&[0, 1, 2, 3, 4, 5]).finalize();
        let reversed = absorb_all(&[5, 4, 3, 2, 1, 0]).finalize();
        let mut tree = absorb_all(&[3, 1]);
        tree.merge(absorb_all(&[5, 0]));
        tree.merge(absorb_all(&[2, 4]));
        let tree = tree.finalize();
        for other in [reversed, tree] {
            assert_eq!(flat.delivery_rate.to_bits(), other.delivery_rate.to_bits());
            assert_eq!(
                flat.avg_completion_time.to_bits(),
                other.avg_completion_time.to_bits()
            );
            assert_eq!(flat.messages, other.messages);
        }
    }

    #[test]
    fn empty_finalizes_to_zero() {
        let out = RunMetricsMerge::new().finalize();
        assert_eq!(out.messages, 0);
        assert_eq!(out.delivery_rate, 0.0);
    }

    #[test]
    fn partial_round_trips_through_json() {
        let mut acc = RunMetricsMerge::new();
        acc.absorb(3, metrics(0.5));
        acc.absorb(1, metrics(0.25));
        let json = serde_json::to_string(&acc).unwrap();
        let back: RunMetricsMerge = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.finalize().delivery_rate.to_bits(),
            acc.finalize().delivery_rate.to_bits()
        );
    }
}
