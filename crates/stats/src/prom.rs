//! Prometheus text-exposition rendering for the registry and profiler.
//!
//! Emits the [text-based exposition format] so snapshots can be scraped
//! or diffed directly. Histograms render as cumulative `_bucket` series
//! plus `_count`; we deliberately omit the conventional `_sum` series —
//! the registry keeps histograms integer-exact so parallel merges are
//! order-independent, and a float sum would break that contract.
//!
//! [text-based exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::prof::ProfileReport;
use crate::registry::MetricsRegistry;
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Formats a bucket upper bound the way Prometheus expects (`+Inf` for
/// the overflow bucket, shortest-round-trip decimals otherwise).
fn le(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{bound}")
    }
}

/// Renders every counter and histogram of `reg` in Prometheus text
/// exposition format, each metric name prefixed with `prefix_`.
pub fn render_registry(reg: &MetricsRegistry, prefix: &str) -> String {
    let mut out = String::new();
    let prefix = sanitize(prefix);
    for c in reg.counters() {
        let name = format!("{prefix}_{}", sanitize(&c.name));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for h in reg.histograms() {
        let name = format!("{prefix}_{}", sanitize(&h.name));
        let _ = writeln!(out, "# TYPE {name} histogram");
        let hist = &h.histogram;
        let (underflow, overflow) = hist.out_of_range();
        let mut cumulative: u64 = underflow;
        for (i, &count) in hist.bins().iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                le(hist.bin_lo(i + 1))
            );
        }
        cumulative += overflow;
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }
    out
}

/// Renders a [`ProfileReport`] as two counter families,
/// `<prefix>_phase_ns{phase="..."}` and `<prefix>_phase_calls{phase="..."}`,
/// plus a `<prefix>_total_ns` counter.
pub fn render_profile(report: &ProfileReport, prefix: &str) -> String {
    let mut out = String::new();
    let prefix = sanitize(prefix);
    let _ = writeln!(out, "# TYPE {prefix}_phase_ns counter");
    for p in &report.phases {
        let _ = writeln!(out, "{prefix}_phase_ns{{phase=\"{}\"}} {}", p.name, p.ns);
    }
    let _ = writeln!(out, "# TYPE {prefix}_phase_calls counter");
    for p in &report.phases {
        let _ = writeln!(
            out,
            "{prefix}_phase_calls{{phase=\"{}\"}} {}",
            p.name, p.calls
        );
    }
    let _ = writeln!(out, "# TYPE {prefix}_total_ns counter");
    let _ = writeln!(out, "{prefix}_total_ns {}", report.total_ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prof::{Phase, Profiler};

    #[test]
    fn counters_render_with_type_lines() {
        let mut reg = MetricsRegistry::new();
        reg.add("tx_frames", 42);
        let text = render_registry(&reg, "rmm");
        assert!(text.contains("# TYPE rmm_tx_frames counter"));
        assert!(text.contains("rmm_tx_frames 42"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram_mut("gap", 0.0, 4.0, 4);
        h.record(0.5); // bin 0
        h.record(2.5); // bin 2
        h.record(99.0); // overflow
        let text = render_registry(&reg, "rmm");
        assert!(text.contains("# TYPE rmm_gap histogram"));
        assert!(text.contains("rmm_gap_bucket{le=\"1\"} 1"));
        assert!(text.contains("rmm_gap_bucket{le=\"3\"} 2"));
        assert!(text.contains("rmm_gap_bucket{le=\"4\"} 2"));
        assert!(text.contains("rmm_gap_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("rmm_gap_count 3"));
        // No float sum: the registry's merge contract is integer-exact.
        assert!(!text.contains("rmm_gap_sum"));
    }

    #[test]
    fn profile_renders_all_phases() {
        let mut prof = Profiler::new();
        prof.record(Phase::Resolve, 120);
        prof.record(Phase::FsmDispatch, 80);
        let text = render_profile(&prof.report(), "rmm_engine");
        assert!(text.contains("rmm_engine_phase_ns{phase=\"resolve\"} 120"));
        assert!(text.contains("rmm_engine_phase_calls{phase=\"fsm_dispatch\"} 1"));
        assert!(text.contains("rmm_engine_phase_ns{phase=\"tx_launch\"} 0"));
        assert!(text.contains("rmm_engine_total_ns 200"));
    }

    #[test]
    fn names_are_sanitized() {
        let mut reg = MetricsRegistry::new();
        reg.inc("weird-name.x");
        let text = render_registry(&reg, "p");
        assert!(text.contains("p_weird_name_x 1"));
    }
}
