//! Graceful degradation under injected faults: every multicast protocol
//! with a per-destination retry budget must survive a crashed receiver —
//! finish in bounded work, record the victim in `gave_up`, emit a
//! `GiveUp` trace event, and never address the victim again afterwards.
//! Protocols without per-destination state fall back to the node-level
//! consecutive-retry ceiling (`timing.retry_limit`).

use proptest::prelude::*;
use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, Outcome, ProtocolKind, TrafficKind};
use rmm_sim::{Capture, Engine, FaultPlan, NodeId, Topology, TraceEvent};

/// A star: node 0 in the middle, `n` receivers around it, single cell.
fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

/// Protocols that carry a per-destination retry budget.
const BUDGETED: [ProtocolKind; 5] = [
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
    ProtocolKind::LeaderBased,
    ProtocolKind::BmmmUncoordinated,
];

struct Run {
    nodes: Vec<MacNode>,
    engine: Engine,
}

/// One multicast from node 0 to all receivers with `faults` injected.
/// The service timeout is effectively disabled so termination comes from
/// the retry budgets alone, not from the timeout.
fn run_faulted(
    protocol: ProtocolKind,
    n_receivers: usize,
    faults: FaultPlan,
    slots: u64,
    seed: u64,
) -> Run {
    let timing = MacTiming {
        timeout: slots,
        ..Default::default()
    };
    let topo = star(n_receivers);
    let mut nodes = MacNode::build_network(&topo, protocol, timing, seed);
    let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
    engine.set_faults(faults);
    engine.enable_trace();
    let receivers: Vec<NodeId> = (1..=n_receivers as u32).map(NodeId).collect();
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
    engine.run(&mut nodes, slots);
    for node in &mut nodes {
        node.drain_unfinished(slots);
    }
    Run { nodes, engine }
}

/// Give-up events emitted by node 0, as `(slot, dst, after_retries)`.
fn give_ups(run: &Run) -> Vec<(u64, NodeId, u32)> {
    run.engine
        .trace()
        .unwrap()
        .events()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::GiveUp {
                slot,
                node,
                dst,
                after_retries,
                ..
            } if *node == NodeId(0) => Some((*slot, *dst, *after_retries)),
            _ => None,
        })
        .collect()
}

/// Whether node 0 addresses `dst` directly (unicast frame or poll)
/// strictly after `after` in the trace.
fn addressed_after(run: &Run, dst: NodeId, after: u64) -> bool {
    run.engine
        .trace()
        .unwrap()
        .events()
        .iter()
        .any(|ev| match ev {
            TraceEvent::TxStart {
                slot,
                node,
                dest: Some(d),
                ..
            } => *node == NodeId(0) && *d == dst && *slot > after,
            TraceEvent::PollSent {
                slot, node, target, ..
            } => *node == NodeId(0) && *target == dst && *slot > after,
            _ => false,
        })
}

#[test]
fn crashed_receiver_is_given_up_and_service_completes() {
    let crashed = NodeId(1);
    for protocol in BUDGETED {
        let run = run_faulted(protocol, 4, FaultPlan::new().crash(crashed, 0), 6_000, 42);
        let rec = &run.nodes[0].records()[0];
        assert!(
            matches!(rec.outcome, Outcome::Completed(_)),
            "{protocol:?}: expected completion, got {:?}",
            rec.outcome
        );
        assert!(
            rec.gave_up.contains(&crashed),
            "{protocol:?}: gave_up = {:?}",
            rec.gave_up
        );
        let gu = give_ups(&run);
        let first = gu.iter().find(|(_, d, _)| *d == crashed);
        let (giveup_slot, _, after_retries) =
            *first.unwrap_or_else(|| panic!("{protocol:?}: no GiveUp event for {crashed:?}"));
        assert!(
            after_retries >= 1 && after_retries <= MacTiming::default().dest_retry_limit,
            "{protocol:?}: after_retries = {after_retries}"
        );
        assert!(
            !addressed_after(&run, crashed, giveup_slot),
            "{protocol:?}: crashed receiver still addressed after give-up"
        );
        // The healthy receivers all got the data.
        for r in 2..=4u32 {
            assert!(
                run.nodes[r as usize].received().len() == 1,
                "{protocol:?}: healthy receiver {r} missed the message"
            );
        }
    }
}

#[test]
fn leader_rotation_survives_a_crashed_leader() {
    // Receiver 1 is the leader by convention; crash it. The sender must
    // demote it and finish the exchange with receiver 2 as leader.
    let run = run_faulted(
        ProtocolKind::LeaderBased,
        3,
        FaultPlan::new().crash(NodeId(1), 0),
        6_000,
        7,
    );
    let rec = &run.nodes[0].records()[0];
    assert!(
        matches!(rec.outcome, Outcome::Completed(_)),
        "{:?}",
        rec.outcome
    );
    assert_eq!(rec.gave_up, vec![NodeId(1)]);
    assert!(
        rec.acked.contains(&NodeId(2)),
        "rotated leader should have ACKed: {:?}",
        rec.acked
    );
}

#[test]
fn all_receivers_crashed_terminates_bounded() {
    // With every receiver dead no protocol can deliver anything; the
    // point is that each one *stops* — either by exhausting its
    // per-destination budgets or by tripping the node-level retry
    // ceiling — instead of contending forever.
    let t = MacTiming::default();
    let all_protocols = [
        ProtocolKind::TangGerla,
        ProtocolKind::Bsma,
        ProtocolKind::Bmw,
        ProtocolKind::Bmmm,
        ProtocolKind::Lamm,
        ProtocolKind::LeaderBased,
        ProtocolKind::BmmmUncoordinated,
    ];
    for protocol in all_protocols {
        let faults = FaultPlan::new()
            .crash(NodeId(1), 0)
            .crash(NodeId(2), 0)
            .crash(NodeId(3), 0);
        let run = run_faulted(protocol, 3, faults, 20_000, 9);
        let rec = &run.nodes[0].records()[0];
        assert!(
            !matches!(rec.outcome, Outcome::Pending),
            "{protocol:?}: still pending after 20k slots: {:?}",
            rec.outcome
        );
        // Work bound: at worst one full per-destination budget per
        // receiver plus a node-ceiling run of consecutive failures.
        let bound = 3 * t.dest_retry_limit + t.retry_limit + 2;
        assert!(
            rec.contention_phases <= bound,
            "{protocol:?}: {} contention phases (bound {bound})",
            rec.contention_phases
        );
    }
}

#[test]
fn retry_ceiling_bounds_protocols_without_budgets() {
    // BSMA and Tang–Gerla have no per-destination state: the node-level
    // ceiling is their only bound. All receivers crashed ⇒ no CTS ever ⇒
    // the sender fails after at most retry_limit + 1 contention phases.
    let t = MacTiming::default();
    for protocol in [ProtocolKind::Bsma, ProtocolKind::TangGerla] {
        let faults = FaultPlan::new().crash(NodeId(1), 0).crash(NodeId(2), 0);
        let run = run_faulted(protocol, 2, faults, 20_000, 3);
        let rec = &run.nodes[0].records()[0];
        assert!(
            matches!(rec.outcome, Outcome::Failed(_)),
            "{protocol:?}: {:?}",
            rec.outcome
        );
        assert!(
            rec.contention_phases <= t.retry_limit + 1,
            "{protocol:?}: {} phases",
            rec.contention_phases
        );
    }
}

#[test]
fn receiver_reboot_mid_batch_does_not_wedge_the_sender() {
    // A receiver vanishes early in the batch and reappears at slot 700.
    // The sender must terminate the first message in bounded work, the
    // healthy receivers must still get it, and a second message sent
    // after the recovery must reach the rebooted node too.
    for protocol in BUDGETED {
        let timing = MacTiming {
            timeout: 6_000,
            ..Default::default()
        };
        let topo = star(3);
        let mut nodes = MacNode::build_network(&topo, protocol, timing, 11);
        let mut engine = Engine::new(topo, Capture::ZorziRao, 11);
        engine.set_faults(FaultPlan::new().reboot(NodeId(1), 5, 700));
        let receivers: Vec<NodeId> = (1..=3).map(NodeId).collect();
        nodes[0].enqueue(TrafficKind::Multicast, receivers.clone(), 0);
        engine.run(&mut nodes, 2_000);
        let rec = &nodes[0].records()[0];
        assert!(
            !matches!(rec.outcome, Outcome::Pending),
            "{protocol:?}: sender wedged on a rebooting receiver: {:?}",
            rec.outcome
        );
        for (r, node) in nodes.iter().enumerate().take(4).skip(2) {
            assert_eq!(
                node.received().len(),
                1,
                "{protocol:?}: healthy receiver {r} missed the message"
            );
        }
        nodes[0].enqueue(TrafficKind::Multicast, receivers, 2_000);
        engine.run(&mut nodes, 2_000);
        for node in &mut nodes {
            node.drain_unfinished(4_000);
        }
        assert!(
            matches!(nodes[0].records()[1].outcome, Outcome::Completed(_)),
            "{protocol:?}: post-recovery message did not complete: {:?}",
            nodes[0].records()[1].outcome
        );
        assert!(
            nodes[1].received().iter().any(|m| m.seq == 1),
            "{protocol:?}: rebooted receiver missed the post-recovery message"
        );
    }
}

#[test]
fn sender_reboot_cold_resets_service_and_queue() {
    // Unbounded retry budgets so only the reboot itself can kill the
    // in-flight exchange: the active message and the one queued behind
    // it must both be recorded as failed at the recovery slot, and a
    // message enqueued after recovery must complete normally.
    let timing = MacTiming {
        timeout: 10_000,
        retry_limit: u32::MAX,
        dest_retry_limit: u32::MAX,
        ..Default::default()
    };
    let topo = star(2);
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, timing, 5);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 5);
    // The window opens at slot 2, before DIFS can elapse, so nothing the
    // sender does before the blackout ever reaches the air.
    engine.set_faults(FaultPlan::new().reboot(NodeId(0), 2, 300));
    let receivers = vec![NodeId(1), NodeId(2)];
    nodes[0].enqueue(TrafficKind::Multicast, receivers.clone(), 0);
    nodes[0].enqueue(TrafficKind::Multicast, receivers.clone(), 0);
    engine.run(&mut nodes, 400);
    let recs = nodes[0].records();
    assert_eq!(recs.len(), 2, "both pre-reboot messages should be closed");
    assert!(
        recs.iter()
            .all(|r| matches!(r.outcome, Outcome::Failed(300))),
        "pre-reboot messages should fail at the recovery slot: {:?}",
        recs.iter().map(|r| r.outcome).collect::<Vec<_>>()
    );
    assert!(
        recs[1].started.is_none(),
        "the queued message never entered service"
    );
    assert!(
        nodes[1].received().is_empty() && nodes[2].received().is_empty(),
        "nothing should have been delivered through the blackout"
    );
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 400);
    engine.run(&mut nodes, 2_000);
    for node in &mut nodes {
        node.drain_unfinished(2_400);
    }
    let recs = nodes[0].records();
    assert!(
        matches!(recs[2].outcome, Outcome::Completed(_)),
        "post-recovery message should complete: {:?}",
        recs[2].outcome
    );
    // MsgIds stay unique across the reset: the delivered message is seq 2.
    assert!(nodes[1].received().iter().all(|m| m.seq == 2));
    assert_eq!(nodes[1].received().len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any budgeted protocol, receiver count, victim, crash slot and
    /// seed: the sender terminates, and once it gives up on the victim it
    /// never addresses it again.
    #[test]
    fn no_post_give_up_polls(
        proto_sel in 0usize..BUDGETED.len(),
        n in 2usize..5,
        victim_sel in 0usize..4,
        crash_at in 0u64..500,
        seed in 0u64..1000,
    ) {
        let protocol = BUDGETED[proto_sel];
        let victim = NodeId(1 + (victim_sel % n) as u32);
        let run = run_faulted(
            protocol,
            n,
            FaultPlan::new().crash(victim, crash_at),
            8_000,
            seed,
        );
        let rec = &run.nodes[0].records()[0];
        prop_assert!(
            !matches!(rec.outcome, Outcome::Pending),
            "{:?}: still pending", protocol
        );
        for (slot, dst, _) in give_ups(&run) {
            prop_assert!(
                !addressed_after(&run, dst, slot),
                "{:?}: {:?} addressed after give-up at {}", protocol, dst, slot
            );
        }
    }
}
