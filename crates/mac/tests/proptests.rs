//! Property-based tests for the MAC layer: protocol invariants that must
//! hold for *every* random topology, traffic pattern and protocol.

use proptest::prelude::*;
use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, Outcome, ProtocolKind, TrafficKind};
use rmm_sim::{Capture, Engine, NodeId, Topology};

fn arb_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Ieee80211),
        Just(ProtocolKind::TangGerla),
        Just(ProtocolKind::Bsma),
        Just(ProtocolKind::Bmw),
        Just(ProtocolKind::Bmmm),
        Just(ProtocolKind::Lamm),
    ]
}

/// A random small network plus a random batch of requests, fully run.
fn run_random(
    protocol: ProtocolKind,
    positions: &[(f64, f64)],
    requests: &[(usize, u8, u64)],
    seed: u64,
    slots: u64,
) -> (Vec<MacNode>, usize) {
    let pts: Vec<Point> = positions.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::new(pts, 0.3);
    let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), seed);
    let mut engine = Engine::new(topo.clone(), Capture::ZorziRao, seed);
    // Resolve requests to (arrival, node, kind, receivers), dropping ones
    // from isolated stations.
    let mut plan: Vec<(u64, usize, TrafficKind, Vec<NodeId>)> = Vec::new();
    for &(src, kind_sel, arrival) in requests {
        let src = src % topo.len();
        let neighbors = topo.neighbors(NodeId(src as u32)).to_vec();
        if neighbors.is_empty() {
            continue;
        }
        let arrival = arrival % (slots / 2);
        let (kind, receivers) = match kind_sel % 3 {
            0 => (TrafficKind::Unicast, vec![neighbors[0]]),
            1 => {
                let take = 1 + (kind_sel as usize % neighbors.len());
                (TrafficKind::Multicast, neighbors[..take].to_vec())
            }
            _ => (TrafficKind::Broadcast, neighbors),
        };
        plan.push((arrival, src, kind, receivers));
    }
    let enqueued = plan.len();
    // Inject each request at its arrival slot, as the real runner does.
    for t in 0..slots {
        for (arrival, src, kind, receivers) in &plan {
            if *arrival == t {
                nodes[*src].enqueue(*kind, receivers.clone(), t);
            }
        }
        engine.step(&mut nodes);
    }
    for n in &mut nodes {
        n.drain_unfinished(slots);
    }
    (nodes, enqueued)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation and record sanity across all protocols: every request
    /// produces exactly one record; acked/covered receivers are intended
    /// receivers that really hold the data; phase counters are sane.
    #[test]
    fn record_invariants(
        protocol in arb_protocol(),
        positions in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 6..12),
        requests in prop::collection::vec((0usize..12, any::<u8>(), 0u64..400), 0..10),
        seed in 0u64..500,
    ) {
        let (nodes, enqueued) = run_random(protocol, &positions, &requests, seed, 800);
        let total_records: usize = nodes.iter().map(|n| n.records().len()).sum();
        prop_assert_eq!(total_records, enqueued, "{:?}", protocol);
        for node in &nodes {
            for rec in node.records() {
                // Acked ⊆ intended, and acked nodes hold the data.
                for r in &rec.acked {
                    prop_assert!(rec.intended.contains(r));
                    prop_assert!(nodes[r.index()].received().contains(&rec.msg));
                }
                for r in &rec.assumed_covered {
                    prop_assert!(rec.intended.contains(r));
                    prop_assert!(!rec.acked.contains(r));
                }
                // Coverage closures only exist under LAMM.
                if protocol != ProtocolKind::Lamm {
                    prop_assert!(rec.assumed_covered.is_empty());
                }
                // Serviced records burned at least one contention phase.
                if rec.started.is_some() {
                    prop_assert!(rec.contention_phases >= 1);
                } else {
                    prop_assert_eq!(rec.contention_phases, 0);
                }
                // Completion implies service within the timeout.
                if let Outcome::Completed(at) = rec.outcome {
                    prop_assert!(at >= rec.arrival);
                    prop_assert!(at - rec.arrival <= MacTiming::default().timeout);
                }
            }
        }
    }

    /// The reliable protocols' core guarantee, fuzzed: completion implies
    /// every intended receiver holds the data.
    #[test]
    fn reliability_guarantee_fuzzed(
        protocol in prop_oneof![Just(ProtocolKind::Bmw), Just(ProtocolKind::Bmmm), Just(ProtocolKind::Lamm)],
        positions in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 6..12),
        requests in prop::collection::vec((0usize..12, any::<u8>(), 0u64..300), 1..8),
        seed in 0u64..500,
    ) {
        let (nodes, _) = run_random(protocol, &positions, &requests, seed, 800);
        for node in &nodes {
            for rec in node.records() {
                if rec.is_group() && rec.outcome.is_completed() {
                    for r in &rec.intended {
                        prop_assert!(
                            nodes[r.index()].received().contains(&rec.msg),
                            "{:?}: completed {} never reached {}",
                            protocol, rec.msg, r
                        );
                    }
                }
            }
        }
    }

    /// BMW burns at least one contention phase per intended receiver on
    /// completed multicasts — the paper's "at least n contention phases".
    #[test]
    fn bmw_pays_n_phases(
        positions in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 6..10),
        requests in prop::collection::vec((0usize..10, any::<u8>(), 0u64..200), 1..5),
        seed in 0u64..200,
    ) {
        let (nodes, _) = run_random(ProtocolKind::Bmw, &positions, &requests, seed, 800);
        for node in &nodes {
            for rec in node.records() {
                if rec.is_group() && rec.outcome.is_completed() {
                    prop_assert!(
                        rec.contention_phases as usize >= rec.intended.len(),
                        "BMW completed {} receivers in {} phases",
                        rec.intended.len(),
                        rec.contention_phases
                    );
                }
            }
        }
    }

    /// Whole-network determinism at the MAC level: delivery ledgers and
    /// record outcomes repeat exactly for the same seed.
    #[test]
    fn mac_runs_are_deterministic(
        protocol in arb_protocol(),
        positions in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 6..10),
        seed in 0u64..100,
    ) {
        let requests = [(0usize, 7u8, 0u64), (1, 2, 10), (2, 5, 20)];
        let (a, _) = run_random(protocol, &positions, &requests, seed, 600);
        let (b, _) = run_random(protocol, &positions, &requests, seed, 600);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.records().len(), y.records().len());
            for (rx, ry) in x.records().iter().zip(y.records()) {
                prop_assert_eq!(rx.outcome, ry.outcome);
                prop_assert_eq!(rx.contention_phases, ry.contention_phases);
            }
            prop_assert_eq!(x.received().len(), y.received().len());
        }
    }
}
