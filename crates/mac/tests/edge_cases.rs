//! Edge-case and failure-injection tests: deterministic single-frame
//! losses driving each protocol's recovery path.

use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, Outcome, ProtocolKind, TrafficKind};
use rmm_sim::{
    Capture, Ctx, Dest, Engine, Frame, FrameKind, MsgId, NodeId, Station, Topology, TraceEvent,
};

fn nid(n: u32) -> NodeId {
    NodeId(n)
}

/// Mixed station type: real MAC nodes plus a scripted interferer.
enum TestStation {
    Mac(Box<MacNode>),
    Script(Vec<(u64, Frame)>),
}

impl Station for TestStation {
    fn on_receive(&mut self, frame: &Frame, captured: bool, ctx: &mut Ctx<'_>) {
        if let TestStation::Mac(m) = self {
            m.on_receive(frame, captured, ctx);
        }
    }
    fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
        match self {
            TestStation::Mac(m) => m.on_slot(ctx),
            TestStation::Script(plan) => {
                while let Some(pos) = plan.iter().position(|(s, _)| *s == ctx.now) {
                    let (_, frame) = plan.remove(pos);
                    ctx.send(frame);
                }
            }
        }
    }
}

/// S(0) multicasts to L(1) and C(2); jammer D(3) is audible only at C.
/// `cw_min = 0` pins the whole timeline: RTS at 4, DATA at [6, 11).
fn jammed_topology() -> Topology {
    Topology::new(
        vec![
            Point::new(0.00, 0.00), // S
            Point::new(0.15, 0.00), // L
            Point::new(0.00, 0.15), // C
            Point::new(0.00, 0.30), // D
        ],
        0.2,
    )
}

fn deterministic_timing() -> MacTiming {
    MacTiming {
        cw_min: 0,
        ..Default::default()
    }
}

fn jam_frame(at: u64) -> (u64, Frame) {
    (
        at,
        Frame::data(nid(3), Dest::Node(nid(2)), 0, MsgId::new(nid(3), 0), 3),
    )
}

fn run_jammed(
    protocol: ProtocolKind,
    jam: Vec<(u64, Frame)>,
    slots: u64,
) -> (Vec<TestStation>, Engine) {
    let topo = jammed_topology();
    let mut stations: Vec<TestStation> =
        MacNode::build_network(&topo, protocol, deterministic_timing(), 1)
            .into_iter()
            .map(|m| TestStation::Mac(Box::new(m)))
            .collect();
    stations[3] = TestStation::Script(jam);
    if let TestStation::Mac(m) = &mut stations[0] {
        m.enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
    }
    let mut engine = Engine::new(topo, Capture::None, 1);
    engine.enable_trace();
    engine.run(&mut stations, slots);
    (stations, engine)
}

fn mac(stations: &[TestStation], i: usize) -> &MacNode {
    match &stations[i] {
        TestStation::Mac(m) => m,
        TestStation::Script(_) => panic!("station {i} is scripted"),
    }
}

fn count_tx(engine: &Engine, node: NodeId, kind: FrameKind) -> usize {
    engine
        .trace()
        .unwrap()
        .events()
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::TxStart { node: n, kind: k, .. } if *n == node && *k == kind))
        .count()
}

#[test]
fn bsma_nak_triggers_retransmission() {
    // With BSMA the batch is: group RTS at 4, CTS pile-up at 5 (destroyed
    // — Capture::None and two receivers!), so the sender retries until
    // eventually... with no capture and 2 CTS responders BSMA can never
    // hear a CTS on this topology unless one receiver yields. Use a
    // single-receiver variant to exercise the NAK path instead: S → C
    // with the jammer killing the first DATA at C.
    let topo = Topology::new(
        vec![
            Point::new(0.00, 0.00), // S
            Point::new(0.15, 0.00), // unused bystander out of the way
            Point::new(0.00, 0.15), // C (sole receiver)
            Point::new(0.00, 0.30), // D
        ],
        0.2,
    );
    let mut stations: Vec<TestStation> =
        MacNode::build_network(&topo, ProtocolKind::Bsma, deterministic_timing(), 1)
            .into_iter()
            .map(|m| TestStation::Mac(Box::new(m)))
            .collect();
    // Timeline: RTS at 4 (delivered 5), CTS [5,6), DATA [6,11).
    stations[3] = TestStation::Script(vec![jam_frame(7)]);
    if let TestStation::Mac(m) = &mut stations[0] {
        m.enqueue(TrafficKind::Multicast, vec![nid(2)], 0);
    }
    let mut engine = Engine::new(topo, Capture::None, 1);
    engine.enable_trace();
    engine.run(&mut stations, 200);

    // C missed the data, NAKed at its WAIT_FOR_DATA expiry, and the
    // sender retransmitted the whole exchange.
    assert!(
        count_tx(&engine, nid(2), FrameKind::Nak) >= 1,
        "no NAK was sent"
    );
    assert!(
        count_tx(&engine, nid(0), FrameKind::Data) >= 2,
        "no retransmission"
    );
    let rec = &mac(&stations, 0).records()[0];
    assert!(rec.outcome.is_completed());
    assert!(rec.contention_phases >= 2);
    assert!(mac(&stations, 2).received().len() == 1);
}

#[test]
fn bmmm_rolls_unacked_receivers_into_second_batch() {
    // The jammer destroys the first DATA at C only: L ACKs in batch 1,
    // C cannot (it missed the data), so batch 2 serves exactly C.
    // Timeline with cw_min = 0: RTS(L) at 4, RTS(C) at 6, DATA [8, 13).
    let (stations, engine) = run_jammed(ProtocolKind::Bmmm, vec![jam_frame(9)], 300);
    let rec = &mac(&stations, 0).records()[0];
    assert!(rec.outcome.is_completed(), "{:?}", rec.outcome);
    assert!(
        rec.contention_phases >= 2,
        "unacked receiver must trigger a second batch, got {}",
        rec.contention_phases
    );
    // Both receivers hold the data in the end.
    assert_eq!(mac(&stations, 1).received().len(), 1);
    assert_eq!(mac(&stations, 2).received().len(), 1);
    // The second batch polled only C: total RTS count is 2 (batch 1) + 1.
    assert_eq!(count_tx(&engine, nid(0), FrameKind::Rts), 3);
    // Data was transmitted twice.
    assert_eq!(count_tx(&engine, nid(0), FrameKind::Data), 2);
    let mut acked = rec.acked.clone();
    acked.sort();
    assert_eq!(acked, vec![nid(1), nid(2)]);
}

#[test]
fn dcf_retry_limit_aborts() {
    // A unicast to an unreachable station: no CTS ever, binary
    // exponential backoff through retry_limit attempts, then Failed —
    // unless the 100-slot service timeout fires first, so use a long
    // timeout to expose the retry limit itself.
    let topo = Topology::new(vec![Point::new(0.0, 0.0), Point::new(0.9, 0.9)], 0.2);
    let timing = MacTiming {
        timeout: 100_000,
        cw_min: 0,
        cw_max: 3,
        ..Default::default()
    };
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, timing, 1);
    let mut engine = Engine::new(topo, Capture::None, 1);
    nodes[0].enqueue(TrafficKind::Unicast, vec![nid(1)], 0);
    engine.run(&mut nodes, 2_000);
    let rec = &nodes[0].records()[0];
    assert!(
        matches!(rec.outcome, Outcome::Failed(_)),
        "expected retry-limit abort, got {:?}",
        rec.outcome
    );
    // retry_limit = 7: the initial phase plus 7 retries.
    assert_eq!(rec.contention_phases, 8);
}

#[test]
fn contention_window_doubles_on_retry() {
    // Observed indirectly: with cw_min = 0 and cw_max = 255 the gaps
    // between successive RTS attempts to an unreachable peer must grow on
    // average (binary exponential backoff).
    let topo = Topology::new(vec![Point::new(0.0, 0.0), Point::new(0.9, 0.9)], 0.2);
    let timing = MacTiming {
        timeout: 100_000,
        cw_min: 0,
        cw_max: 255,
        ..Default::default()
    };
    let mut gaps_first = 0.0;
    let mut gaps_last = 0.0;
    let seeds = 20;
    for seed in 0..seeds {
        let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, timing, seed);
        let mut engine = Engine::new(topo.clone(), Capture::None, seed);
        engine.enable_trace();
        nodes[0].enqueue(TrafficKind::Unicast, vec![nid(1)], 0);
        engine.run(&mut nodes, 3_000);
        let rts_slots: Vec<u64> = engine
            .trace()
            .unwrap()
            .events()
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::TxStart {
                    slot,
                    kind: FrameKind::Rts,
                    ..
                } => Some(*slot),
                _ => None,
            })
            .collect();
        assert!(
            rts_slots.len() >= 8,
            "expected 8 attempts, saw {}",
            rts_slots.len()
        );
        gaps_first += (rts_slots[1] - rts_slots[0]) as f64;
        gaps_last += (rts_slots[7] - rts_slots[6]) as f64;
    }
    gaps_first /= f64::from(seeds as u32);
    gaps_last /= f64::from(seeds as u32);
    assert!(
        gaps_last > gaps_first * 4.0,
        "backoff did not grow: first gap {gaps_first:.1}, last gap {gaps_last:.1}"
    );
}

#[test]
fn yield_suppression_counter_fires() {
    // A bystander that hears a BMMM batch's control frames while itself
    // being polled by someone else... simpler: two senders multicast to
    // the same receiver set; whoever loses the race yields, and at least
    // one receiver response is suppressed over the run.
    let topo = Topology::new(
        vec![
            Point::new(0.50, 0.50),
            Point::new(0.55, 0.50),
            Point::new(0.50, 0.55),
            Point::new(0.55, 0.55),
        ],
        0.2,
    );
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, MacTiming::default(), 5);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 5);
    for round in 0..20u64 {
        // Staggered so overheard batches set NAVs at the other stations.
        nodes[0].enqueue(TrafficKind::Multicast, vec![nid(2), nid(3)], round * 40);
        nodes[1].enqueue(TrafficKind::Multicast, vec![nid(2), nid(3)], round * 40 + 3);
    }
    engine.run(&mut nodes, 1_200);
    let suppressions: u64 = nodes.iter().map(|n| n.counters().yield_suppressions).sum();
    assert!(suppressions > 0, "no yield suppression was ever recorded");
    // And despite the contention, most messages complete.
    let completed: usize = nodes[..2]
        .iter()
        .flat_map(|n| n.records())
        .filter(|r| r.outcome.is_completed())
        .count();
    assert!(completed >= 30, "only {completed}/40 completed");
}

#[test]
fn utilization_is_tracked() {
    let topo = jammed_topology();
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, MacTiming::default(), 2);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 2);
    nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
    engine.run(&mut nodes, 100);
    let busy = engine.channel().busy_slots;
    // A 2-receiver batch occupies 13 slots of airtime (4m + d).
    assert!(busy >= 13, "busy slots {busy}");
    assert!(busy < 40, "busy slots {busy} implausibly high");
}
