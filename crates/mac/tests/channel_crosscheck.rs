//! End-to-end differential runs with the channel's naive shadow armed:
//! every slot of every run below re-resolves interference with the
//! reference full-rescan channel and asserts the incremental channel
//! produced identical outcomes, RNG draws, ledgers, carrier sense and
//! half-duplex state. All eight protocols are driven through saturated
//! traffic, and the error models that perturb resolution (frame errors,
//! Gilbert–Elliott bursts, fault plans with reboots) each get a
//! variant — under both naive and event-horizon stepping.

use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, ProtocolKind, TrafficKind};
use rmm_sim::{Capture, Engine, FaultPlan, GilbertElliott, NodeId, Slot, Topology};

const ALL_PROTOCOLS: [ProtocolKind; 8] = [
    ProtocolKind::Ieee80211,
    ProtocolKind::TangGerla,
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
    ProtocolKind::LeaderBased,
    ProtocolKind::BmmmUncoordinated,
];

/// Two overlapping cells (a bridge node hears both), enough stations
/// for simultaneous exchanges, hidden terminals and real pile-ups.
fn two_cells() -> Topology {
    let mut pts = Vec::new();
    for (cx, n) in [(0.35, 5), (0.65, 5)] {
        pts.push(Point::new(cx, 0.5));
        for i in 0..n {
            let a = i as f64 * std::f64::consts::TAU / n as f64;
            pts.push(Point::new(cx + 0.09 * a.cos(), 0.5 + 0.09 * a.sin()));
        }
    }
    Topology::new(pts, 0.2)
}

enum ErrorModel {
    Clean,
    FrameErrors,
    Burst,
    Faults,
}

/// Arrivals dense enough that exchanges overlap and collide: every
/// station in turn sources a multicast to its whole neighborhood.
fn arrivals(topo: &Topology, slots: Slot) -> Vec<(Slot, usize, Vec<NodeId>)> {
    let mut plan = Vec::new();
    let mut t = 1;
    let mut src = 0usize;
    while t < slots / 2 {
        let neighbors = topo.neighbors(NodeId(src as u32)).to_vec();
        if !neighbors.is_empty() {
            plan.push((t, src, neighbors));
        }
        t += 7;
        src = (src + 3) % topo.len();
    }
    plan
}

fn run_checked(protocol: ProtocolKind, model: &ErrorModel, fast: bool, seed: u64) {
    const SLOTS: Slot = 600;
    let topo = two_cells();
    let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), seed);
    let mut engine = Engine::new(topo.clone(), Capture::ZorziRao, seed);
    match model {
        ErrorModel::Clean => {}
        ErrorModel::FrameErrors => engine.set_fer(0.12),
        ErrorModel::Burst => engine.set_burst(GilbertElliott::new(0.05, 0.4), seed ^ 0xb0b),
        ErrorModel::Faults => engine.set_faults(
            FaultPlan::new()
                .reboot(NodeId(2), 90, 140)
                .deaf(NodeId(5), 40, 200)
                .mute(NodeId(8), 150, 260)
                .crash(NodeId(11), 300),
        ),
    }
    engine.enable_channel_crosscheck();
    let plan = arrivals(&topo, SLOTS);
    if fast {
        for (t, src, receivers) in &plan {
            engine.advance_to(&mut nodes, *t);
            nodes[*src].enqueue(TrafficKind::Multicast, receivers.clone(), *t);
            engine.wake(NodeId(*src as u32));
        }
        engine.advance_to(&mut nodes, SLOTS);
    } else {
        let mut i = 0;
        for t in 0..SLOTS {
            while i < plan.len() && plan[i].0 == t {
                let (_, src, receivers) = &plan[i];
                nodes[*src].enqueue(TrafficKind::Multicast, receivers.clone(), t);
                i += 1;
            }
            engine.step(&mut nodes);
        }
    }
    // The run must have exercised the channel, not idled past it.
    assert!(
        engine.channel().busy_slots > SLOTS / 10,
        "{protocol:?} {fast}: workload failed to load the channel"
    );
}

#[test]
fn all_protocols_match_the_reference_channel_when_clean() {
    for protocol in ALL_PROTOCOLS {
        for fast in [false, true] {
            run_checked(protocol, &ErrorModel::Clean, fast, 11);
        }
    }
}

#[test]
fn all_protocols_match_the_reference_channel_under_frame_errors() {
    for protocol in ALL_PROTOCOLS {
        for fast in [false, true] {
            run_checked(protocol, &ErrorModel::FrameErrors, fast, 23);
        }
    }
}

#[test]
fn all_protocols_match_the_reference_channel_under_burst_losses() {
    for protocol in ALL_PROTOCOLS {
        for fast in [false, true] {
            run_checked(protocol, &ErrorModel::Burst, fast, 37);
        }
    }
}

#[test]
fn all_protocols_match_the_reference_channel_under_faults() {
    for protocol in ALL_PROTOCOLS {
        for fast in [false, true] {
            run_checked(protocol, &ErrorModel::Faults, fast, 53);
        }
    }
}
