//! Engine-level tests of the event-horizon fast path driving real MAC
//! stations: the fast path must actually skip dead air (not degenerate
//! to naive stepping), stay bit-exact while doing so, and honor the
//! `next_wakeup` hint contract.

use proptest::prelude::*;
use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, ProtocolKind, TrafficKind};
use rmm_sim::{Capture, Engine, NodeId, Slot, Station, Topology, TraceEvent};

/// A star: node 0 in the middle, `n` receivers around it, all mutually
/// in range (one cell).
fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

const ALL_PROTOCOLS: [ProtocolKind; 8] = [
    ProtocolKind::Ieee80211,
    ProtocolKind::TangGerla,
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
    ProtocolKind::LeaderBased,
    ProtocolKind::BmmmUncoordinated,
];

/// Sparse multicast arrivals with long dead-air gaps between exchanges.
fn build(protocol: ProtocolKind, seed: u64) -> (Vec<MacNode>, Engine) {
    let topo = star(4);
    let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), seed);
    let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
    engine.enable_trace();
    let receivers: Vec<NodeId> = (1..=4).map(NodeId).collect();
    nodes[0].enqueue(TrafficKind::Multicast, receivers.clone(), 0);
    nodes[0].enqueue(TrafficKind::Multicast, receivers.clone(), 0);
    nodes[2].enqueue(TrafficKind::Unicast, vec![NodeId(1)], 0);
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
    (nodes, engine)
}

#[test]
fn fast_path_skips_most_of_a_sparse_run_and_stays_bit_exact() {
    const SLOTS: Slot = 3_000;
    for protocol in ALL_PROTOCOLS {
        for seed in [3u64, 17, 29] {
            let (mut nodes_a, mut eng_a) = build(protocol, seed);
            eng_a.run(&mut nodes_a, SLOTS);
            let (mut nodes_b, mut eng_b) = build(protocol, seed);
            eng_b.run_fast(&mut nodes_b, SLOTS);

            assert_eq!(eng_b.now(), SLOTS);
            assert_eq!(
                eng_a.trace().unwrap().events(),
                eng_b.trace().unwrap().events(),
                "{protocol:?} seed {seed}: trace diverged"
            );
            for (a, b) in nodes_a.iter().zip(&nodes_b) {
                assert_eq!(a.records(), b.records(), "{protocol:?} seed {seed}");
                assert_eq!(a.received(), b.received(), "{protocol:?} seed {seed}");
                assert_eq!(a.counters(), b.counters(), "{protocol:?} seed {seed}");
            }
            assert_eq!(
                eng_a.channel().collisions_total,
                eng_b.channel().collisions_total
            );
            assert_eq!(eng_a.channel().busy_slots, eng_b.channel().busy_slots);
            assert_eq!(eng_a.slots_skipped(), 0, "naive run must never skip");
            // The exchanges above fit in a few hundred slots; the rest of
            // the run is dead air the fast path must jump over.
            assert!(
                eng_b.slots_skipped() > SLOTS / 2,
                "{protocol:?} seed {seed}: only {} of {SLOTS} slots skipped",
                eng_b.slots_skipped()
            );
        }
    }
}

#[test]
fn wakeup_hints_fire_exactly_on_protocol_deadlines() {
    // A BMMM batch exchange alternates contention countdowns and FSM
    // response deadlines; if any hint were late, a poll or an ACK
    // deadline would be missed and the trace would record fewer (or
    // differently-timed) control frames. Completion must match naive.
    let (mut nodes_a, mut eng_a) = build(ProtocolKind::Bmmm, 7);
    eng_a.run(&mut nodes_a, 2_000);
    let (mut nodes_b, mut eng_b) = build(ProtocolKind::Bmmm, 7);
    eng_b.run_fast(&mut nodes_b, 2_000);
    let done = |nodes: &[MacNode]| -> usize {
        nodes
            .iter()
            .flat_map(|n| n.records())
            .filter(|r| r.outcome.is_completed())
            .count()
    };
    assert!(done(&nodes_a) >= 3, "exchanges should complete");
    assert_eq!(done(&nodes_a), done(&nodes_b));
    let polls = |eng: &Engine| {
        eng.trace()
            .unwrap()
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::PollSent { .. }))
            .count()
    };
    assert_eq!(polls(&eng_a), polls(&eng_b));
}

proptest! {
    /// Hint contract: at every point of a randomly-driven simulation,
    /// every station's `next_wakeup(now)` is strictly after `now`.
    #[test]
    fn next_wakeup_is_never_earlier_than_the_hinted_slot(
        seed in 0u64..500,
        protocol_idx in 0usize..8,
        probe_slots in 1u64..400,
    ) {
        let protocol = ALL_PROTOCOLS[protocol_idx];
        let (mut nodes, mut engine) = build(protocol, seed);
        for _ in 0..probe_slots {
            engine.step(&mut nodes);
            let now = engine.now() - 1; // slot the stations just saw
            for (i, node) in nodes.iter().enumerate() {
                if let Some(wake) = node.next_wakeup(now) {
                    prop_assert!(
                        wake > now,
                        "node {i}: hint {wake} not after slot {now} ({protocol:?})"
                    );
                }
            }
        }
    }
}
