//! Per-protocol conformance tests on small, hand-analyzable topologies:
//! do the frame exchanges match the paper's protocol descriptions?

use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, Outcome, ProtocolKind, TrafficKind};
use rmm_sim::{Capture, Engine, FrameKind, NodeId, Topology, TraceEvent};

fn nid(n: u32) -> NodeId {
    NodeId(n)
}

/// A star: node 0 in the middle, `n` receivers around it, everyone within
/// range of everyone (a single cell).
fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

struct Run {
    nodes: Vec<MacNode>,
    engine: Engine,
}

/// One sender (node 0) multicasting to all its neighbors, no cross
/// traffic.
fn run_single_multicast(protocol: ProtocolKind, n_receivers: usize, slots: u64) -> Run {
    let topo = star(n_receivers);
    let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), 42);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 42);
    engine.enable_trace();
    let receivers: Vec<NodeId> = (1..=n_receivers as u32).map(NodeId).collect();
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
    engine.run(&mut nodes, slots);
    Run { nodes, engine }
}

fn tx_kinds(run: &Run, node: NodeId) -> Vec<FrameKind> {
    run.engine
        .trace()
        .unwrap()
        .events()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::TxStart { node: n, kind, .. } if *n == node => Some(*kind),
            _ => None,
        })
        .collect()
}

fn count_kind(run: &Run, node: NodeId, kind: FrameKind) -> usize {
    tx_kinds(run, node).iter().filter(|&&k| k == kind).count()
}

#[test]
fn plain_80211_sends_one_data_frame_and_nothing_else() {
    let run = run_single_multicast(ProtocolKind::Ieee80211, 3, 50);
    assert_eq!(tx_kinds(&run, nid(0)), vec![FrameKind::Data]);
    let rec = &run.nodes[0].records()[0];
    assert!(rec.outcome.is_completed());
    assert_eq!(rec.contention_phases, 1);
    // No receiver transmits anything: no CTS, no ACK.
    for r in 1..=3 {
        assert!(tx_kinds(&run, nid(r)).is_empty());
    }
    // All three receivers get the frame on a quiet channel.
    for r in 1..=3 {
        assert_eq!(run.nodes[r as usize].received().len(), 1);
    }
}

#[test]
fn bmmm_batch_is_one_contention_phase_on_a_clean_channel() {
    let n = 4;
    let run = run_single_multicast(ProtocolKind::Bmmm, n, 120);
    let rec = &run.nodes[0].records()[0];
    assert!(rec.outcome.is_completed(), "outcome: {:?}", rec.outcome);
    assert_eq!(rec.contention_phases, 1, "BMMM consolidates contention");
    // Sender: n RTS + 1 DATA + n RAK.
    assert_eq!(count_kind(&run, nid(0), FrameKind::Rts), n);
    assert_eq!(count_kind(&run, nid(0), FrameKind::Data), 1);
    assert_eq!(count_kind(&run, nid(0), FrameKind::Rak), n);
    // Every receiver: 1 CTS + 1 ACK.
    for r in 1..=n as u32 {
        assert_eq!(count_kind(&run, nid(r), FrameKind::Cts), 1);
        assert_eq!(count_kind(&run, nid(r), FrameKind::Ack), 1);
    }
    // All receivers ACKed.
    let mut acked = rec.acked.clone();
    acked.sort();
    assert_eq!(acked, (1..=n as u32).map(NodeId).collect::<Vec<_>>());
}

#[test]
fn bmmm_figure2_frame_order() {
    // Figure 2: RTS1 CTS1 RTS2 CTS2 … DATA RAK1 ACK1 RAK2 ACK2 …
    let run = run_single_multicast(ProtocolKind::Bmmm, 2, 80);
    let order: Vec<(NodeId, FrameKind)> = run
        .engine
        .trace()
        .unwrap()
        .events()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::TxStart { node, kind, .. } => Some((*node, *kind)),
            _ => None,
        })
        .collect();
    use FrameKind::*;
    let expected = vec![
        (nid(0), Rts),
        (nid(1), Cts),
        (nid(0), Rts),
        (nid(2), Cts),
        (nid(0), Data),
        (nid(0), Rak),
        (nid(1), Ack),
        (nid(0), Rak),
        (nid(2), Ack),
    ];
    assert_eq!(order, expected);
}

#[test]
fn bmw_uses_one_contention_phase_per_receiver() {
    let n = 4;
    let run = run_single_multicast(ProtocolKind::Bmw, n, 400);
    let rec = &run.nodes[0].records()[0];
    assert!(rec.outcome.is_completed(), "outcome: {:?}", rec.outcome);
    // The paper: BMW needs at least n contention phases per message.
    assert_eq!(rec.contention_phases as usize, n);
    assert_eq!(count_kind(&run, nid(0), FrameKind::Rts), n);
    // The first receiver needs the data; later ones overheard it and
    // suppress via the have-flag, so exactly one data transmission.
    assert_eq!(count_kind(&run, nid(0), FrameKind::Data), 1);
    assert_eq!(rec.acked.len(), n);
}

#[test]
fn bmw_have_flag_suppresses_redundant_data() {
    let run = run_single_multicast(ProtocolKind::Bmw, 3, 400);
    // Receivers 2 and 3 cache the data addressed to receiver 1
    // (promiscuous receive buffer), so they never trigger a second DATA
    // and never send an ACK — their CTS(have) closes the round.
    assert_eq!(count_kind(&run, nid(0), FrameKind::Data), 1);
    let acks: usize = (1..=3)
        .map(|r| count_kind(&run, nid(r), FrameKind::Ack))
        .sum();
    assert_eq!(acks, 1, "only the receiver that got addressed data ACKs");
}

#[test]
fn tang_gerla_completes_after_any_cts() {
    let run = run_single_multicast(ProtocolKind::TangGerla, 3, 200);
    let rec = &run.nodes[0].records()[0];
    assert!(rec.outcome.is_completed());
    // Sender transmitted at least one group RTS and exactly one DATA.
    assert!(count_kind(&run, nid(0), FrameKind::Rts) >= 1);
    assert_eq!(count_kind(&run, nid(0), FrameKind::Data), 1);
    // All three receivers answered the (first successful) RTS at once:
    // their CTS frames collided at the sender, so completion required
    // capture. With 3 colliding CTS frames the capture probability is
    // ~0.46 per attempt; with seed 42 and 200 slots it succeeds.
    for r in 1..=3 {
        assert!(count_kind(&run, nid(r), FrameKind::Cts) >= 1);
    }
}

#[test]
fn tang_gerla_single_receiver_needs_no_capture() {
    // With one receiver there is no CTS collision: one contention phase.
    let run = run_single_multicast(ProtocolKind::TangGerla, 1, 60);
    let rec = &run.nodes[0].records()[0];
    assert!(rec.outcome.is_completed());
    assert_eq!(rec.contention_phases, 1);
}

#[test]
fn bsma_completes_silently_when_all_receive() {
    let run = run_single_multicast(ProtocolKind::Bsma, 1, 100);
    let rec = &run.nodes[0].records()[0];
    assert!(rec.outcome.is_completed());
    // No NAK was sent: data went through.
    assert_eq!(count_kind(&run, nid(1), FrameKind::Nak), 0);
    assert_eq!(run.nodes[1].received().len(), 1);
}

#[test]
fn lamm_polls_a_cover_set_only() {
    // Receivers: a ring of 6 close to the sender plus one co-located
    // pair; the minimum cover set is strictly smaller than the set.
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..6 {
        let a = i as f64 * std::f64::consts::TAU / 6.0;
        pts.push(Point::new(0.5 + 0.06 * a.cos(), 0.5 + 0.06 * a.sin()));
    }
    pts.push(Point::new(0.5, 0.5001)); // ~co-located with the sender ring center
    let topo = Topology::new(pts, 0.2);
    let receivers: Vec<NodeId> = (1..=7).map(NodeId).collect();
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Lamm, MacTiming::default(), 7);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 7);
    engine.enable_trace();
    nodes[0].enqueue(TrafficKind::Multicast, receivers.clone(), 0);
    engine.run(&mut nodes, 200);
    let rec = &nodes[0].records()[0];
    assert!(rec.outcome.is_completed(), "outcome: {:?}", rec.outcome);
    // LAMM polled fewer receivers than BMMM would have.
    let rts_count = engine
        .trace()
        .unwrap()
        .events()
        .iter()
        .filter(|ev| {
            matches!(ev, TraceEvent::TxStart { node, kind: FrameKind::Rts, .. } if *node == nid(0))
        })
        .count();
    assert!(
        rts_count < receivers.len(),
        "LAMM sent {rts_count} RTS for {} receivers",
        receivers.len()
    );
    // Uncovered/unpolled receivers were closed by coverage and did
    // actually receive the data (Theorem 3 soundness).
    assert!(!rec.assumed_covered.is_empty());
    for &covered in &rec.assumed_covered {
        assert!(
            nodes[covered.index()].received().contains(&rec.msg),
            "{covered} was assumed covered but missed the data"
        );
    }
    // Every intended receiver ended up with the message.
    for &r in &receivers {
        assert!(nodes[r.index()].received().contains(&rec.msg));
    }
}

#[test]
fn unicast_uses_dcf_under_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let run = {
            let topo = star(2);
            let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), 9);
            let mut engine = Engine::new(topo, Capture::ZorziRao, 9);
            engine.enable_trace();
            nodes[0].enqueue(TrafficKind::Unicast, vec![nid(1)], 0);
            engine.run(&mut nodes, 80);
            Run { nodes, engine }
        };
        let rec = &run.nodes[0].records()[0];
        assert!(
            rec.outcome.is_completed(),
            "{protocol:?}: {:?}",
            rec.outcome
        );
        // RTS/CTS/DATA/ACK exchange.
        assert_eq!(
            tx_kinds(&run, nid(0)),
            vec![FrameKind::Rts, FrameKind::Data],
            "{protocol:?}"
        );
        assert_eq!(
            tx_kinds(&run, nid(1)),
            vec![FrameKind::Cts, FrameKind::Ack],
            "{protocol:?}"
        );
        assert_eq!(rec.acked, vec![nid(1)], "{protocol:?}");
    }
}

#[test]
fn reliable_protocols_guarantee_delivery_on_completion() {
    // On a clean channel every protocol completes; for the reliable ones
    // completion must imply full delivery.
    for protocol in [ProtocolKind::Bmw, ProtocolKind::Bmmm, ProtocolKind::Lamm] {
        let run = run_single_multicast(protocol, 5, 600);
        let rec = &run.nodes[0].records()[0];
        assert!(rec.outcome.is_completed(), "{protocol:?}");
        for r in 1..=5u32 {
            assert!(
                run.nodes[r as usize].received().contains(&rec.msg),
                "{protocol:?}: receiver {r} missing data"
            );
        }
    }
}

#[test]
fn empty_receiver_set_completes_immediately() {
    for protocol in ProtocolKind::ALL {
        let topo = star(1);
        let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), 5);
        let mut engine = Engine::new(topo, Capture::ZorziRao, 5);
        nodes[0].enqueue(TrafficKind::Multicast, vec![], 0);
        engine.run(&mut nodes, 40);
        let rec = &nodes[0].records()[0];
        assert!(
            rec.outcome.is_completed(),
            "{protocol:?}: {:?}",
            rec.outcome
        );
    }
}

#[test]
fn message_times_out_when_a_receiver_is_unreachable() {
    // A stale neighbor table: the intended receiver has moved out of
    // range. The reliable protocols retry until the 100-slot service
    // timeout expires, then give up.
    let topo = Topology::new(
        vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.9, 0.9),
        ],
        0.2,
    );
    for protocol in [ProtocolKind::Bmw, ProtocolKind::Bmmm, ProtocolKind::Lamm] {
        let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), 3);
        let mut engine = Engine::new(topo.clone(), Capture::ZorziRao, 3);
        nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
        engine.run(&mut nodes, 400);
        let rec = &nodes[0].records()[0];
        assert!(
            matches!(rec.outcome, Outcome::TimedOut(at) if (100..=110).contains(&at)),
            "{protocol:?}: expected timeout shortly after 100 slots, got {:?}",
            rec.outcome
        );
        // The reachable receiver still got the data along the way (BMMM
        // transmits it once at least one CTS arrives) — except under BMW,
        // which serves targets in order and may never reach node 1 if the
        // unreachable node 2 comes later in the list; node 1 is first
        // here, so it must have been served.
        assert!(nodes[1].received().len() == 1, "{protocol:?}");
    }
}

#[test]
fn queued_messages_are_served_in_fifo_order() {
    let topo = star(2);
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, MacTiming::default(), 11);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 11);
    let m1 = nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
    let m2 = nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1)], 0);
    engine.run(&mut nodes, 200);
    let records = nodes[0].records();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].msg, m1);
    assert_eq!(records[1].msg, m2);
    assert!(records[0].outcome.is_completed());
    assert!(records[1].outcome.is_completed());
    // Completion order follows queue order.
    let Outcome::Completed(c1) = records[0].outcome else {
        unreachable!()
    };
    let Outcome::Completed(c2) = records[1].outcome else {
        unreachable!()
    };
    assert!(c1 < c2);
}

#[test]
fn bystander_yields_during_bmmm_batch() {
    // Node 3 is a bystander in range of the sender. During the batch it
    // must not win contention (the paper's "the medium will never be
    // idle for more than 2·SIFS + T_CTS < DIFS" argument).
    let topo = star(3);
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, MacTiming::default(), 13);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 13);
    engine.enable_trace();
    nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
    // Bystander (node 3) wants to send while the batch runs.
    nodes[3].enqueue(TrafficKind::Unicast, vec![nid(1)], 2);
    engine.run(&mut nodes, 300);
    // Both complete eventually…
    assert!(nodes[0].records()[0].outcome.is_completed());
    assert!(nodes[3].records()[0].outcome.is_completed());
    // …and the bystander never transmits *inside* the batch: on this
    // clean channel the batch is a single contiguous train of frames with
    // sub-DIFS gaps, so no station can win a contention within it. (The
    // bystander may legitimately transmit before the batch starts if its
    // backoff wins the initial race.)
    let evs = engine.trace().unwrap().events();
    let batch_slots: Vec<u64> = evs
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::TxStart { slot, node, .. } if *node == nid(0) => Some(*slot),
            _ => None,
        })
        .collect();
    let (batch_first, batch_last) = (
        *batch_slots.iter().min().unwrap(),
        *batch_slots.iter().max().unwrap(),
    );
    for ev in evs {
        if let TraceEvent::TxStart { slot, node, .. } = ev {
            if *node == nid(3) {
                assert!(
                    *slot <= batch_first || *slot > batch_last,
                    "bystander transmitted at {slot}, inside the batch [{batch_first}, {batch_last}]"
                );
            }
        }
    }
}

mod leader_based {
    use super::*;
    use rmm_mac::MacTiming;
    use rmm_sim::{Ctx, Dest, Frame, MsgId, Station};

    #[test]
    fn clean_channel_single_phase_with_leader_handshake() {
        let run = run_single_multicast(ProtocolKind::LeaderBased, 3, 80);
        let rec = &run.nodes[0].records()[0];
        assert!(rec.outcome.is_completed(), "{:?}", rec.outcome);
        assert_eq!(rec.contention_phases, 1);
        // Sender: one group RTS + one DATA. Leader (node 1): CTS + ACK.
        // Non-leaders: silent.
        assert_eq!(
            tx_kinds(&run, nid(0)),
            vec![FrameKind::Rts, FrameKind::Data]
        );
        assert_eq!(tx_kinds(&run, nid(1)), vec![FrameKind::Cts, FrameKind::Ack]);
        assert!(tx_kinds(&run, nid(2)).is_empty());
        assert!(tx_kinds(&run, nid(3)).is_empty());
        // Everyone got the data on the clean channel.
        for r in 1..=3 {
            assert_eq!(run.nodes[r].received().len(), 1);
        }
        // Only the leader is recorded as confirming.
        assert_eq!(rec.acked, vec![nid(1)]);
    }

    /// Mixed station type so a scripted jammer can share the engine with
    /// real MAC nodes.
    enum TestStation {
        Mac(Box<MacNode>),
        Script { plan: Vec<(u64, Frame)> },
    }

    impl Station for TestStation {
        fn on_receive(&mut self, frame: &Frame, captured: bool, ctx: &mut Ctx<'_>) {
            if let TestStation::Mac(m) = self {
                m.on_receive(frame, captured, ctx);
            }
        }
        fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
            match self {
                TestStation::Mac(m) => m.on_slot(ctx),
                TestStation::Script { plan } => {
                    while let Some(pos) = plan.iter().position(|(s, _)| *s == ctx.now) {
                        let (_, frame) = plan.remove(pos);
                        ctx.send(frame);
                    }
                }
            }
        }
    }

    #[test]
    fn nak_jam_forces_retransmission() {
        // S(0) multicasts to leader L(1) and non-leader C(2). A hidden
        // interferer D(3) — audible only at C — destroys the first DATA
        // frame at C. C heard the RTS, so it jams the ACK slot with a
        // NAK; the collided ACK makes S retransmit until C has the data.
        //
        // cw_min = 0 makes contention deterministic: RTS at slot 4,
        // DATA at [6, 11), ACK/NAK slot 11.
        let topo = Topology::new(
            vec![
                Point::new(0.00, 0.00), // S
                Point::new(0.15, 0.00), // L
                Point::new(0.00, 0.15), // C
                Point::new(0.00, 0.30), // D: in range of C only
            ],
            0.2,
        );
        assert!(!topo.in_range(nid(0), nid(3)));
        assert!(!topo.in_range(nid(1), nid(3)));
        let timing = MacTiming {
            cw_min: 0,
            ..Default::default()
        };
        let mut stations: Vec<TestStation> =
            MacNode::build_network(&topo, ProtocolKind::LeaderBased, timing, 1)
                .into_iter()
                .map(|m| TestStation::Mac(Box::new(m)))
                .collect();
        // The jammer overlaps the first DATA window [6, 11).
        stations[3] = TestStation::Script {
            plan: vec![(
                7,
                Frame::data(nid(3), Dest::Node(nid(2)), 0, MsgId::new(nid(3), 0), 3),
            )],
        };
        if let TestStation::Mac(m) = &mut stations[0] {
            m.enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
        }
        let mut engine = Engine::new(topo, rmm_sim::Capture::None, 1);
        engine.enable_trace();
        engine.run(&mut stations, 200);

        let (sender, c_node) = match (&stations[0], &stations[2]) {
            (TestStation::Mac(s), TestStation::Mac(c)) => (s, c),
            _ => unreachable!(),
        };
        let rec = &sender.records()[0];
        assert!(rec.outcome.is_completed(), "{:?}", rec.outcome);
        assert!(
            rec.contention_phases >= 2,
            "the jammed ACK must force a retransmission, got {} phase(s)",
            rec.contention_phases
        );
        assert!(
            c_node.received().len() == 1,
            "C must eventually get the data"
        );
        // The NAK really went on the air.
        let naks = engine
            .trace()
            .unwrap()
            .events()
            .iter()
            .filter(|ev| {
                matches!(ev, rmm_sim::TraceEvent::TxStart { node, kind: FrameKind::Nak, .. } if *node == nid(2))
            })
            .count();
        assert!(naks >= 1, "non-leader never jammed");
    }

    #[test]
    fn leader_scheme_blind_spot() {
        // The weakness relative to BMMM: a receiver that never heard the
        // RTS cannot jam, so the sender completes while that receiver has
        // nothing. Put the non-leader out of range entirely.
        let topo = Topology::new(
            vec![
                Point::new(0.00, 0.00), // S
                Point::new(0.15, 0.00), // L (leader)
                Point::new(0.90, 0.90), // C: unreachable
            ],
            0.2,
        );
        let mut nodes =
            MacNode::build_network(&topo, ProtocolKind::LeaderBased, MacTiming::default(), 2);
        let mut engine = Engine::new(topo, rmm_sim::Capture::None, 2);
        nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
        engine.run(&mut nodes, 200);
        let rec = &nodes[0].records()[0];
        assert!(
            rec.outcome.is_completed(),
            "leader scheme should complete despite the unreachable receiver: {:?}",
            rec.outcome
        );
        assert!(nodes[2].received().is_empty());
        // BMMM on the same topology refuses to complete (it times out
        // waiting for the missing ACK) — that is what is_reliable() means.
        assert!(!ProtocolKind::LeaderBased.is_reliable());
        assert!(ProtocolKind::Bmmm.is_reliable());
    }
}

mod bmmm_uncoordinated_ablation {
    use super::*;

    #[test]
    fn uncoordinated_acks_collide_and_stall_completion() {
        // Two receivers, clean channel, capture disabled: both ACK the
        // data simultaneously, the burst collides every round, and the
        // sender can never close the message — it times out. Real BMMM
        // on the identical setup completes in one batch.
        let topo = star(2);
        let mut nodes = MacNode::build_network(
            &topo,
            ProtocolKind::BmmmUncoordinated,
            MacTiming::default(),
            3,
        );
        let mut engine = Engine::new(topo.clone(), rmm_sim::Capture::None, 3);
        nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
        engine.run(&mut nodes, 400);
        let rec = &nodes[0].records()[0];
        assert!(
            matches!(rec.outcome, Outcome::TimedOut(_)),
            "uncoordinated ACKs should deadlock under Capture::None, got {:?}",
            rec.outcome
        );
        // The data itself reached both receivers — the protocol just
        // cannot learn it.
        assert_eq!(nodes[1].received().len(), 1);
        assert_eq!(nodes[2].received().len(), 1);

        let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, MacTiming::default(), 3);
        let mut engine = Engine::new(topo, rmm_sim::Capture::None, 3);
        nodes[0].enqueue(TrafficKind::Multicast, vec![nid(1), nid(2)], 0);
        engine.run(&mut nodes, 400);
        assert!(
            nodes[0].records()[0].outcome.is_completed(),
            "coordinated BMMM completes on the same setup"
        );
    }

    #[test]
    fn single_receiver_needs_no_coordination() {
        // With one receiver there is no ACK burst to collide: the
        // variant behaves like BMMM and completes in one phase.
        let run = run_single_multicast(ProtocolKind::BmmmUncoordinated, 1, 80);
        let rec = &run.nodes[0].records()[0];
        assert!(rec.outcome.is_completed());
        assert_eq!(rec.contention_phases, 1);
        assert_eq!(rec.acked, vec![nid(1)]);
    }

    #[test]
    fn capture_sometimes_rescues_but_slowly() {
        // With Zorzi–Rao capture the burst occasionally yields one ACK
        // per round, so the message completes — in strictly more phases
        // than coordinated BMMM's single batch.
        let run = run_single_multicast(ProtocolKind::BmmmUncoordinated, 3, 400);
        let rec = &run.nodes[0].records()[0];
        if rec.outcome.is_completed() {
            assert!(
                rec.contention_phases >= 3,
                "3 receivers need ≥ 3 capture wins, got {} phases",
                rec.contention_phases
            );
        } else {
            assert!(matches!(rec.outcome, Outcome::TimedOut(_)));
        }
    }
}

#[test]
fn bmmm_batch_gaps_stay_below_difs() {
    // The paper's co-existence invariant, measured on the trace: within a
    // clean-channel BMMM batch, the medium never idles for DIFS slots, so
    // no bystander contention can complete mid-batch. Check across batch
    // sizes and seeds.
    for n in [2usize, 4, 6] {
        for seed in [7u64, 21, 99] {
            let topo = star(n);
            let timing = MacTiming::default();
            let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, timing, seed);
            let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
            engine.enable_trace();
            let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
            nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
            engine.run(&mut nodes, 200);
            assert!(nodes[0].records()[0].outcome.is_completed());
            let events = engine.trace().unwrap().events();
            // The batch spans from the first to the last transmission.
            let first = events
                .iter()
                .find_map(|ev| match ev {
                    TraceEvent::TxStart { slot, .. } => Some(*slot),
                    _ => None,
                })
                .unwrap();
            let last = events
                .iter()
                .filter_map(|ev| match ev {
                    TraceEvent::TxStart { slot, .. } => Some(*slot),
                    _ => None,
                })
                .max()
                .unwrap();
            let gap = rmm_sim::max_idle_gap(events, first, last + 1);
            assert!(
                gap < u64::from(timing.difs),
                "n={n} seed={seed}: intra-batch idle gap {gap} ≥ DIFS {}",
                timing.difs
            );
        }
    }
}

#[test]
fn airtime_split_matches_frame_counters() {
    // The trace-level airtime accounting and the node-level frame
    // counters must tell the same story.
    let run = run_single_multicast(ProtocolKind::Bmmm, 3, 120);
    let airtime = rmm_sim::airtime_by_kind(run.engine.trace().unwrap().events());
    let mut counters = rmm_mac::FrameKindCounts::default();
    for node in &run.nodes {
        counters.add(&node.counters().sent_by_kind);
    }
    assert_eq!(
        airtime.get(&FrameKind::Rts).copied().unwrap_or(0),
        counters.rts
    );
    assert_eq!(
        airtime.get(&FrameKind::Cts).copied().unwrap_or(0),
        counters.cts
    );
    assert_eq!(
        airtime.get(&FrameKind::Rak).copied().unwrap_or(0),
        counters.rak
    );
    assert_eq!(
        airtime.get(&FrameKind::Ack).copied().unwrap_or(0),
        counters.ack
    );
    // Data airtime = data frames × 5 slots.
    assert_eq!(
        airtime.get(&FrameKind::Data).copied().unwrap_or(0),
        counters.data * u64::from(MacTiming::default().data_slots)
    );
}
