//! The Tang–Gerla MILCOM'00 broadcast MAC \[19\]: a multicast RTS answered
//! by *simultaneous* CTS frames from every non-yielding intended
//! receiver. The CTS replies collide at the sender; the protocol relies
//! on the radio's DS capture ability to salvage one of them. If any CTS
//! gets through, the data frame follows; otherwise the sender backs off
//! and recontends. No acknowledgements — the sender never learns who got
//! the data (the reliability problem Section 3 of the paper demonstrates).

use super::{Env, Flow};
use rmm_sim::{Dest, Frame, FrameKind, Slot};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Multicast RTS sent; CTS window closes at `at`.
    AwaitCts,
    /// Data on the air until `at`.
    Sending,
}

/// Tang–Gerla multicast sender.
#[derive(Debug)]
pub struct TangFsm {
    phase: Phase,
    at: Slot,
    cts_any: bool,
}

impl TangFsm {
    /// New sender.
    pub fn new() -> Self {
        TangFsm {
            phase: Phase::Idle,
            at: 0,
            cts_any: false,
        }
    }

    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.req.receivers.is_empty() {
            return Flow::Complete;
        }
        let t = env.timing();
        self.cts_any = false;
        env.send_control(
            FrameKind::Rts,
            Dest::group(env.req.receivers.clone()),
            t.tg_rts_duration(),
        );
        self.phase = Phase::AwaitCts;
        self.at = env.response_deadline(t.control_slots);
        Flow::Continue
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.now() != self.at || self.phase == Phase::Idle {
            return Flow::Continue;
        }
        match self.phase {
            Phase::AwaitCts => {
                if self.cts_any {
                    let t = env.timing();
                    env.send_data(Dest::group(env.req.receivers.clone()), 0);
                    self.phase = Phase::Sending;
                    self.at = env.now() + Slot::from(t.data_slots);
                    Flow::Continue
                } else {
                    // WAIT_FOR_CTS expired: back off and recontend.
                    self.phase = Phase::Idle;
                    Flow::Recontend { reset_cw: false }
                }
            }
            Phase::Sending => {
                self.phase = Phase::Idle;
                Flow::Complete
            }
            Phase::Idle => Flow::Continue,
        }
    }

    pub(super) fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        if self.phase == Phase::AwaitCts && frame.kind == FrameKind::Cts && frame.msg == env.req.msg
        {
            self.cts_any = true;
        }
        Flow::Continue
    }
}

impl Default for TangFsm {
    fn default() -> Self {
        TangFsm::new()
    }
}
