//! BMW \[21\] — *Broadcast Medium Window*: "treat each broadcast request as
//! multiple unicast requests", each processed with the reliable DCF
//! RTS/CTS/DATA/ACK exchange. Reliable, but it costs at least `n`
//! contention phases per message (the inefficiency BMMM removes).
//!
//! Receiver-buffer mechanics: the RTS carries the message's sequence
//! number; a receiver that already holds the message (typically by
//! overhearing an earlier round to a sibling) answers with a CTS whose
//! `have` flag suppresses the redundant data transmission.

use super::{Env, Flow};
use rmm_sim::{Dest, Frame, FrameInfo, FrameKind, NodeId, Slot, TraceEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// RTS to the current target sent; CTS due by `at`.
    AwaitCts,
    /// DATA to the current target sent; ACK due by `at`.
    AwaitAck,
}

/// BMW multicast sender.
#[derive(Debug)]
pub struct BmwFsm {
    /// Targets not yet served, front first (the paper's NEIGHBOR-list
    /// order).
    pending: Vec<NodeId>,
    phase: Phase,
    at: Slot,
    acked: Vec<NodeId>,
    /// Failed exchanges against the current (front) target.
    tries: u32,
    /// Targets abandoned after `timing.dest_retry_limit` failed tries.
    gave_up: Vec<NodeId>,
}

impl BmwFsm {
    /// New sender serving `receivers` in order.
    pub fn new(receivers: Vec<NodeId>) -> Self {
        BmwFsm {
            pending: receivers,
            phase: Phase::Idle,
            at: 0,
            acked: Vec::new(),
            tries: 0,
            gave_up: Vec::new(),
        }
    }

    /// Receivers confirmed so far (ACK or have-flagged CTS).
    pub fn acked(&self) -> &[NodeId] {
        &self.acked
    }

    /// Targets abandoned after exhausting their retry budget.
    pub fn gave_up(&self) -> &[NodeId] {
        &self.gave_up
    }

    /// Targets still to serve.
    pub fn pending(&self) -> &[NodeId] {
        &self.pending
    }

    fn target(&self) -> Option<NodeId> {
        self.pending.first().copied()
    }

    /// Mark the current target served; move to the next (with a fresh
    /// contention phase) or finish.
    fn advance(&mut self) -> Flow {
        let done = self.pending.remove(0);
        self.acked.push(done);
        self.phase = Phase::Idle;
        self.tries = 0;
        if self.pending.is_empty() {
            Flow::Complete
        } else {
            Flow::Recontend { reset_cw: true }
        }
    }

    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        let Some(target) = self.target() else {
            return Flow::Complete; // degenerate: no receivers
        };
        let t = env.timing();
        env.send_control(FrameKind::Rts, Dest::Node(target), t.dcf_rts_duration());
        self.phase = Phase::AwaitCts;
        self.at = env.response_deadline(t.control_slots);
        Flow::Continue
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.now() != self.at || self.phase == Phase::Idle {
            return Flow::Continue;
        }
        // CTS or ACK missing: back off and retry the same target, until
        // its per-destination budget runs out — then abandon it (without
        // marking it served) and move on so one dead receiver cannot
        // monopolize the message.
        self.phase = Phase::Idle;
        self.tries += 1;
        if self.tries >= env.timing().dest_retry_limit {
            let dst = self.pending.remove(0);
            let (slot, node, msg, after_retries) =
                (env.now(), env.core.id, env.req.msg, self.tries);
            env.emit(|| TraceEvent::GiveUp {
                slot,
                node,
                msg,
                dst,
                after_retries,
            });
            self.gave_up.push(dst);
            self.tries = 0;
            if self.pending.is_empty() {
                return Flow::Complete;
            }
            return Flow::Recontend { reset_cw: true };
        }
        Flow::Recontend { reset_cw: false }
    }

    pub(super) fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        let Some(target) = self.target() else {
            return Flow::Continue;
        };
        if frame.src != target || frame.msg != env.req.msg {
            return Flow::Continue;
        }
        match (self.phase, frame.kind) {
            (Phase::AwaitCts, FrameKind::Cts) => {
                if matches!(frame.info, FrameInfo::BmwCts { have: true }) {
                    // Receiver already holds the message: skip the data.
                    self.advance()
                } else {
                    let t = env.timing();
                    env.send_data(Dest::Node(target), t.control_slots);
                    self.phase = Phase::AwaitAck;
                    self.at = env.response_deadline(t.data_slots);
                    Flow::Continue
                }
            }
            (Phase::AwaitAck, FrameKind::Ack) => self.advance(),
            _ => Flow::Continue,
        }
    }
}
