//! The multicast MAC protocol suite.
//!
//! Each protocol's *sender side* is a small finite-state machine driven by
//! the owning [`crate::node::MacNode`]:
//!
//! * [`Fsm::on_access`] — the contention phase was just won; transmit.
//! * [`Fsm::on_slot`] — one slot elapsed; check deadlines, continue.
//! * [`Fsm::on_frame`] — a sender-relevant frame (CTS/ACK/NAK) addressed
//!   to this station was decoded.
//!
//! Each callback returns a [`Flow`] telling the node what to do next.
//! Receiver-side behaviour (CTS/ACK/NAK replies, NAV) is shared and lives
//! in the node itself.

pub mod bmmm;
pub mod bmmm_uncoordinated;
pub mod bmw;
pub mod bsma;
pub mod dcf;
pub mod leader;
pub mod plain;
pub mod tang_gerla;

use crate::node::NodeCore;
use crate::request::Request;
use crate::timing::MacTiming;
use rmm_sim::{Ctx, Dest, Frame, FrameInfo, FrameKind, NodeId, Slot, TraceEvent};
use serde::{Deserialize, Serialize};

pub use bmmm::BmmmFsm;
pub use bmmm_uncoordinated::BmmmUncoordFsm;
pub use bmw::BmwFsm;
pub use bsma::BsmaFsm;
pub use dcf::DcfFsm;
pub use leader::LeaderFsm;
pub use plain::PlainFsm;
pub use tang_gerla::TangFsm;

/// Which multicast MAC protocol a station runs for its multicast and
/// broadcast traffic (unicast always uses DCF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Plain IEEE 802.11 multicast: contend, transmit the data frame,
    /// done. No RTS/CTS, no recovery.
    Ieee80211,
    /// Tang–Gerla MILCOM'00 \[19\]: multicast RTS, simultaneous CTS replies
    /// (colliding; DS capture may rescue one), then the data frame.
    TangGerla,
    /// BSMA \[20\]: Tang–Gerla plus a NAK window after the data frame.
    Bsma,
    /// BMW \[21\]: one reliable DCF unicast round per intended receiver,
    /// each with its own contention phase.
    Bmw,
    /// Batch Mode Multicast MAC (this paper): one contention phase, then
    /// serialized RTS/CTS polling, the data frame, and serialized RAK/ACK
    /// collection.
    Bmmm,
    /// Location Aware Multicast MAC (this paper): BMMM polling only a
    /// minimum cover set, with geometric coverage closing the rest.
    Lamm,
    /// Leader-based reliable multicast in the style of Kuri–Kasera \[13\]:
    /// one receiver CTSs and ACKs for the group; the others jam the ACK
    /// with a NAK when they miss the data.
    LeaderBased,
    /// Ablation: BMMM with the RAK train removed — receivers ACK the data
    /// frame simultaneously and their ACKs collide, demonstrating why the
    /// paper introduces the RAK coordination.
    BmmmUncoordinated,
}

impl ProtocolKind {
    /// All protocols, in the order the paper's figures list them, plus
    /// the leader-based related-work baseline.
    pub const ALL: [ProtocolKind; 7] = [
        ProtocolKind::Ieee80211,
        ProtocolKind::TangGerla,
        ProtocolKind::Bsma,
        ProtocolKind::Bmw,
        ProtocolKind::Bmmm,
        ProtocolKind::Lamm,
        ProtocolKind::LeaderBased,
    ];

    /// Every implemented protocol, including the BMMM-U ablation that
    /// [`ProtocolKind::ALL`] (the paper's figure list) leaves out.
    pub const EVERY: [ProtocolKind; 8] = [
        ProtocolKind::Ieee80211,
        ProtocolKind::TangGerla,
        ProtocolKind::Bsma,
        ProtocolKind::Bmw,
        ProtocolKind::Bmmm,
        ProtocolKind::Lamm,
        ProtocolKind::LeaderBased,
        ProtocolKind::BmmmUncoordinated,
    ];

    /// Parses a protocol name: case-insensitive display names
    /// ([`ProtocolKind::name`]) plus the CLI aliases.
    pub fn parse(name: &str) -> Option<ProtocolKind> {
        match name.to_ascii_lowercase().as_str() {
            "802.11" | "80211" | "ieee80211" | "plain" => Some(ProtocolKind::Ieee80211),
            "tg" | "tg-rts" | "tang-gerla" | "tanggerla" => Some(ProtocolKind::TangGerla),
            "bsma" => Some(ProtocolKind::Bsma),
            "bmw" => Some(ProtocolKind::Bmw),
            "bmmm" => Some(ProtocolKind::Bmmm),
            "lamm" => Some(ProtocolKind::Lamm),
            "leader" | "leader-based" | "kk" => Some(ProtocolKind::LeaderBased),
            "uncoord" | "bmmm-u" | "bmmm-uncoord" | "bmmm-uncoordinated" => {
                Some(ProtocolKind::BmmmUncoordinated)
            }
            _ => None,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Ieee80211 => "802.11",
            ProtocolKind::TangGerla => "TG-RTS",
            ProtocolKind::Bsma => "BSMA",
            ProtocolKind::Bmw => "BMW",
            ProtocolKind::Bmmm => "BMMM",
            ProtocolKind::Lamm => "LAMM",
            ProtocolKind::LeaderBased => "Leader",
            ProtocolKind::BmmmUncoordinated => "BMMM-U",
        }
    }

    /// Whether completion implies every intended receiver provably got
    /// the data (the paper's notion of a *reliable* multicast MAC).
    pub fn is_reliable(&self) -> bool {
        matches!(
            self,
            ProtocolKind::Bmw | ProtocolKind::Bmmm | ProtocolKind::Lamm
        )
    }
}

/// What the owning node should do after an FSM callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep going.
    Continue,
    /// Enter a new contention phase. `reset_cw` distinguishes a *new
    /// round* (e.g. the next BMW target or BMMM batch — fresh window)
    /// from a *retry* after failure (binary exponential backoff).
    Recontend {
        /// Reset the contention window to `cw_min` instead of doubling.
        reset_cw: bool,
    },
    /// The message is served; record success.
    Complete,
    /// The protocol gave up on the message (DCF retry limit).
    Abort,
}

/// Everything an FSM callback may touch: the shared node state, the
/// engine context, the request being served, and the per-message frame
/// counters.
pub struct Env<'a, 'b> {
    /// Shared node state (identity, timing, geometry, received set, …).
    pub core: &'a mut NodeCore,
    /// Engine slot context.
    pub ctx: &'a mut Ctx<'b>,
    /// The request being served.
    pub req: &'a Request,
    /// Data frames sent for this message (incremented by [`Env::send`]).
    pub data_tx: &'a mut u32,
    /// Control frames sent for this message.
    pub control_tx: &'a mut u32,
}

impl Env<'_, '_> {
    /// Current slot.
    pub fn now(&self) -> Slot {
        self.ctx.now
    }

    /// MAC timing parameters.
    pub fn timing(&self) -> MacTiming {
        self.core.timing
    }

    /// Puts a frame for the current message on the air, with node-level
    /// bookkeeping.
    pub fn send(&mut self, frame: Frame) {
        debug_assert!(
            self.core.tx_until <= self.ctx.now,
            "FSM of {} scheduled a send while already transmitting",
            self.core.id
        );
        if frame.kind == FrameKind::Data {
            *self.data_tx += 1;
        } else {
            *self.control_tx += 1;
        }
        self.core.transmit(self.ctx, frame);
    }

    /// Builds and sends a 1-slot control frame for the current message.
    pub fn send_control(&mut self, kind: FrameKind, dest: Dest, duration: u32) {
        let frame = Frame {
            kind,
            src: self.core.id,
            dest,
            duration,
            msg: self.req.msg,
            slots: self.core.timing.control_slots,
            info: FrameInfo::None,
        };
        self.send(frame);
    }

    /// Builds and sends the data frame for the current message.
    pub fn send_data(&mut self, dest: Dest, duration: u32) {
        let frame = Frame::data(
            self.core.id,
            dest,
            duration,
            self.req.msg,
            self.core.timing.data_slots,
        );
        self.send(frame);
    }

    /// Slot at which a 1-control-slot response to a frame of airtime
    /// `sent_slots` sent *now* will have been delivered.
    pub fn response_deadline(&self, sent_slots: u32) -> Slot {
        self.ctx.now + self.core.timing.response_delivered_after(sent_slots)
    }

    /// Emits a protocol-phase trace event; a no-op branch unless the
    /// engine is tracing (the closure never runs then).
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&mut self, f: F) {
        self.ctx.emit(f);
    }
}

/// A protocol sender state machine (enum dispatch keeps the hot path
/// monomorphic).
#[derive(Debug)]
pub enum Fsm {
    /// DCF unicast.
    Dcf(DcfFsm),
    /// Plain 802.11 multicast.
    Plain(PlainFsm),
    /// Tang–Gerla multicast RTS.
    Tang(TangFsm),
    /// BSMA.
    Bsma(BsmaFsm),
    /// BMW.
    Bmw(BmwFsm),
    /// BMMM / LAMM.
    Bmmm(BmmmFsm),
    /// Leader-based (Kuri–Kasera style).
    Leader(LeaderFsm),
    /// BMMM without RAK coordination (ablation).
    BmmmUncoord(BmmmUncoordFsm),
}

impl Fsm {
    /// Builds the sender FSM for `req` under `protocol`. Unicast requests
    /// always get DCF.
    pub fn for_request(protocol: ProtocolKind, req: &Request) -> Fsm {
        use crate::request::TrafficKind;
        if req.kind == TrafficKind::Unicast {
            return Fsm::Dcf(DcfFsm::new(req.receivers[0]));
        }
        match protocol {
            ProtocolKind::Ieee80211 => Fsm::Plain(PlainFsm::new()),
            ProtocolKind::TangGerla => Fsm::Tang(TangFsm::new()),
            ProtocolKind::Bsma => Fsm::Bsma(BsmaFsm::new()),
            ProtocolKind::Bmw => Fsm::Bmw(BmwFsm::new(req.receivers.clone())),
            ProtocolKind::Bmmm => Fsm::Bmmm(BmmmFsm::new(req.receivers.clone(), false)),
            ProtocolKind::Lamm => Fsm::Bmmm(BmmmFsm::new(req.receivers.clone(), true)),
            ProtocolKind::LeaderBased => Fsm::Leader(LeaderFsm::new()),
            ProtocolKind::BmmmUncoordinated => {
                Fsm::BmmmUncoord(BmmmUncoordFsm::new(req.receivers.clone()))
            }
        }
    }

    /// Contention won: transmit the first frame of the (next) exchange.
    pub fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        match self {
            Fsm::Dcf(f) => f.on_access(env),
            Fsm::Plain(f) => f.on_access(env),
            Fsm::Tang(f) => f.on_access(env),
            Fsm::Bsma(f) => f.on_access(env),
            Fsm::Bmw(f) => f.on_access(env),
            Fsm::Bmmm(f) => f.on_access(env),
            Fsm::Leader(f) => f.on_access(env),
            Fsm::BmmmUncoord(f) => f.on_access(env),
        }
    }

    /// Per-slot deadline processing.
    pub fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        match self {
            Fsm::Dcf(f) => f.on_slot(env),
            Fsm::Plain(f) => f.on_slot(env),
            Fsm::Tang(f) => f.on_slot(env),
            Fsm::Bsma(f) => f.on_slot(env),
            Fsm::Bmw(f) => f.on_slot(env),
            Fsm::Bmmm(f) => f.on_slot(env),
            Fsm::Leader(f) => f.on_slot(env),
            Fsm::BmmmUncoord(f) => f.on_slot(env),
        }
    }

    /// The next slot at which [`Fsm::on_slot`] will act (the pending
    /// response or airtime deadline), if an exchange is in flight.
    /// `None` whenever the FSM is idle — in particular while the station
    /// is still contending for the medium. Feeds
    /// [`Station::next_wakeup`](rmm_sim::Station::next_wakeup).
    pub fn deadline(&self) -> Option<Slot> {
        match self {
            Fsm::Dcf(f) => f.deadline(),
            Fsm::Plain(f) => f.deadline(),
            Fsm::Tang(f) => f.deadline(),
            Fsm::Bsma(f) => f.deadline(),
            Fsm::Bmw(f) => f.deadline(),
            Fsm::Bmmm(f) => f.deadline(),
            Fsm::Leader(f) => f.deadline(),
            Fsm::BmmmUncoord(f) => f.deadline(),
        }
    }

    /// A CTS/ACK/NAK addressed to this station was decoded.
    pub fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        match self {
            Fsm::Dcf(f) => f.on_frame(frame, env),
            Fsm::Plain(_) => Flow::Continue,
            Fsm::Tang(f) => f.on_frame(frame, env),
            Fsm::Bsma(f) => f.on_frame(frame, env),
            Fsm::Bmw(f) => f.on_frame(frame, env),
            Fsm::Bmmm(f) => f.on_frame(frame, env),
            Fsm::Leader(f) => f.on_frame(frame, env),
            Fsm::BmmmUncoord(f) => f.on_frame(frame, env),
        }
    }

    /// Receivers that explicitly confirmed the message so far.
    pub fn acked(&self) -> &[NodeId] {
        match self {
            Fsm::Dcf(f) => f.acked(),
            Fsm::Plain(_) | Fsm::Tang(_) | Fsm::Bsma(_) => &[],
            Fsm::Bmw(f) => f.acked(),
            Fsm::Bmmm(f) => f.acked(),
            Fsm::Leader(f) => f.acked(),
            Fsm::BmmmUncoord(f) => f.acked(),
        }
    }

    /// Receivers served by geometric coverage (LAMM only).
    pub fn assumed_covered(&self) -> &[NodeId] {
        match self {
            Fsm::Bmmm(f) => f.assumed_covered(),
            _ => &[],
        }
    }

    /// Receivers abandoned after exhausting the per-destination retry
    /// budget (`timing.dest_retry_limit`). Empty for protocols without
    /// per-receiver service state (802.11, Tang–Gerla, BSMA, DCF) —
    /// those are bounded by the node-level retry ceiling instead.
    pub fn gave_up(&self) -> &[NodeId] {
        match self {
            Fsm::Bmw(f) => f.gave_up(),
            Fsm::Bmmm(f) => f.gave_up(),
            Fsm::Leader(f) => f.gave_up(),
            Fsm::BmmmUncoord(f) => f.gave_up(),
            Fsm::Dcf(_) | Fsm::Plain(_) | Fsm::Tang(_) | Fsm::Bsma(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_display_name_parses_back() {
        for p in ProtocolKind::EVERY {
            assert_eq!(ProtocolKind::parse(p.name()), Some(p), "{}", p.name());
        }
        assert_eq!(ProtocolKind::parse("kk"), Some(ProtocolKind::LeaderBased));
        assert_eq!(
            ProtocolKind::parse("uncoord"),
            Some(ProtocolKind::BmmmUncoordinated)
        );
        assert_eq!(ProtocolKind::parse("nope"), None);
    }
}
