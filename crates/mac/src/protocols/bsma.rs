//! BSMA \[20\]: the Tang–Gerla protocol augmented with a NAK. After the
//! data frame the sender waits WAIT_FOR_NAK; receivers that returned a
//! CTS but then missed the data transmit a NAK (these, too, collide and
//! are subject to capture). A heard NAK sends the sender back into
//! contention to retransmit; silence is treated as success — which is why
//! BSMA is "not logically reliable": receivers that never made it into
//! the CTS exchange cannot complain.

use super::{Env, Flow};
use rmm_sim::{Dest, Frame, FrameKind, Slot};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Multicast RTS sent; CTS window closes at `at`.
    AwaitCts,
    /// Data sent; NAK window closes at `at`.
    AwaitNak,
}

/// BSMA multicast sender.
#[derive(Debug)]
pub struct BsmaFsm {
    phase: Phase,
    at: Slot,
    cts_any: bool,
    nak_seen: bool,
}

impl BsmaFsm {
    /// New sender.
    pub fn new() -> Self {
        BsmaFsm {
            phase: Phase::Idle,
            at: 0,
            cts_any: false,
            nak_seen: false,
        }
    }

    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.req.receivers.is_empty() {
            return Flow::Complete;
        }
        let t = env.timing();
        self.cts_any = false;
        self.nak_seen = false;
        env.send_control(
            FrameKind::Rts,
            Dest::group(env.req.receivers.clone()),
            t.bsma_rts_duration(),
        );
        self.phase = Phase::AwaitCts;
        self.at = env.response_deadline(t.control_slots);
        Flow::Continue
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.now() != self.at || self.phase == Phase::Idle {
            return Flow::Continue;
        }
        match self.phase {
            Phase::AwaitCts => {
                if self.cts_any {
                    let t = env.timing();
                    // Duration covers the NAK window after the data.
                    env.send_data(Dest::group(env.req.receivers.clone()), t.control_slots);
                    self.phase = Phase::AwaitNak;
                    self.at = env.response_deadline(t.data_slots);
                    Flow::Continue
                } else {
                    self.phase = Phase::Idle;
                    Flow::Recontend { reset_cw: false }
                }
            }
            Phase::AwaitNak => {
                self.phase = Phase::Idle;
                if self.nak_seen {
                    // A receiver reported a transmission problem: back off
                    // and retransmit the whole exchange.
                    Flow::Recontend { reset_cw: false }
                } else {
                    Flow::Complete
                }
            }
            Phase::Idle => Flow::Continue,
        }
    }

    pub(super) fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        if frame.msg != env.req.msg {
            return Flow::Continue;
        }
        match (self.phase, frame.kind) {
            (Phase::AwaitCts, FrameKind::Cts) => self.cts_any = true,
            (Phase::AwaitNak, FrameKind::Nak) => self.nak_seen = true,
            _ => {}
        }
        Flow::Continue
    }
}

impl Default for BsmaFsm {
    fn default() -> Self {
        BsmaFsm::new()
    }
}
