//! Plain IEEE 802.11 multicast/broadcast: "the multicast sender simply
//! listens to the channel and then transmits its data frame when the
//! channel becomes free for a period of time. There is no MAC-level
//! recovery on multicast frame."

use super::{Env, Flow};
use rmm_sim::{Dest, Slot};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Data on the air; transmission finishes at `at`.
    Sending,
}

/// Plain 802.11 multicast sender.
#[derive(Debug)]
pub struct PlainFsm {
    phase: Phase,
    at: Slot,
}

impl PlainFsm {
    /// New sender.
    pub fn new() -> Self {
        PlainFsm {
            phase: Phase::Idle,
            at: 0,
        }
    }

    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.req.receivers.is_empty() {
            return Flow::Complete;
        }
        let t = env.timing();
        env.send_data(Dest::group(env.req.receivers.clone()), 0);
        self.phase = Phase::Sending;
        self.at = env.now() + Slot::from(t.data_slots);
        Flow::Continue
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if self.phase == Phase::Sending && env.now() == self.at {
            self.phase = Phase::Idle;
            return Flow::Complete;
        }
        Flow::Continue
    }
}

impl Default for PlainFsm {
    fn default() -> Self {
        PlainFsm::new()
    }
}
