//! Ablation variant: BMMM **without** the RAK frame.
//!
//! The paper's central design argument (Section 4): "to avoid the
//! collisions among CTS and ACK frames, the sender needs to provide a
//! simple coordination among the intended receivers", which is what the
//! RTS train and the new RAK frame do. This variant keeps the RTS/CTS
//! train (coordinated CTS) but drops the RAK train: after the data frame
//! every receiver that decoded it transmits its ACK *simultaneously*,
//! exactly the uncoordinated behaviour the paper warns against. The ACKs
//! collide; only DS capture occasionally rescues one, so the sender
//! keeps re-serving receivers it cannot hear — measurably worse than
//! real BMMM (see the `ablations` bench).

use super::{Env, Flow};
use rmm_sim::{Dest, Frame, FrameKind, NodeId, Slot, TraceEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// RTS to `batch[i]` sent; CTS window closes at `at`.
    AwaitCts {
        /// Index into the current batch.
        i: usize,
    },
    /// Data on the air; the simultaneous ACK burst lands at `at`.
    AwaitAckBurst,
}

/// BMMM-without-RAK sender (ablation).
#[derive(Debug)]
pub struct BmmmUncoordFsm {
    s_remaining: Vec<NodeId>,
    batch: Vec<NodeId>,
    phase: Phase,
    at: Slot,
    cts_any: bool,
    batch_acked: Vec<NodeId>,
    all_acked: Vec<NodeId>,
    /// Completed rounds each receiver has failed to be confirmed in.
    misses: Vec<(NodeId, u32)>,
    /// Receivers abandoned after `timing.dest_retry_limit` failed rounds.
    gave_up: Vec<NodeId>,
}

impl BmmmUncoordFsm {
    /// New sender.
    pub fn new(receivers: Vec<NodeId>) -> Self {
        BmmmUncoordFsm {
            s_remaining: receivers,
            batch: Vec::new(),
            phase: Phase::Idle,
            at: 0,
            cts_any: false,
            batch_acked: Vec::new(),
            all_acked: Vec::new(),
            misses: Vec::new(),
            gave_up: Vec::new(),
        }
    }

    /// Receivers whose ACK survived capture so far.
    pub fn acked(&self) -> &[NodeId] {
        &self.all_acked
    }

    /// Receivers abandoned after exhausting their retry budget.
    pub fn gave_up(&self) -> &[NodeId] {
        &self.gave_up
    }

    /// Records one more failed round for `dst` and returns the total.
    fn charge(misses: &mut Vec<(NodeId, u32)>, dst: NodeId) -> u32 {
        match misses.iter_mut().find(|(n, _)| *n == dst) {
            Some((_, c)) => {
                *c += 1;
                *c
            }
            None => {
                misses.push((dst, 1));
                1
            }
        }
    }

    /// Same per-destination budget as BMMM: charge one failed round to
    /// every still-outstanding receiver; prune the exhausted ones.
    fn prune_exhausted(&mut self, env: &mut Env<'_, '_>) {
        let limit = env.timing().dest_retry_limit;
        let (slot, node, msg) = (env.now(), env.core.id, env.req.msg);
        let remaining = std::mem::take(&mut self.s_remaining);
        let mut kept = Vec::with_capacity(remaining.len());
        for dst in remaining {
            let count = Self::charge(&mut self.misses, dst);
            if count >= limit {
                env.emit(|| TraceEvent::GiveUp {
                    slot,
                    node,
                    msg,
                    dst,
                    after_retries: count,
                });
                self.gave_up.push(dst);
            } else {
                kept.push(dst);
            }
        }
        self.s_remaining = kept;
    }

    /// A wholly silent poll train is a failed round for every receiver it
    /// polled: charge their budgets and prune the exhausted ones (same
    /// rationale as BMMM). Returns whether any receiver was given up on.
    fn charge_silent_batch(&mut self, env: &mut Env<'_, '_>) -> bool {
        let limit = env.timing().dest_retry_limit;
        let (slot, node, msg) = (env.now(), env.core.id, env.req.msg);
        let before = self.gave_up.len();
        for i in 0..self.batch.len() {
            let dst = self.batch[i];
            if !self.s_remaining.contains(&dst) {
                continue;
            }
            let count = Self::charge(&mut self.misses, dst);
            if count >= limit {
                env.emit(|| TraceEvent::GiveUp {
                    slot,
                    node,
                    msg,
                    dst,
                    after_retries: count,
                });
                self.gave_up.push(dst);
                self.s_remaining.retain(|n| *n != dst);
            }
        }
        self.gave_up.len() > before
    }

    fn send_rts(&mut self, i: usize, env: &mut Env<'_, '_>) {
        let t = env.timing();
        // Same Duration arithmetic as BMMM minus the RAK train: the
        // reservation covers the rest of the poll, the data, and one ACK
        // burst slot.
        let m = self.batch.len();
        let remaining = (m - i - 1) as u32;
        let dur =
            remaining * 2 * t.control_slots + t.control_slots + t.data_slots + t.control_slots;
        env.send_control(FrameKind::Rts, Dest::Node(self.batch[i]), dur);
        self.phase = Phase::AwaitCts { i };
        self.at = env.response_deadline(t.control_slots);
    }

    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if self.s_remaining.is_empty() {
            return Flow::Complete;
        }
        self.batch = self.s_remaining.clone();
        self.cts_any = false;
        self.batch_acked.clear();
        self.send_rts(0, env);
        Flow::Continue
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.now() != self.at || self.phase == Phase::Idle {
            return Flow::Continue;
        }
        let m = self.batch.len();
        match self.phase {
            Phase::AwaitCts { i } => {
                if i + 1 < m {
                    self.send_rts(i + 1, env);
                    Flow::Continue
                } else if self.cts_any {
                    let t = env.timing();
                    // Duration: the uncoordinated ACK burst (1 slot).
                    env.send_data(Dest::group(self.s_remaining.clone()), t.control_slots);
                    self.phase = Phase::AwaitAckBurst;
                    self.at = env.response_deadline(t.data_slots);
                    Flow::Continue
                } else {
                    // No CTS at all: charge the silent batch before
                    // backing off.
                    self.phase = Phase::Idle;
                    let pruned = self.charge_silent_batch(env);
                    if self.s_remaining.is_empty() {
                        return Flow::Complete;
                    }
                    Flow::Recontend { reset_cw: pruned }
                }
            }
            Phase::AwaitAckBurst => {
                self.phase = Phase::Idle;
                self.all_acked.extend(self.batch_acked.iter().copied());
                self.s_remaining.retain(|n| !self.batch_acked.contains(n));
                self.prune_exhausted(env);
                if self.s_remaining.is_empty() {
                    Flow::Complete
                } else {
                    Flow::Recontend { reset_cw: true }
                }
            }
            Phase::Idle => Flow::Continue,
        }
    }

    pub(super) fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        if frame.msg != env.req.msg || !self.batch.contains(&frame.src) {
            return Flow::Continue;
        }
        match (self.phase, frame.kind) {
            (Phase::AwaitCts { .. }, FrameKind::Cts) => self.cts_any = true,
            (Phase::AwaitAckBurst, FrameKind::Ack) if !self.batch_acked.contains(&frame.src) => {
                self.batch_acked.push(frame.src);
            }
            _ => {}
        }
        Flow::Continue
    }
}
