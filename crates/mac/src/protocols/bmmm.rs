//! BMMM — *Batch Mode Multicast MAC* — and its location-aware refinement
//! LAMM, the paper's contributions (Figures 3 and Section 5).
//!
//! One contention phase serves a whole batch: the sender serializes the
//! control traffic itself, polling each receiver for its CTS with a
//! dedicated RTS, transmitting the data frame once, then polling each
//! receiver for its ACK with a RAK frame. Un-ACKed receivers roll over
//! into the next batch (`S := S \ S_ACK`).
//!
//! With `location_aware` set (LAMM), each batch polls only the minimum
//! cover set `MCS(S)` of the remaining receivers, and the round closes
//! with `S := UPDATE(S, S_ACK)` — receivers whose coverage disk is
//! entirely covered by the ACKing receivers' disks are *guaranteed*
//! (Theorem 3) to have received the data collision-free and need no
//! explicit confirmation.

use super::{Env, Flow};
use rmm_geom::{min_cover_set, update_uncovered};
use rmm_sim::{Dest, Frame, FrameKind, NodeId, Slot, TraceEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// RTS to `batch[i]` sent; its CTS window closes at `at`.
    AwaitCts {
        /// Index into the current batch.
        i: usize,
    },
    /// Data frame on the air; first RAK goes out at `at`.
    Sending,
    /// RAK to `batch[i]` sent; its ACK window closes at `at`.
    AwaitAck {
        /// Index into the current batch.
        i: usize,
    },
}

/// BMMM / LAMM sender.
#[derive(Debug)]
pub struct BmmmFsm {
    location_aware: bool,
    /// Receivers still requiring service (the paper's `S`).
    s_remaining: Vec<NodeId>,
    /// The receivers polled this batch (`S` for BMMM, `MCS(S)` for LAMM).
    batch: Vec<NodeId>,
    /// 1-based batch (round) number, counting every `Batch_Mode_Procedure`.
    round: u32,
    phase: Phase,
    at: Slot,
    cts_any: bool,
    /// ACKs collected this batch (`S_ACK`).
    batch_acked: Vec<NodeId>,
    /// All explicit ACKs over the message's lifetime.
    all_acked: Vec<NodeId>,
    /// Receivers LAMM closed via geometric coverage without an ACK.
    assumed_covered: Vec<NodeId>,
    /// Completed batches each receiver has failed to be confirmed in.
    misses: Vec<(NodeId, u32)>,
    /// Receivers abandoned after `timing.dest_retry_limit` failed rounds.
    gave_up: Vec<NodeId>,
}

impl BmmmFsm {
    /// New sender; `location_aware` selects LAMM.
    pub fn new(receivers: Vec<NodeId>, location_aware: bool) -> Self {
        BmmmFsm {
            location_aware,
            s_remaining: receivers,
            batch: Vec::new(),
            round: 0,
            phase: Phase::Idle,
            at: 0,
            cts_any: false,
            batch_acked: Vec::new(),
            all_acked: Vec::new(),
            assumed_covered: Vec::new(),
            misses: Vec::new(),
            gave_up: Vec::new(),
        }
    }

    /// Receivers that explicitly ACKed so far.
    pub fn acked(&self) -> &[NodeId] {
        &self.all_acked
    }

    /// Receivers abandoned after exhausting their retry budget.
    pub fn gave_up(&self) -> &[NodeId] {
        &self.gave_up
    }

    /// Records one more failed round for `dst` and returns the total.
    fn charge(misses: &mut Vec<(NodeId, u32)>, dst: NodeId) -> u32 {
        match misses.iter_mut().find(|(n, _)| *n == dst) {
            Some((_, c)) => {
                *c += 1;
                *c
            }
            None => {
                misses.push((dst, 1));
                1
            }
        }
    }

    /// Charges one failed round to every receiver still outstanding and
    /// prunes the ones whose per-destination budget is exhausted, so one
    /// dead receiver costs a bounded number of batches.
    fn prune_exhausted(&mut self, env: &mut Env<'_, '_>) {
        let limit = env.timing().dest_retry_limit;
        let (slot, node, msg) = (env.now(), env.core.id, env.req.msg);
        let remaining = std::mem::take(&mut self.s_remaining);
        let mut kept = Vec::with_capacity(remaining.len());
        for dst in remaining {
            let count = Self::charge(&mut self.misses, dst);
            if count >= limit {
                env.emit(|| TraceEvent::GiveUp {
                    slot,
                    node,
                    msg,
                    dst,
                    after_retries: count,
                });
                self.gave_up.push(dst);
            } else {
                kept.push(dst);
            }
        }
        self.s_remaining = kept;
    }

    /// A wholly silent poll train is a failed round for every receiver it
    /// polled: charge their budgets and prune the exhausted ones, so a
    /// batch of dead receivers cannot stall the message until the
    /// node-level retry ceiling kills it. Returns whether any receiver
    /// was given up on.
    fn charge_silent_batch(&mut self, env: &mut Env<'_, '_>) -> bool {
        let limit = env.timing().dest_retry_limit;
        let (slot, node, msg) = (env.now(), env.core.id, env.req.msg);
        let before = self.gave_up.len();
        for i in 0..self.batch.len() {
            let dst = self.batch[i];
            if !self.s_remaining.contains(&dst) {
                continue;
            }
            let count = Self::charge(&mut self.misses, dst);
            if count >= limit {
                env.emit(|| TraceEvent::GiveUp {
                    slot,
                    node,
                    msg,
                    dst,
                    after_retries: count,
                });
                self.gave_up.push(dst);
                self.s_remaining.retain(|n| *n != dst);
            }
        }
        self.gave_up.len() > before
    }

    /// Receivers served by coverage (always empty for BMMM).
    pub fn assumed_covered(&self) -> &[NodeId] {
        &self.assumed_covered
    }

    /// Receivers still outstanding.
    pub fn remaining(&self) -> &[NodeId] {
        &self.s_remaining
    }

    /// The receivers polled in the current batch.
    pub fn batch(&self) -> &[NodeId] {
        &self.batch
    }

    fn compute_batch(&self, env: &Env<'_, '_>) -> Vec<NodeId> {
        if !self.location_aware {
            return self.s_remaining.clone();
        }
        let indices: Vec<usize> = self.s_remaining.iter().map(|n| n.index()).collect();
        let mcs = min_cover_set(env.core.positions(), &indices, env.core.radius());
        mcs.into_iter().map(|i| NodeId(i as u32)).collect()
    }

    /// `Batch_Mode_Procedure` entry: contention won, start the RTS train.
    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if self.s_remaining.is_empty() {
            return Flow::Complete; // degenerate: no receivers
        }
        self.batch = self.compute_batch(env);
        debug_assert!(!self.batch.is_empty());
        self.round += 1;
        self.cts_any = false;
        self.batch_acked.clear();
        let (slot, node, msg, round) = (env.now(), env.core.id, env.req.msg, self.round);
        if self.location_aware {
            env.emit(|| TraceEvent::CoverSetComputed {
                slot,
                node,
                msg,
                full: self.s_remaining.clone(),
                cover: self.batch.clone(),
            });
        }
        env.emit(|| TraceEvent::BatchStart {
            slot,
            node,
            msg,
            round,
            batch: self.batch.clone(),
        });
        self.send_rts(0, env);
        Flow::Continue
    }

    fn send_rts(&mut self, i: usize, env: &mut Env<'_, '_>) {
        let t = env.timing();
        let dur = t.bmmm_rts_duration(i, self.batch.len());
        let (slot, node, msg, target) = (env.now(), env.core.id, env.req.msg, self.batch[i]);
        env.emit(|| TraceEvent::PollSent {
            slot,
            node,
            msg,
            kind: FrameKind::Rts,
            target,
        });
        env.send_control(FrameKind::Rts, Dest::Node(self.batch[i]), dur);
        self.phase = Phase::AwaitCts { i };
        self.at = env.response_deadline(t.control_slots);
    }

    fn send_rak(&mut self, i: usize, env: &mut Env<'_, '_>) {
        let t = env.timing();
        let dur = t.bmmm_rak_duration(i, self.batch.len());
        let (slot, node, msg, target) = (env.now(), env.core.id, env.req.msg, self.batch[i]);
        env.emit(|| TraceEvent::PollSent {
            slot,
            node,
            msg,
            kind: FrameKind::Rak,
            target,
        });
        env.send_control(FrameKind::Rak, Dest::Node(self.batch[i]), dur);
        self.phase = Phase::AwaitAck { i };
        self.at = env.response_deadline(t.control_slots);
    }

    /// Traces the close of the RAK/ACK train. Called before the batch
    /// state is folded into `S`.
    fn emit_batch_end(&self, env: &mut Env<'_, '_>) {
        let (slot, node, msg, round) = (env.now(), env.core.id, env.req.msg, self.round);
        env.emit(|| TraceEvent::BatchEnd {
            slot,
            node,
            msg,
            round,
            batch: self.batch.clone(),
            acked: self.batch_acked.clone(),
        });
    }

    /// Batch over: fold `S_ACK` into `S` and decide what happens next.
    fn finish_batch(&mut self, env: &mut Env<'_, '_>) -> Flow {
        self.emit_batch_end(env);
        self.phase = Phase::Idle;
        self.all_acked.extend(self.batch_acked.iter().copied());
        self.s_remaining = self.next_remaining();
        self.prune_exhausted(env);
        if self.s_remaining.is_empty() {
            Flow::Complete
        } else {
            // The sender's protocol loops: a fresh Batch_Mode_Procedure
            // begins with a fresh contention phase.
            Flow::Recontend { reset_cw: true }
        }
    }

    fn next_remaining(&mut self) -> Vec<NodeId> {
        if self.location_aware {
            // UPDATE(S, S_ACK): keep the nodes not covered by the ACK set.
            // This needs geometry, so it is computed in `finish_batch_geo`
            // via the positions snapshot taken below.
            unreachable!("LAMM uses finish_batch_geo")
        } else {
            self.s_remaining
                .iter()
                .copied()
                .filter(|n| !self.batch_acked.contains(n))
                .collect()
        }
    }

    fn finish_batch_geo(&mut self, env: &mut Env<'_, '_>) -> Flow {
        self.emit_batch_end(env);
        self.phase = Phase::Idle;
        self.all_acked.extend(self.batch_acked.iter().copied());
        let indices: Vec<usize> = self.s_remaining.iter().map(|n| n.index()).collect();
        let acked: Vec<usize> = self.batch_acked.iter().map(|n| n.index()).collect();
        let rem = update_uncovered(env.core.positions(), &indices, &acked, env.core.radius());
        let new_remaining: Vec<NodeId> = rem.into_iter().map(|i| NodeId(i as u32)).collect();
        // Nodes that left S without explicitly ACKing were closed by
        // Theorem 3 coverage.
        for &n in &self.s_remaining {
            if !new_remaining.contains(&n)
                && !self.batch_acked.contains(&n)
                && !self.assumed_covered.contains(&n)
            {
                self.assumed_covered.push(n);
            }
        }
        self.s_remaining = new_remaining;
        self.prune_exhausted(env);
        if self.s_remaining.is_empty() {
            Flow::Complete
        } else {
            Flow::Recontend { reset_cw: true }
        }
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.now() != self.at || self.phase == Phase::Idle {
            return Flow::Continue;
        }
        let m = self.batch.len();
        match self.phase {
            Phase::AwaitCts { i } => {
                if i + 1 < m {
                    // Whether or not p_i answered, poll the next receiver.
                    self.send_rts(i + 1, env);
                    Flow::Continue
                } else if self.cts_any {
                    let t = env.timing();
                    env.send_data(
                        Dest::group(self.s_remaining.clone()),
                        t.bmmm_data_duration(m),
                    );
                    self.phase = Phase::Sending;
                    self.at = env.now() + Slot::from(t.data_slots);
                    Flow::Continue
                } else {
                    // No CTS at all: charge the silent batch, then back
                    // off and restart the procedure.
                    self.phase = Phase::Idle;
                    let pruned = self.charge_silent_batch(env);
                    if self.s_remaining.is_empty() {
                        return Flow::Complete;
                    }
                    Flow::Recontend { reset_cw: pruned }
                }
            }
            Phase::Sending => {
                // Data airtime over: start the RAK/ACK train.
                self.send_rak(0, env);
                Flow::Continue
            }
            Phase::AwaitAck { i } => {
                if !self.batch_acked.contains(&self.batch[i]) {
                    let (slot, node, msg) = (env.now(), env.core.id, env.req.msg);
                    let target = self.batch[i];
                    env.emit(|| TraceEvent::AckMissed {
                        slot,
                        node,
                        msg,
                        target,
                    });
                }
                if i + 1 < m {
                    self.send_rak(i + 1, env);
                    Flow::Continue
                } else if self.location_aware {
                    self.finish_batch_geo(env)
                } else {
                    self.finish_batch(env)
                }
            }
            Phase::Idle => Flow::Continue,
        }
    }

    pub(super) fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        if frame.msg != env.req.msg || !self.batch.contains(&frame.src) {
            return Flow::Continue;
        }
        match frame.kind {
            FrameKind::Cts => {
                if matches!(self.phase, Phase::AwaitCts { .. }) {
                    self.cts_any = true;
                }
            }
            FrameKind::Ack
                if matches!(self.phase, Phase::AwaitAck { .. })
                    && !self.batch_acked.contains(&frame.src) =>
            {
                self.batch_acked.push(frame.src);
            }
            _ => {}
        }
        Flow::Continue
    }
}
