//! Leader-based reliable multicast in the style of Kuri & Kasera
//! (reference \[13\] of the paper, *"Reliable Multicast in Multi-Access
//! Wireless LANs"*): one designated receiver — the *leader* — speaks for
//! the group.
//!
//! * The sender's multicast RTS is answered by a CTS from the leader
//!   only (no CTS pile-up, unlike Tang–Gerla/BSMA).
//! * After the data frame the leader returns an ACK; a non-leader that
//!   took part in the exchange but missed the data transmits a NAK *in
//!   the ACK slot*, deliberately colliding with (jamming) the leader's
//!   ACK. The sender treats a missing/garbled ACK as failure and
//!   retransmits.
//!
//! The scheme is one contention phase per attempt like BMMM, but its
//! guarantee is weaker: only receivers that heard the RTS can jam, so a
//! receiver that missed the RTS entirely (yielding, collision) is
//! unprotected — and the sender never learns per-receiver state. The
//! leader is the first receiver in the request's list.

use super::{Env, Flow};
use rmm_sim::{Dest, Frame, FrameKind, NodeId, Slot, TraceEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Multicast RTS sent; leader CTS due by `at`.
    AwaitCts,
    /// Data sent; leader ACK (or jam silence) due by `at`.
    AwaitAck,
}

/// Leader-based multicast sender.
#[derive(Debug)]
pub struct LeaderFsm {
    phase: Phase,
    at: Slot,
    cts_ok: bool,
    ack_ok: bool,
    acked: Vec<NodeId>,
    /// Consecutive failed attempts under the current leader.
    tries: u32,
    /// Leaders demoted after `timing.dest_retry_limit` failed attempts.
    /// A dead leader would otherwise wedge the whole group; demoting it
    /// rotates leadership to the next receiver in list order.
    gave_up: Vec<NodeId>,
}

impl LeaderFsm {
    /// New sender; the leader is `receivers\[0\]` by convention.
    pub fn new() -> Self {
        LeaderFsm {
            phase: Phase::Idle,
            at: 0,
            cts_ok: false,
            ack_ok: false,
            acked: Vec::new(),
            tries: 0,
            gave_up: Vec::new(),
        }
    }

    /// The leader of a receiver list.
    pub fn leader(receivers: &[NodeId]) -> Option<NodeId> {
        receivers.first().copied()
    }

    /// Receivers confirmed (the leader, after a clean ACK).
    pub fn acked(&self) -> &[NodeId] {
        &self.acked
    }

    /// Leaders abandoned after exhausting their retry budget.
    pub fn gave_up(&self) -> &[NodeId] {
        &self.gave_up
    }

    /// The request's receiver list minus demoted leaders, order
    /// preserved. The front element is the current leader — receivers
    /// apply the same `first()` convention to the group list carried by
    /// each frame, so rotation needs no extra signalling.
    fn group(&self, env: &Env<'_, '_>) -> Vec<NodeId> {
        env.req
            .receivers
            .iter()
            .copied()
            .filter(|n| !self.gave_up.contains(n))
            .collect()
    }

    /// One more failed attempt under the current leader: retry, or — once
    /// the per-destination budget is spent — demote it and rotate.
    fn fail_attempt(&mut self, env: &mut Env<'_, '_>) -> Flow {
        self.phase = Phase::Idle;
        self.tries += 1;
        if self.tries < env.timing().dest_retry_limit {
            return Flow::Recontend { reset_cw: false };
        }
        let group = self.group(env);
        let (slot, node, msg, after_retries) = (env.now(), env.core.id, env.req.msg, self.tries);
        if let Some(&dst) = group.first() {
            env.emit(|| TraceEvent::GiveUp {
                slot,
                node,
                msg,
                dst,
                after_retries,
            });
            self.gave_up.push(dst);
        }
        self.tries = 0;
        if group.len() <= 1 {
            // No receiver left to lead: the message is undeliverable.
            Flow::Abort
        } else {
            Flow::Recontend { reset_cw: true }
        }
    }

    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        let group = self.group(env);
        let Some(_leader) = Self::leader(&group) else {
            return Flow::Complete;
        };
        let t = env.timing();
        self.cts_ok = false;
        self.ack_ok = false;
        env.send_control(FrameKind::Rts, Dest::group(group), t.dcf_rts_duration());
        self.phase = Phase::AwaitCts;
        self.at = env.response_deadline(t.control_slots);
        Flow::Continue
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.now() != self.at || self.phase == Phase::Idle {
            return Flow::Continue;
        }
        match self.phase {
            Phase::AwaitCts => {
                if self.cts_ok {
                    let t = env.timing();
                    // Duration covers the ACK/jam slot after the data.
                    let group = self.group(env);
                    env.send_data(Dest::group(group), t.control_slots);
                    self.phase = Phase::AwaitAck;
                    self.at = env.response_deadline(t.data_slots);
                    Flow::Continue
                } else {
                    self.fail_attempt(env)
                }
            }
            Phase::AwaitAck => {
                if self.ack_ok {
                    self.phase = Phase::Idle;
                    // A clean leader ACK: no receiver jammed it.
                    if let Some(leader) = Self::leader(&self.group(env)) {
                        if !self.acked.contains(&leader) {
                            self.acked.push(leader);
                        }
                    }
                    Flow::Complete
                } else {
                    // Missing or jammed ACK: retransmit everything.
                    self.fail_attempt(env)
                }
            }
            Phase::Idle => Flow::Continue,
        }
    }

    pub(super) fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        if frame.msg != env.req.msg {
            return Flow::Continue;
        }
        let leader = Self::leader(&self.group(env));
        match (self.phase, frame.kind) {
            (Phase::AwaitCts, FrameKind::Cts) if Some(frame.src) == leader => {
                self.cts_ok = true;
            }
            (Phase::AwaitAck, FrameKind::Ack) if Some(frame.src) == leader => {
                self.ack_ok = true;
            }
            _ => {}
        }
        Flow::Continue
    }
}

impl Default for LeaderFsm {
    fn default() -> Self {
        LeaderFsm::new()
    }
}
