//! IEEE 802.11 DCF unicast: CSMA/CA + RTS/CTS/DATA/ACK with binary
//! exponential backoff and a retry limit. All protocols in the suite use
//! this machine for the unicast share of the traffic mix.

use super::{Env, Flow};
use rmm_sim::{Dest, Frame, FrameKind, NodeId, Slot};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Between contention phases; nothing in flight.
    Idle,
    /// RTS sent; CTS must be delivered by `at`.
    AwaitCts,
    /// DATA sent; ACK must be delivered by `at`.
    AwaitAck,
}

/// DCF unicast sender.
#[derive(Debug)]
pub struct DcfFsm {
    target: NodeId,
    phase: Phase,
    at: Slot,
    retries: u32,
    acked: Vec<NodeId>,
}

impl DcfFsm {
    /// New sender for a single `target`.
    pub fn new(target: NodeId) -> Self {
        DcfFsm {
            target,
            phase: Phase::Idle,
            at: 0,
            retries: 0,
            acked: Vec::new(),
        }
    }

    /// Receivers that ACKed (0 or 1 node).
    pub fn acked(&self) -> &[NodeId] {
        &self.acked
    }

    pub(super) fn on_access(&mut self, env: &mut Env<'_, '_>) -> Flow {
        let t = env.timing();
        env.send_control(
            FrameKind::Rts,
            Dest::Node(self.target),
            t.dcf_rts_duration(),
        );
        self.phase = Phase::AwaitCts;
        self.at = env.response_deadline(t.control_slots);
        Flow::Continue
    }

    /// The next slot at which `on_slot` will act — the pending response
    /// or airtime deadline — if an exchange is in flight. Feeds the
    /// station's event-horizon wakeup hint.
    pub(super) fn deadline(&self) -> Option<Slot> {
        (self.phase != Phase::Idle).then_some(self.at)
    }

    pub(super) fn on_slot(&mut self, env: &mut Env<'_, '_>) -> Flow {
        if env.now() != self.at || self.phase == Phase::Idle {
            return Flow::Continue;
        }
        // The expected response did not arrive.
        self.phase = Phase::Idle;
        self.retries += 1;
        if self.retries > env.timing().retry_limit {
            Flow::Abort
        } else {
            Flow::Recontend { reset_cw: false }
        }
    }

    pub(super) fn on_frame(&mut self, frame: &Frame, env: &mut Env<'_, '_>) -> Flow {
        if frame.src != self.target || frame.msg != env.req.msg {
            return Flow::Continue;
        }
        match (self.phase, frame.kind) {
            (Phase::AwaitCts, FrameKind::Cts) => {
                let t = env.timing();
                env.send_data(Dest::Node(self.target), t.control_slots);
                self.phase = Phase::AwaitAck;
                self.at = env.response_deadline(t.data_slots);
                Flow::Continue
            }
            (Phase::AwaitAck, FrameKind::Ack) => {
                self.acked.push(self.target);
                self.phase = Phase::Idle;
                Flow::Complete
            }
            _ => Flow::Continue,
        }
    }
}
