//! The CSMA/CA contention phase (steps 1–3 of the paper's CSMA/CA
//! listing): wait for the medium to be idle for DIFS, then count down a
//! random backoff drawn from the contention window, freezing whenever the
//! medium goes busy.

use rand::rngs::SmallRng;
use rand::Rng;

/// A single contention phase. Create (or [`Contention::begin`]) one per
/// medium-access attempt; poll it once per slot with the local carrier
/// sense; it reports `true` exactly once, on the slot the station may
/// transmit.
#[derive(Debug, Clone)]
pub struct Contention {
    backoff: u32,
    idle_run: u32,
    active: bool,
}

impl Contention {
    /// An inactive contention (never grants access until `begin`).
    pub fn idle() -> Self {
        Contention {
            backoff: 0,
            idle_run: 0,
            active: false,
        }
    }

    /// Starts a contention phase with backoff drawn uniformly from
    /// `0..=cw`.
    pub fn begin(&mut self, cw: u32, rng: &mut SmallRng) {
        self.backoff = rng.random_range(0..=cw);
        self.idle_run = 0;
        self.active = true;
    }

    /// Whether a contention phase is in progress.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Remaining backoff slots (for inspection/tests).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Consecutive idle slots accumulated toward the DIFS requirement.
    pub fn idle_run(&self) -> u32 {
        self.idle_run
    }

    /// Applies the effect of one (or more) busy slots without polling:
    /// the DIFS idle run restarts, the backoff counter survives. Used by
    /// the event-horizon fast path to replay a NAV-busy gap in O(1).
    pub fn freeze(&mut self) {
        if self.active {
            self.idle_run = 0;
        }
    }

    /// Replays `slots` consecutive idle polls in one call — the engine
    /// fast-forwarded over them, having proven the medium idle. The gap
    /// must end strictly before the access grant: the engine never
    /// skips past a station's wakeup hint, and the grant slot is hinted.
    pub fn advance_idle(&mut self, slots: u64, difs: u32) {
        if !self.active {
            return;
        }
        debug_assert!(
            self.slots_to_grant(difs).is_none_or(|g| slots < g),
            "idle replay of {slots} slots crosses the access grant"
        );
        for _ in 0..slots {
            let granted = self.poll(false, difs);
            debug_assert!(!granted, "idle replay must not grant access");
        }
    }

    /// Number of consecutive idle polls from here until this contention
    /// grants access (`None` when inactive): the remaining DIFS run,
    /// the backoff countdown, and the granting poll itself.
    pub fn slots_to_grant(&self, difs: u32) -> Option<u64> {
        if !self.active {
            return None;
        }
        Some(u64::from(difs.saturating_sub(self.idle_run)) + u64::from(self.backoff) + 1)
    }

    /// Advances the contention by one slot. `busy` is the carrier-sense
    /// state (medium busy during the previous slot, or virtual carrier
    /// sense via NAV). Returns `true` when the station wins access and
    /// may transmit *this* slot; the contention then deactivates.
    pub fn poll(&mut self, busy: bool, difs: u32) -> bool {
        if !self.active {
            return false;
        }
        if busy {
            // Freeze: the backoff counter survives, but a fresh DIFS of
            // idle is required before it resumes (802.11 DCF rule 3b).
            self.idle_run = 0;
            return false;
        }
        self.idle_run += 1;
        if self.idle_run <= difs {
            return false;
        }
        if self.backoff == 0 {
            self.active = false;
            return true;
        }
        self.backoff -= 1;
        false
    }
}

/// Binary exponential backoff: the next contention window after a failed
/// attempt with window `cw`, capped at `cw_max`.
pub fn next_cw(cw: u32, cw_max: u32) -> u32 {
    ((cw + 1) * 2 - 1).min(cw_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    /// Polls with an all-idle medium until access, returning the number of
    /// slots taken.
    fn slots_to_access(c: &mut Contention, difs: u32) -> u32 {
        for i in 1..10_000 {
            if c.poll(false, difs) {
                return i;
            }
        }
        panic!("contention never granted access");
    }

    #[test]
    fn zero_backoff_takes_difs_plus_one() {
        let mut c = Contention::idle();
        let mut r = rng();
        // Force backoff 0 by using cw = 0.
        c.begin(0, &mut r);
        assert_eq!(slots_to_access(&mut c, 4), 5);
    }

    #[test]
    fn backoff_adds_slots() {
        let mut r = rng();
        // With cw = 0 the backoff is always 0; larger draws take
        // difs + 1 + backoff slots.
        for _ in 0..50 {
            let mut c = Contention::idle();
            c.begin(7, &mut r);
            let b = c.backoff();
            assert_eq!(slots_to_access(&mut c, 4), 5 + b);
        }
    }

    #[test]
    fn busy_slot_resets_difs_but_keeps_backoff() {
        let mut c = Contention::idle();
        let mut r = rng();
        loop {
            c.begin(7, &mut r);
            if c.backoff() >= 2 {
                break;
            }
        }
        let b0 = c.backoff();
        // Let the backoff advance by exactly one slot past DIFS.
        for _ in 0..4 {
            assert!(!c.poll(false, 4));
        }
        assert!(!c.poll(false, 4)); // first decrement
        assert_eq!(c.backoff(), b0 - 1);
        // Medium busy: counter freezes.
        assert!(!c.poll(true, 4));
        assert_eq!(c.backoff(), b0 - 1);
        // Must re-earn DIFS before further decrements.
        for _ in 0..4 {
            assert!(!c.poll(false, 4));
            assert_eq!(c.backoff(), b0 - 1);
        }
        assert!(!c.poll(false, 4));
        assert_eq!(c.backoff(), b0 - 2);
    }

    #[test]
    fn inactive_contention_never_grants() {
        let mut c = Contention::idle();
        for _ in 0..100 {
            assert!(!c.poll(false, 4));
        }
    }

    #[test]
    fn grants_exactly_once() {
        let mut c = Contention::idle();
        let mut r = rng();
        c.begin(3, &mut r);
        let mut grants = 0;
        for _ in 0..100 {
            if c.poll(false, 4) {
                grants += 1;
            }
        }
        assert_eq!(grants, 1);
        assert!(!c.is_active());
    }

    #[test]
    fn slots_to_grant_predicts_poll_count() {
        let mut r = rng();
        for _ in 0..50 {
            let mut c = Contention::idle();
            c.begin(15, &mut r);
            // Wind forward a random number of idle slots, freezing once
            // along the way, and check the prediction at every point.
            assert!(!c.poll(false, 4));
            assert!(!c.poll(true, 4));
            loop {
                let predicted = c.slots_to_grant(4).expect("active");
                let mut probe = c.clone();
                let mut polls = 0u64;
                while !probe.poll(false, 4) {
                    polls += 1;
                }
                assert_eq!(polls + 1, predicted);
                if predicted == 1 {
                    assert!(c.poll(false, 4));
                    break;
                }
                assert!(!c.poll(false, 4));
            }
            assert_eq!(c.slots_to_grant(4), None, "inactive after grant");
        }
    }

    #[test]
    fn advance_idle_matches_slotwise_polling() {
        let mut r = rng();
        for gap in 0..8 {
            let mut a = Contention::idle();
            a.begin(15, &mut r);
            let mut b = a.clone();
            a.advance_idle(gap, 4);
            for _ in 0..gap {
                assert!(!b.poll(false, 4));
            }
            assert_eq!(a.backoff(), b.backoff());
            assert_eq!(a.idle_run(), b.idle_run());
            assert_eq!(a.is_active(), b.is_active());
        }
    }

    #[test]
    fn freeze_matches_busy_poll() {
        let mut r = rng();
        let mut a = Contention::idle();
        a.begin(7, &mut r);
        for _ in 0..3 {
            a.poll(false, 4);
        }
        let mut b = a.clone();
        a.freeze();
        assert!(!b.poll(true, 4));
        assert_eq!(a.backoff(), b.backoff());
        assert_eq!(a.idle_run(), b.idle_run());
        assert_eq!(a.idle_run(), 0);
    }

    #[test]
    fn next_cw_doubles_and_caps() {
        assert_eq!(next_cw(7, 255), 15);
        assert_eq!(next_cw(15, 255), 31);
        assert_eq!(next_cw(255, 255), 255);
        assert_eq!(next_cw(200, 255), 255);
    }

    #[test]
    fn backoff_is_within_window() {
        let mut r = rng();
        let mut c = Contention::idle();
        for _ in 0..200 {
            c.begin(7, &mut r);
            assert!(c.backoff() <= 7);
        }
    }

    #[test]
    fn backoff_draws_are_roughly_uniform() {
        let mut r = rng();
        let mut c = Contention::idle();
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            c.begin(7, &mut r);
            counts[c.backoff() as usize] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&count),
                "draw {i} occurred {count} times, expected ≈ 1000"
            );
        }
    }
}
