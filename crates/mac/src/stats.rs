//! Per-node accounting: what each sender believes happened to each of its
//! messages, and which data frames each station actually decoded. The
//! cross-run metrics (delivery rate, contention phases, completion time)
//! are assembled from these records by the `rmm-stats` crate.

use crate::request::TrafficKind;
use rmm_sim::{FrameKind, MsgId, NodeId, Slot};
use serde::{Deserialize, Serialize};

/// Transmitted-frame counts broken down by frame kind. Backs the paper's
/// Section 5 claim that LAMM "significantly reduces the number of RTS,
/// CTS, RAK and ACK frames" relative to BMMM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameKindCounts {
    /// RTS frames.
    pub rts: u64,
    /// CTS frames.
    pub cts: u64,
    /// Data frames.
    pub data: u64,
    /// ACK frames.
    pub ack: u64,
    /// RAK frames (BMMM/LAMM only).
    pub rak: u64,
    /// NAK frames (BSMA only).
    pub nak: u64,
}

impl FrameKindCounts {
    /// Increments the counter for `kind`.
    pub fn bump(&mut self, kind: FrameKind) {
        match kind {
            FrameKind::Rts => self.rts += 1,
            FrameKind::Cts => self.cts += 1,
            FrameKind::Data => self.data += 1,
            FrameKind::Ack => self.ack += 1,
            FrameKind::Rak => self.rak += 1,
            FrameKind::Nak => self.nak += 1,
        }
    }

    /// All control frames (everything but data).
    pub fn control_total(&self) -> u64 {
        self.rts + self.cts + self.ack + self.rak + self.nak
    }

    /// All frames.
    pub fn total(&self) -> u64 {
        self.control_total() + self.data
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &FrameKindCounts) {
        self.rts += other.rts;
        self.cts += other.cts;
        self.data += other.data;
        self.ack += other.ack;
        self.rak += other.rak;
        self.nak += other.nak;
    }
}

/// How a message's service ended, from the sender's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Still queued or in service when the simulation ended.
    Pending,
    /// The protocol considers the transfer complete at the given slot.
    /// For BMW/BMMM/LAMM this implies the protocol's delivery guarantee;
    /// for 802.11/Tang–Gerla/BSMA it merely means the sender is done.
    Completed(Slot),
    /// The service deadline expired before completion.
    TimedOut(Slot),
    /// The protocol gave up (DCF retry limit exceeded).
    Failed(Slot),
}

impl Outcome {
    /// Whether the sender finished the protocol run for this message.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed(_))
    }
}

/// A sender-side record of one serviced (or abandoned) message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SentRecord {
    /// Message id.
    pub msg: MsgId,
    /// Traffic class.
    pub kind: TrafficKind,
    /// Intended receivers at enqueue time.
    pub intended: Vec<NodeId>,
    /// Arrival slot at the MAC.
    pub arrival: Slot,
    /// Slot at which service (first contention) began, if it did.
    pub started: Option<Slot>,
    /// Final outcome.
    pub outcome: Outcome,
    /// Number of contention phases spent on this message.
    pub contention_phases: u32,
    /// Number of data-frame transmissions.
    pub data_tx: u32,
    /// Number of control-frame transmissions.
    pub control_tx: u32,
    /// Receivers that explicitly ACKed (BMW/BMMM/LAMM).
    pub acked: Vec<NodeId>,
    /// Receivers LAMM deemed served by geometric coverage rather than an
    /// explicit ACK (empty for every other protocol).
    pub assumed_covered: Vec<NodeId>,
    /// Receivers the sender abandoned after exhausting the
    /// per-destination retry budget (`timing.dest_retry_limit`).
    pub gave_up: Vec<NodeId>,
}

impl SentRecord {
    /// Completion latency (completion slot − arrival), if completed.
    pub fn completion_time(&self) -> Option<Slot> {
        match self.outcome {
            Outcome::Completed(at) => Some(at - self.arrival),
            _ => None,
        }
    }

    /// Whether this record is for a multicast or broadcast message (the
    /// population the paper's multicast figures are computed over).
    pub fn is_group(&self) -> bool {
        matches!(self.kind, TrafficKind::Multicast | TrafficKind::Broadcast)
    }
}

/// Running per-node counters, cheap enough to keep always-on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCounters {
    /// Frames this station put on the air.
    pub frames_sent: u64,
    /// Transmitted frames by kind.
    pub sent_by_kind: FrameKindCounts,
    /// Frames this station decoded.
    pub frames_received: u64,
    /// Data frames decoded (including overheard ones).
    pub data_received: u64,
    /// Times the station entered a contention phase.
    pub contention_phases: u64,
    /// Responses suppressed because the station was in yield state.
    pub yield_suppressions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: Outcome) -> SentRecord {
        SentRecord {
            msg: MsgId::new(NodeId(0), 0),
            kind: TrafficKind::Multicast,
            intended: vec![NodeId(1)],
            arrival: 10,
            started: Some(12),
            outcome,
            contention_phases: 2,
            data_tx: 1,
            control_tx: 4,
            acked: vec![NodeId(1)],
            assumed_covered: vec![],
            gave_up: vec![],
        }
    }

    #[test]
    fn completion_time_only_for_completed() {
        assert_eq!(record(Outcome::Completed(40)).completion_time(), Some(30));
        assert_eq!(record(Outcome::TimedOut(110)).completion_time(), None);
        assert_eq!(record(Outcome::Failed(50)).completion_time(), None);
        assert_eq!(record(Outcome::Pending).completion_time(), None);
    }

    #[test]
    fn group_classification() {
        let mut r = record(Outcome::Pending);
        assert!(r.is_group());
        r.kind = TrafficKind::Broadcast;
        assert!(r.is_group());
        r.kind = TrafficKind::Unicast;
        assert!(!r.is_group());
    }

    #[test]
    fn outcome_completed_predicate() {
        assert!(Outcome::Completed(5).is_completed());
        assert!(!Outcome::TimedOut(5).is_completed());
        assert!(!Outcome::Pending.is_completed());
    }
}
