//! The multicast MAC protocol suite of *"Reliable MAC Layer Multicast in
//! IEEE 802.11 Wireless Networks"* (Sun, Huang, Arora, Lai — ICPP 2002).
//!
//! The crate provides:
//!
//! * the paper's contributions — [`protocols::BmmmFsm`] (Batch Mode
//!   Multicast MAC) and its location-aware refinement LAMM,
//! * the baselines it evaluates against — plain IEEE 802.11 multicast,
//!   the Tang–Gerla multicast-RTS protocol, BSMA, and BMW,
//! * DCF unicast for the unicast share of the traffic mix,
//! * shared mechanisms: the CSMA/CA [`contention::Contention`] engine,
//!   the [`nav::Nav`] virtual carrier sense, [`timing::MacTiming`], and
//!   the [`node::MacNode`] station that glues them onto the `rmm-sim`
//!   channel.
//!
//! Every station runs the same protocol in a simulation; which one is
//! selected with [`ProtocolKind`].
//!
//! # Example
//!
//! ```
//! use rmm_mac::{MacNode, MacTiming, ProtocolKind, TrafficKind};
//! use rmm_sim::{Capture, Engine, NodeId, Topology};
//! use rmm_geom::Point;
//!
//! // Three stations in a row, all within range of each other.
//! let topo = Topology::new(
//!     vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0), Point::new(0.1, 0.1)],
//!     0.2,
//! );
//! let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, MacTiming::default(), 1);
//! let mut engine = Engine::new(topo, Capture::ZorziRao, 1);
//!
//! // Node 0 multicasts to its two neighbors.
//! nodes[0].enqueue(TrafficKind::Multicast, vec![NodeId(1), NodeId(2)], 0);
//! engine.run(&mut nodes, 60);
//!
//! assert!(nodes[0].records()[0].outcome.is_completed());
//! assert!(nodes[1].received().len() == 1 && nodes[2].received().len() == 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contention;
pub mod nav;
pub mod node;
pub mod protocols;
pub mod request;
pub mod stats;
pub mod timing;

pub use contention::{next_cw, Contention};
pub use nav::Nav;
pub use node::{MacNode, NodeCore};
pub use protocols::{BmmmFsm, BmwFsm, BsmaFsm, DcfFsm, Flow, Fsm, PlainFsm, ProtocolKind, TangFsm};
pub use request::{Request, TrafficKind};
pub use stats::{FrameKindCounts, NodeCounters, Outcome, SentRecord};
pub use timing::{max_cts_defer_window, MacTiming, PhyTimingUs, FHSS};
