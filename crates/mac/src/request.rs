//! MAC service requests, as handed down by the network layer.
//!
//! Per the paper's model, "when a multicast request arrives from the
//! network layer, it is assumed that the request indicates the set of
//! neighbors required to reach all the members of the intended multicast
//! group" — so a request carries an explicit receiver list resolved
//! against the sender's neighborhood.

use rmm_sim::{MsgId, NodeId, Slot};
use serde::{Deserialize, Serialize};

/// The traffic class of a request (the paper's message mix is 0.2 / 0.4 /
/// 0.4 across these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficKind {
    /// One addressed receiver; always served by DCF unicast.
    Unicast,
    /// A subset of the sender's neighbors.
    Multicast,
    /// All of the sender's neighbors (a special case of multicast).
    Broadcast,
}

/// A queued MAC request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Message identifier (sender + sequence).
    pub msg: MsgId,
    /// Traffic class.
    pub kind: TrafficKind,
    /// Intended receivers, resolved to current neighbors at arrival.
    pub receivers: Vec<NodeId>,
    /// Slot the request arrived at the MAC.
    pub arrival: Slot,
}

impl Request {
    /// Creates a request.
    pub fn new(msg: MsgId, kind: TrafficKind, receivers: Vec<NodeId>, arrival: Slot) -> Self {
        debug_assert!(
            kind != TrafficKind::Unicast || receivers.len() == 1,
            "unicast requests carry exactly one receiver"
        );
        Request {
            msg,
            kind,
            receivers,
            arrival,
        }
    }

    /// Whether the request has passed its service deadline at `now`.
    pub fn timed_out(&self, now: Slot, timeout: Slot) -> bool {
        now >= self.arrival + timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: Slot) -> Request {
        Request::new(
            MsgId::new(NodeId(0), 0),
            TrafficKind::Multicast,
            vec![NodeId(1), NodeId(2)],
            arrival,
        )
    }

    #[test]
    fn timeout_is_measured_from_arrival() {
        let r = req(50);
        assert!(!r.timed_out(50, 100));
        assert!(!r.timed_out(149, 100));
        assert!(r.timed_out(150, 100));
    }

    #[test]
    fn request_fields_roundtrip() {
        let r = req(3);
        assert_eq!(r.kind, TrafficKind::Multicast);
        assert_eq!(r.receivers.len(), 2);
        assert_eq!(r.arrival, 3);
    }
}
