//! MAC timing parameters.
//!
//! The simulation uses the paper's abstract slot units (Table 2): control
//! frames ("Signal Time") take 1 slot and data frames 5 slots. Responses
//! that 802.11 sends "after SIFS" occupy the slot immediately following
//! the triggering frame — SIFS (28 µs for FHSS) is shorter than a slot
//! (50 µs), so in slot units it rounds to "the very next slot" and the
//! medium shows no idle slot inside a frame exchange. DIFS, which *is*
//! longer than a slot, is modeled as a required run of idle slots before
//! backoff may progress.
//!
//! The microsecond-level FHSS constants are kept for the Section 3
//! feasibility computation: the paper argues a *random CTS defer window*
//! cannot work because the window `w` must satisfy
//! `w < (DIFS − SIFS) / slot`, which is ≤ 1 for FHSS (and 0 if PIFS is in
//! use). [`max_cts_defer_window`] reproduces that arithmetic.

use serde::{Deserialize, Serialize};

/// Slot-denominated MAC timing used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacTiming {
    /// Airtime of a control frame (RTS/CTS/ACK/RAK/NAK), in slots.
    pub control_slots: u32,
    /// Airtime of a data frame, in slots (paper: 5).
    pub data_slots: u32,
    /// Idle slots required before backoff may progress (DIFS).
    pub difs: u32,
    /// Initial contention window: backoff drawn uniformly from `0..=cw`.
    pub cw_min: u32,
    /// Contention window ceiling for binary exponential backoff.
    pub cw_max: u32,
    /// DCF unicast retry limit before the frame is dropped. Also the
    /// ceiling on *consecutive* failed recontentions for every other
    /// protocol (enforced at the node level), so no FSM can retry
    /// unboundedly.
    pub retry_limit: u32,
    /// Per-destination retry budget for the reliable multicast
    /// protocols: once a receiver has failed to confirm this many
    /// service rounds, the sender gives up on it (emitting a `GiveUp`
    /// trace event) and serves the rest of the group. `u32::MAX`
    /// effectively disables the budget.
    pub dest_retry_limit: u32,
    /// Message service timeout in slots (paper: 100), measured from the
    /// message's arrival at the MAC.
    pub timeout: u64,
    /// Whether stations honor Duration-based yielding (the NAV). Always
    /// on in the paper's protocols; the ablation bench turns it off to
    /// measure what the virtual carrier sense buys.
    pub nav_enabled: bool,
}

impl Default for MacTiming {
    fn default() -> Self {
        MacTiming {
            control_slots: 1,
            data_slots: 5,
            difs: 4,
            cw_min: 7,
            cw_max: 255,
            retry_limit: 7,
            dest_retry_limit: 7,
            timeout: 100,
            nav_enabled: true,
        }
    }
}

impl MacTiming {
    /// Slots from the *start* of a transmitted frame with airtime `sent`
    /// until a 1-control-frame response to it is fully delivered: the
    /// frame's airtime, plus the response airtime (the response occupies
    /// the slot right after the frame ends, and is delivered at the
    /// beginning of the slot after that).
    pub fn response_delivered_after(&self, sent: u32) -> u64 {
        u64::from(sent) + u64::from(self.control_slots)
    }

    /// Duration (NAV) carried by a DCF/BMW RTS: the CTS + DATA + ACK that
    /// follow it.
    pub fn dcf_rts_duration(&self) -> u32 {
        2 * self.control_slots + self.data_slots
    }

    /// Duration carried by a Tang–Gerla multicast RTS: CTS + DATA.
    pub fn tg_rts_duration(&self) -> u32 {
        self.control_slots + self.data_slots
    }

    /// Duration carried by a BSMA multicast RTS: CTS + DATA + NAK window.
    pub fn bsma_rts_duration(&self) -> u32 {
        2 * self.control_slots + self.data_slots
    }

    /// Duration carried by the `i`-th (0-based) of `m` BMMM RTS frames —
    /// the paper's Figure 3 formula
    /// `(‖S‖−i)·T_RTS + (‖S‖−i+1)·T_CTS + T_DATA + ‖S‖·(T_RAK + T_ACK)`
    /// with 1-based `i`, expressed in slots.
    pub fn bmmm_rts_duration(&self, i: usize, m: usize) -> u32 {
        let remaining = (m - i - 1) as u32; // RTS/CTS pairs after this one
        remaining * 2 * self.control_slots  // later RTS+CTS pairs
            + self.control_slots            // this frame's CTS
            + self.data_slots
            + (m as u32) * 2 * self.control_slots // RAK+ACK per receiver
    }

    /// Duration carried by the BMMM DATA frame: the full RAK/ACK train.
    pub fn bmmm_data_duration(&self, m: usize) -> u32 {
        (m as u32) * 2 * self.control_slots
    }

    /// Duration carried by the `i`-th (0-based) of `m` BMMM RAK frames.
    pub fn bmmm_rak_duration(&self, i: usize, m: usize) -> u32 {
        let remaining = (m - i - 1) as u32;
        remaining * 2 * self.control_slots + self.control_slots
    }
}

/// IEEE 802.11 FHSS PHY timing in microseconds (1997 spec values quoted
/// in the paper's Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyTimingUs {
    /// Short inter-frame spacing.
    pub sifs: f64,
    /// PCF inter-frame spacing.
    pub pifs: f64,
    /// DCF inter-frame spacing.
    pub difs: f64,
    /// Slot time.
    pub slot: f64,
}

/// The FHSS constants: SIFS 28 µs, PIFS 78 µs, DIFS 128 µs, slot 50 µs.
pub const FHSS: PhyTimingUs = PhyTimingUs {
    sifs: 28.0,
    pifs: 78.0,
    difs: 128.0,
    slot: 50.0,
};

/// Maximum usable contention-window size `w` for the hypothetical "random
/// CTS defer" fix discussed (and dismissed) in Section 3: every deferred
/// CTS must still start before any station could complete a DIFS, so
/// `w < (deadline − SIFS) / slot`, where `deadline` is DIFS — or PIFS if
/// the point coordinator may seize the medium.
pub fn max_cts_defer_window(phy: &PhyTimingUs, deadline_us: f64) -> u32 {
    let bound = (deadline_us - phy.sifs) / phy.slot;
    // w must be *strictly* below the bound.
    let max = bound.ceil() - 1.0;
    if max < 0.0 {
        0
    } else {
        max as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let t = MacTiming::default();
        assert_eq!(t.control_slots, 1, "signal time: 1 slot");
        assert_eq!(t.data_slots, 5, "data transmission time: 5 slots");
        assert_eq!(t.timeout, 100, "time out: 100 slots");
    }

    #[test]
    fn sifs_gap_invariant_holds() {
        // The paper's co-existence argument: the medium is never idle for
        // 2·SIFS + T_CTS during a BMMM batch, which must be < DIFS. In our
        // slot units the largest intra-batch gap is one control slot
        // (a missing CTS), strictly below DIFS.
        let t = MacTiming::default();
        assert!(t.control_slots < t.difs);
    }

    #[test]
    fn fhss_defer_window_is_one() {
        // Paper: "the maximum value allowed for w is 1".
        assert_eq!(max_cts_defer_window(&FHSS, FHSS.difs), 1);
    }

    #[test]
    fn pifs_defer_window_is_zero() {
        // Paper footnote: with PIFS, "the only value available for w
        // would be 0".
        assert_eq!(max_cts_defer_window(&FHSS, FHSS.pifs), 0);
    }

    #[test]
    fn defer_window_grows_with_larger_difs() {
        let big = PhyTimingUs {
            difs: 528.0,
            ..FHSS
        };
        assert_eq!(max_cts_defer_window(&big, big.difs), 9);
    }

    #[test]
    fn bmmm_rts_duration_matches_figure3() {
        // m = 3, i = 1 (1-based: the 2nd RTS): Figure 3 gives
        // (3−2)·T_RTS + (3−2+1)·T_CTS + T_DATA + 3·(T_RAK+T_ACK)
        // = 1 + 2 + 5 + 6 = 14 slots.
        let t = MacTiming::default();
        assert_eq!(t.bmmm_rts_duration(1, 3), 14);
        // First RTS of the batch reserves the whole rest of the batch.
        assert_eq!(t.bmmm_rts_duration(0, 3), 2 * 2 + 1 + 5 + 6);
        // Last RTS: only its CTS, the data and the RAK train remain.
        assert_eq!(t.bmmm_rts_duration(2, 3), 1 + 5 + 6);
    }

    #[test]
    fn bmmm_rak_durations_shrink_to_final_ack() {
        let t = MacTiming::default();
        assert_eq!(t.bmmm_rak_duration(0, 3), 5);
        assert_eq!(t.bmmm_rak_duration(1, 3), 3);
        assert_eq!(t.bmmm_rak_duration(2, 3), 1);
    }

    #[test]
    fn dcf_durations() {
        let t = MacTiming::default();
        assert_eq!(t.dcf_rts_duration(), 7);
        assert_eq!(t.tg_rts_duration(), 6);
        assert_eq!(t.bsma_rts_duration(), 7);
    }

    #[test]
    fn response_deadline_arithmetic() {
        let t = MacTiming::default();
        // A 1-slot RTS sent at slot s: CTS delivered at s + 2.
        assert_eq!(t.response_delivered_after(1), 2);
        // A 5-slot DATA sent at slot s: ACK delivered at s + 6.
        assert_eq!(t.response_delivered_after(5), 6);
    }
}
