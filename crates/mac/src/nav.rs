//! The Network Allocation Vector (virtual carrier sense).
//!
//! The paper's receiver rule: "if a node q receives a control frame
//! (RTS/CTS/RAK/ACK) not intended for it, q yields for Duration time
//! specified in the control frame". The NAV tracks such reservations;
//! while one is pending the station is *in yield state* — it neither
//! contends nor answers polls.
//!
//! One refinement the paper leaves implicit but its protocols require:
//! reservations are tracked *per message*. A BMMM batch member overhears
//! the RTS/CTS/RAK/ACK frames addressed to its sibling receivers; were
//! those to put it in yield state it could never answer its own poll and
//! the batch would deadlock. This is the 802.11 "same TXOP" exception:
//! a station never yields against the message it is itself a participant
//! of ([`Nav::yielding_except`]), while contention ([`Nav::yielding`])
//! honors every reservation.

use rmm_sim::{MsgId, Slot};

/// Virtual carrier-sense state: per-message medium reservations.
#[derive(Debug, Clone, Default)]
pub struct Nav {
    /// `(message, reserved-until)` pairs; at most one entry per message.
    entries: Vec<(MsgId, Slot)>,
}

impl Nav {
    /// A clear NAV.
    pub fn new() -> Self {
        Nav::default()
    }

    /// Extends the reservation of `msg` to cover `duration` slots
    /// starting at `now` (the slot at which the reserving frame ended).
    /// Shorter reservations never shrink an existing one.
    pub fn reserve(&mut self, now: Slot, duration: u32, msg: MsgId) {
        let until = now + Slot::from(duration);
        if until <= now {
            return;
        }
        self.entries.retain(|&(_, u)| u > now);
        if let Some(entry) = self.entries.iter_mut().find(|(m, _)| *m == msg) {
            if until > entry.1 {
                entry.1 = until;
            }
        } else {
            self.entries.push((msg, until));
        }
    }

    /// Whether the station is yielding at slot `now` (used for physical
    /// + virtual carrier sense during contention).
    pub fn yielding(&self, now: Slot) -> bool {
        self.entries.iter().any(|&(_, until)| now < until)
    }

    /// Whether the station is yielding at slot `now` against any message
    /// *other than* `msg`. Used when deciding whether to answer a poll
    /// (RTS/RAK/data) belonging to `msg`.
    pub fn yielding_except(&self, now: Slot, msg: MsgId) -> bool {
        self.entries
            .iter()
            .any(|&(m, until)| m != msg && now < until)
    }

    /// The first slot at which all reservations lapse.
    pub fn clear_at(&self) -> Slot {
        self.entries.iter().map(|&(_, u)| u).max().unwrap_or(0)
    }

    /// The first slot at or after `now` at which the station is not
    /// yielding. Used by the event-horizon fast path: the NAV is the
    /// only carrier-sense input that can change during a skipped gap,
    /// and it is static, so the yield/idle boundary is known up front.
    pub fn next_idle(&self, now: Slot) -> Slot {
        now.max(self.clear_at())
    }

    /// Drops every reservation.
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmm_sim::NodeId;

    fn msg(n: u32) -> MsgId {
        MsgId::new(NodeId(n), 0)
    }

    #[test]
    fn fresh_nav_is_clear() {
        let nav = Nav::new();
        assert!(!nav.yielding(0));
        assert!(!nav.yielding(1000));
    }

    #[test]
    fn reserve_covers_duration() {
        let mut nav = Nav::new();
        nav.reserve(10, 5, msg(1));
        assert!(nav.yielding(10));
        assert!(nav.yielding(14));
        assert!(!nav.yielding(15));
        assert_eq!(nav.clear_at(), 15);
    }

    #[test]
    fn zero_duration_reserves_nothing() {
        let mut nav = Nav::new();
        nav.reserve(10, 0, msg(1));
        assert!(!nav.yielding(10));
    }

    #[test]
    fn longer_reservation_wins_within_message() {
        let mut nav = Nav::new();
        nav.reserve(10, 20, msg(1));
        nav.reserve(12, 3, msg(1)); // ends at 15 — must not shrink
        assert!(nav.yielding(29));
        assert!(!nav.yielding(30));
    }

    #[test]
    fn same_message_is_exempt() {
        let mut nav = Nav::new();
        nav.reserve(10, 20, msg(1));
        assert!(nav.yielding(15));
        assert!(!nav.yielding_except(15, msg(1)));
        assert!(nav.yielding_except(15, msg(2)));
    }

    #[test]
    fn other_message_still_blocks() {
        let mut nav = Nav::new();
        nav.reserve(10, 20, msg(1));
        nav.reserve(10, 5, msg(2));
        // At slot 12 both reservations pend: neither message is fully
        // exempt because the other one is still live.
        assert!(nav.yielding_except(12, msg(1)));
        assert!(nav.yielding_except(12, msg(2)));
        // After msg(2)'s reservation lapses, msg(1) is exempt again.
        assert!(!nav.yielding_except(16, msg(1)));
    }

    #[test]
    fn expired_entries_are_pruned_on_reserve() {
        let mut nav = Nav::new();
        nav.reserve(0, 5, msg(1));
        nav.reserve(10, 5, msg(2)); // prunes msg(1) (expired at 5)
        assert_eq!(nav.clear_at(), 15);
        assert!(!nav.yielding_except(12, msg(2)));
    }

    #[test]
    fn next_idle_is_first_non_yielding_slot() {
        let mut nav = Nav::new();
        assert_eq!(nav.next_idle(7), 7);
        nav.reserve(10, 5, msg(1));
        assert_eq!(nav.next_idle(10), 15);
        assert_eq!(nav.next_idle(14), 15);
        assert_eq!(nav.next_idle(20), 20);
        // Consistency with `yielding`: yields strictly before, not at.
        assert!(nav.yielding(14));
        assert!(!nav.yielding(nav.next_idle(0)));
    }

    #[test]
    fn reset_clears() {
        let mut nav = Nav::new();
        nav.reserve(0, 100, msg(1));
        nav.reset();
        assert!(!nav.yielding(1));
    }
}
