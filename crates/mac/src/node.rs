//! The MAC station: glue between the simulator's [`Station`] trait, the
//! shared receiver behaviour (CTS/ACK/NAK replies, NAV yielding,
//! promiscuous data caching) and the per-protocol sender FSMs.

use crate::contention::{next_cw, Contention};
use crate::nav::Nav;
use crate::protocols::{Env, Flow, Fsm, ProtocolKind};
use crate::request::{Request, TrafficKind};
use crate::stats::{NodeCounters, Outcome, SentRecord};
use crate::timing::MacTiming;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rmm_geom::Point;
use rmm_sim::{
    Ctx, Dest, Frame, FrameInfo, FrameKind, MsgId, MsgSet, NodeId, Slot, Station, Topology,
    TraceEvent,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Receiver-side wait-for-data state (BSMA): after answering a group RTS
/// with a CTS, the receiver expects the data by `deadline` and NAKs the
/// sender otherwise.
#[derive(Debug, Clone)]
struct WaitData {
    msg: MsgId,
    sender: NodeId,
    deadline: Slot,
}

/// Node state shared between the receiver logic and the sender FSMs.
#[derive(Debug)]
pub struct NodeCore {
    /// This station's id.
    pub id: NodeId,
    /// Protocol under test for multicast/broadcast traffic.
    pub protocol: ProtocolKind,
    /// MAC timing parameters.
    pub timing: MacTiming,
    neighbors: Vec<NodeId>,
    positions: Arc<Vec<Point>>,
    radius: f64,
    /// Station-local randomness (backoff draws).
    pub rng: SmallRng,
    /// Virtual carrier sense.
    pub nav: Nav,
    /// End of this station's own transmission, if one is on the air.
    pub tx_until: Slot,
    received: MsgSet,
    wait_data: Vec<WaitData>,
    /// Running counters.
    pub counters: NodeCounters,
    records: Vec<SentRecord>,
    seq: u32,
}

impl NodeCore {
    /// All station positions (beacon-learned; LAMM reads only neighbors').
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Shared transmission radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// This station's neighbors.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Data messages this station has decoded.
    pub fn received(&self) -> &MsgSet {
        &self.received
    }

    /// Puts a frame on the air with node-level bookkeeping. Used by both
    /// the sender FSMs (via [`Env::send`]) and receiver responses.
    pub fn transmit(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
        debug_assert!(self.tx_until <= ctx.now);
        self.tx_until = ctx.now + Slot::from(frame.slots);
        self.counters.frames_sent += 1;
        self.counters.sent_by_kind.bump(frame.kind);
        ctx.send(frame);
    }
}

/// The sender side of one in-service message.
#[derive(Debug)]
struct Active {
    req: Request,
    started: Slot,
    phases: u32,
    cw: u32,
    contention: Contention,
    contending: bool,
    fsm: Fsm,
    data_tx: u32,
    control_tx: u32,
    /// Consecutive failed recontentions (`reset_cw: false`); cleared by
    /// forward progress (`reset_cw: true`). Capped at
    /// `timing.retry_limit` for every protocol, mirroring DCF.
    retries: u32,
}

/// A complete MAC station.
#[derive(Debug)]
pub struct MacNode {
    core: NodeCore,
    queue: VecDeque<Request>,
    active: Option<Active>,
    /// First slot whose `on_slot` has not run yet. When the engine
    /// fast-forwards, this lags `ctx.now` and the gap is replayed by
    /// [`MacNode::catch_up`].
    next_poll: Slot,
}

enum DriveMode {
    None,
    Access,
    Slot,
}

impl MacNode {
    /// Builds a station. `topo` provides neighbors and positions; `seed`
    /// derives the station's private RNG stream.
    pub fn new(
        id: NodeId,
        protocol: ProtocolKind,
        timing: MacTiming,
        topo: &Topology,
        positions: Arc<Vec<Point>>,
        seed: u64,
    ) -> Self {
        MacNode {
            core: NodeCore {
                id,
                protocol,
                timing,
                neighbors: topo.neighbors(id).to_vec(),
                positions,
                radius: topo.radius(),
                rng: SmallRng::seed_from_u64(seed ^ (u64::from(id.0) << 32) ^ 0x9e37_79b9),
                nav: Nav::new(),
                tx_until: 0,
                received: MsgSet::default(),
                wait_data: Vec::new(),
                counters: NodeCounters::default(),
                records: Vec::new(),
                seq: 0,
            },
            queue: VecDeque::new(),
            active: None,
            next_poll: 0,
        }
    }

    /// Builds one station per topology node, all running `protocol`.
    pub fn build_network(
        topo: &Topology,
        protocol: ProtocolKind,
        timing: MacTiming,
        seed: u64,
    ) -> Vec<MacNode> {
        let positions = Arc::new(topo.positions().to_vec());
        Self::build_network_with_positions(topo, positions, protocol, timing, seed)
    }

    /// Builds the network with an explicit *advertised* position table —
    /// what stations learned from beacons, which may differ from the
    /// channel's ground truth (GPS error). LAMM reads only this table.
    pub fn build_network_with_positions(
        topo: &Topology,
        advertised: Arc<Vec<Point>>,
        protocol: ProtocolKind,
        timing: MacTiming,
        seed: u64,
    ) -> Vec<MacNode> {
        assert_eq!(advertised.len(), topo.len());
        (0..topo.len() as u32)
            .map(|i| {
                MacNode::new(
                    NodeId(i),
                    protocol,
                    timing,
                    topo,
                    Arc::clone(&advertised),
                    seed,
                )
            })
            .collect()
    }

    /// Shared node state (tests and harnesses).
    pub fn core(&self) -> &NodeCore {
        &self.core
    }

    /// Sender-side records accumulated so far.
    pub fn records(&self) -> &[SentRecord] {
        &self.core.records
    }

    /// Data messages this station decoded.
    pub fn received(&self) -> &MsgSet {
        &self.core.received
    }

    /// Running counters.
    pub fn counters(&self) -> NodeCounters {
        self.core.counters
    }

    /// Queued (not yet serviced) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.active.is_some())
    }

    /// The message currently in service, if any, as
    /// `(msg, arrival, service_start)`. Read by the workload liveness
    /// watchdog to detect senders stuck on one message.
    pub fn active_msg(&self) -> Option<(MsgId, Slot, Slot)> {
        self.active
            .as_ref()
            .map(|a| (a.req.msg, a.req.arrival, a.started))
    }

    /// Beacon refresh: adopts the current neighbor table and advertised
    /// position map, as a round of beacon exchanges would. Called by the
    /// mobile runner every beacon period; in-flight exchanges keep their
    /// already-resolved receiver lists (stale, as in reality).
    pub fn refresh_neighbors(&mut self, topo: &Topology, advertised: Arc<Vec<Point>>) {
        self.core.neighbors = topo.neighbors(self.core.id).to_vec();
        self.core.positions = advertised;
    }

    /// Enqueues a MAC request arriving at slot `now`; returns its id.
    pub fn enqueue(&mut self, kind: TrafficKind, receivers: Vec<NodeId>, now: Slot) -> MsgId {
        let msg = MsgId::new(self.core.id, self.core.seq);
        self.core.seq += 1;
        self.queue
            .push_back(Request::new(msg, kind, receivers, now));
        msg
    }

    /// Converts any in-flight and queued messages into records at the end
    /// of a run, so the harness sees every request.
    pub fn drain_unfinished(&mut self, now: Slot) {
        if let Some(active) = self.active.take() {
            let outcome = if active.req.timed_out(now, self.core.timing.timeout) {
                Outcome::TimedOut(now)
            } else {
                Outcome::Pending
            };
            self.finish(active, outcome);
        }
        while let Some(req) = self.queue.pop_front() {
            let outcome = if req.timed_out(now, self.core.timing.timeout) {
                Outcome::TimedOut(now)
            } else {
                Outcome::Pending
            };
            self.record_unserviced(req, outcome);
        }
    }

    /// Records a request that never entered service.
    fn record_unserviced(&mut self, req: Request, outcome: Outcome) {
        self.core.records.push(SentRecord {
            msg: req.msg,
            kind: req.kind,
            intended: req.receivers,
            arrival: req.arrival,
            started: None,
            outcome,
            contention_phases: 0,
            data_tx: 0,
            control_tx: 0,
            acked: Vec::new(),
            assumed_covered: Vec::new(),
            gave_up: Vec::new(),
        });
    }

    fn finish(&mut self, active: Active, outcome: Outcome) {
        self.core.records.push(SentRecord {
            msg: active.req.msg,
            kind: active.req.kind,
            intended: active.req.receivers.clone(),
            arrival: active.req.arrival,
            started: Some(active.started),
            outcome,
            contention_phases: active.phases,
            data_tx: active.data_tx,
            control_tx: active.control_tx,
            acked: active.fsm.acked().to_vec(),
            assumed_covered: active.fsm.assumed_covered().to_vec(),
            gave_up: active.fsm.gave_up().to_vec(),
        });
    }

    /// Pops the next serviceable request (recording stale ones as timed
    /// out without service) and begins its first contention phase.
    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(self.active.is_none());
        let now = ctx.now;
        while let Some(req) = self.queue.pop_front() {
            if req.timed_out(now, self.core.timing.timeout) {
                self.record_unserviced(req, Outcome::TimedOut(now));
                continue;
            }
            let fsm = Fsm::for_request(self.core.protocol, &req);
            let cw = self.core.timing.cw_min;
            let mut contention = Contention::idle();
            contention.begin(cw, &mut self.core.rng);
            self.core.counters.contention_phases += 1;
            let (node, msg, backoff_slots) = (self.core.id, req.msg, contention.backoff());
            ctx.emit(|| TraceEvent::ContentionStart {
                slot: now,
                node,
                msg,
                attempts: 1,
                backoff_slots,
            });
            self.active = Some(Active {
                req,
                started: now,
                phases: 1,
                cw,
                contention,
                contending: true,
                fsm,
                data_tx: 0,
                control_tx: 0,
                retries: 0,
            });
            return;
        }
    }

    /// Runs one FSM callback with the split-borrow dance, then applies the
    /// resulting [`Flow`].
    fn drive_fsm<F>(&mut self, ctx: &mut Ctx<'_>, f: F)
    where
        F: FnOnce(&mut Fsm, &mut Env<'_, '_>) -> Flow,
    {
        let Some(mut active) = self.active.take() else {
            return;
        };
        let flow = {
            let Active {
                fsm,
                req,
                data_tx,
                control_tx,
                ..
            } = &mut active;
            let mut env = Env {
                core: &mut self.core,
                ctx,
                req,
                data_tx,
                control_tx,
            };
            f(fsm, &mut env)
        };
        match flow {
            Flow::Continue => self.active = Some(active),
            Flow::Recontend { reset_cw } => {
                if reset_cw {
                    active.retries = 0;
                } else {
                    // Retry ceiling for every protocol: DCF bounds its
                    // own retries inside the FSM, but the multicast FSMs
                    // recontend optimistically; without this cap a dead
                    // neighborhood would retry forever.
                    active.retries += 1;
                    if active.retries > self.core.timing.retry_limit {
                        self.finish(active, Outcome::Failed(ctx.now));
                        return;
                    }
                }
                active.cw = if reset_cw {
                    self.core.timing.cw_min
                } else {
                    next_cw(active.cw, self.core.timing.cw_max)
                };
                active.contention.begin(active.cw, &mut self.core.rng);
                active.contending = true;
                active.phases += 1;
                self.core.counters.contention_phases += 1;
                let (now, node, msg) = (ctx.now, self.core.id, active.req.msg);
                let (attempts, backoff_slots) = (active.phases, active.contention.backoff());
                if !reset_cw {
                    ctx.emit(|| TraceEvent::Retry {
                        slot: now,
                        node,
                        msg,
                        round: attempts,
                    });
                }
                ctx.emit(|| TraceEvent::ContentionStart {
                    slot: now,
                    node,
                    msg,
                    attempts,
                    backoff_slots,
                });
                self.active = Some(active);
            }
            Flow::Complete => self.finish(active, Outcome::Completed(ctx.now)),
            Flow::Abort => self.finish(active, Outcome::Failed(ctx.now)),
        }
    }

    /// Whether the station may transmit a receiver response right now.
    fn can_respond(&self, now: Slot) -> bool {
        self.core.tx_until <= now && self.active.as_ref().is_none_or(|a| a.contending)
    }

    /// Sends a receiver-side response frame.
    fn respond(
        &mut self,
        ctx: &mut Ctx<'_>,
        kind: FrameKind,
        to: NodeId,
        duration: u32,
        msg: MsgId,
        info: FrameInfo,
    ) {
        let frame = Frame {
            kind,
            src: self.core.id,
            dest: Dest::Node(to),
            duration,
            msg,
            slots: self.core.timing.control_slots,
            info,
        };
        self.core.transmit(ctx, frame);
    }

    /// Books the overheard Duration field in the NAV (virtual carrier
    /// sense) and traces the deferral when it actually extends anything.
    fn nav_reserve(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        if !self.core.timing.nav_enabled {
            return;
        }
        let now = ctx.now;
        self.core.nav.reserve(now, frame.duration, frame.msg);
        if frame.duration > 0 {
            let (node, msg) = (self.core.id, frame.msg);
            let until = now + Slot::from(frame.duration);
            ctx.emit(|| TraceEvent::NavDefer {
                slot: now,
                node,
                msg,
                until,
            });
        }
    }

    /// BSMA receiver rule 2: NAK the sender when the promised data never
    /// arrived within WAIT_FOR_DATA.
    fn flush_wait_data(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        if self.core.wait_data.is_empty() {
            return;
        }
        let mut due: Vec<(NodeId, MsgId)> = Vec::new();
        self.core.wait_data.retain(|w| {
            if w.deadline <= now {
                if !self.core.received.contains(&w.msg) {
                    due.push((w.sender, w.msg));
                }
                false
            } else {
                true
            }
        });
        for (sender, msg) in due {
            if self.core.nav.yielding(now) {
                self.core.counters.yield_suppressions += 1;
            } else if self.can_respond(now) {
                self.respond(ctx, FrameKind::Nak, sender, 0, msg, FrameInfo::None);
                // Only one response per slot.
                break;
            }
        }
    }

    fn handle_receive(&mut self, frame: &Frame, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        self.core.counters.frames_received += 1;
        let addressed = frame.dest.addresses(self.core.id);
        match frame.kind {
            // Sender-relevant responses.
            FrameKind::Cts | FrameKind::Ack | FrameKind::Nak => {
                if addressed {
                    let relevant = self.active.as_ref().is_some_and(|a| !a.contending);
                    if relevant {
                        self.drive_fsm(ctx, |fsm, env| fsm.on_frame(frame, env));
                    }
                } else {
                    self.nav_reserve(ctx, frame);
                }
            }
            FrameKind::Data => {
                self.core.counters.data_received += 1;
                // Promiscuous caching: any decoded data frame enters the
                // receive buffer (this is what lets BMW's have-flag
                // suppress redundant retransmissions).
                self.core.received.insert(frame.msg);
                self.core.wait_data.retain(|w| w.msg != frame.msg);
                if frame.dest.node() == Some(self.core.id) {
                    // Unicast-style data (DCF / BMW): ACK after SIFS.
                    if self.can_respond(now) {
                        self.respond(
                            ctx,
                            FrameKind::Ack,
                            frame.src,
                            0,
                            frame.msg,
                            FrameInfo::None,
                        );
                    }
                } else if self.core.protocol == ProtocolKind::BmmmUncoordinated
                    && addressed
                    && matches!(&frame.dest, Dest::Group(_))
                {
                    // Uncoordinated-BMMM ablation: every receiver ACKs
                    // the group data immediately. These ACKs are
                    // synchronized and collide — the failure mode the
                    // RAK train exists to prevent.
                    if self.can_respond(now) {
                        self.respond(
                            ctx,
                            FrameKind::Ack,
                            frame.src,
                            0,
                            frame.msg,
                            FrameInfo::None,
                        );
                    }
                } else if self.core.protocol == ProtocolKind::LeaderBased
                    && matches!(&frame.dest, Dest::Group(g) if g.first() == Some(&self.core.id))
                {
                    // Leader-based multicast: the group leader ACKs the
                    // data on behalf of everyone. A non-leader that
                    // missed it jams this ACK slot with a NAK (scheduled
                    // when the RTS arrived).
                    if self.can_respond(now) {
                        self.respond(
                            ctx,
                            FrameKind::Ack,
                            frame.src,
                            0,
                            frame.msg,
                            FrameInfo::None,
                        );
                    }
                } else if !addressed {
                    self.nav_reserve(ctx, frame);
                }
            }
            FrameKind::Rts => {
                if addressed {
                    if self.core.nav.yielding_except(now, frame.msg) {
                        self.core.counters.yield_suppressions += 1;
                    } else if self.can_respond(now) {
                        let dur = frame
                            .duration
                            .saturating_sub(self.core.timing.control_slots);
                        match &frame.dest {
                            Dest::Node(_) => {
                                // DCF / BMW / BMMM poll: CTS carries the
                                // receive-buffer state (BMW reads it; the
                                // others ignore it).
                                let have = self.core.received.contains(&frame.msg);
                                let dur = if have { 0 } else { dur };
                                self.respond(
                                    ctx,
                                    FrameKind::Cts,
                                    frame.src,
                                    dur,
                                    frame.msg,
                                    FrameInfo::BmwCts { have },
                                );
                            }
                            Dest::Group(group) => {
                                let is_leader_protocol =
                                    self.core.protocol == ProtocolKind::LeaderBased;
                                let is_leader = group.first() == Some(&self.core.id);
                                if is_leader_protocol && !is_leader {
                                    // Non-leader under the leader scheme:
                                    // stay silent now, but arm the
                                    // ACK-slot jam in case the data never
                                    // arrives.
                                    if !self.core.received.contains(&frame.msg) {
                                        let t = self.core.timing;
                                        let deadline = now
                                            + Slot::from(t.control_slots)
                                            + Slot::from(t.data_slots);
                                        if !self.core.wait_data.iter().any(|w| w.msg == frame.msg) {
                                            self.core.wait_data.push(WaitData {
                                                msg: frame.msg,
                                                sender: frame.src,
                                                deadline,
                                            });
                                        }
                                    }
                                } else {
                                    // Tang–Gerla / BSMA: every intended
                                    // receiver answers at once; leader
                                    // scheme: only the leader answers.
                                    self.respond(
                                        ctx,
                                        FrameKind::Cts,
                                        frame.src,
                                        dur,
                                        frame.msg,
                                        FrameInfo::None,
                                    );
                                    if self.core.protocol == ProtocolKind::Bsma
                                        && !self.core.received.contains(&frame.msg)
                                    {
                                        let t = self.core.timing;
                                        let deadline = now
                                            + Slot::from(t.control_slots)
                                            + Slot::from(t.data_slots);
                                        if !self.core.wait_data.iter().any(|w| w.msg == frame.msg) {
                                            self.core.wait_data.push(WaitData {
                                                msg: frame.msg,
                                                sender: frame.src,
                                                deadline,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                } else {
                    self.nav_reserve(ctx, frame);
                }
            }
            FrameKind::Rak => {
                if addressed {
                    if self.core.nav.yielding_except(now, frame.msg) {
                        self.core.counters.yield_suppressions += 1;
                    } else if self.core.received.contains(&frame.msg) && self.can_respond(now) {
                        let dur = frame
                            .duration
                            .saturating_sub(self.core.timing.control_slots);
                        self.respond(
                            ctx,
                            FrameKind::Ack,
                            frame.src,
                            dur,
                            frame.msg,
                            FrameInfo::None,
                        );
                    }
                } else {
                    self.nav_reserve(ctx, frame);
                }
            }
        }
    }

    /// Replays the per-slot effects of slots the engine fast-forwarded
    /// over (`next_poll..now`).
    ///
    /// The engine skips a slot for this station only when nothing
    /// observable happened in it: no frame was delivered, no
    /// wait-for-data deadline or service timeout fell due, an idle
    /// station with queued work was never left waiting, and the medium
    /// was busy only while the station was a frozen contender — those
    /// slots arrive as `busy_through` (the engine's
    /// [`rmm_sim::Ctx::frozen_through`] watermark). The only per-slot
    /// state that evolved is the contention countdown: frozen while the
    /// medium was busy (which covers the station's own transmissions)
    /// or the NAV still had a reservation, idle polls afterwards. Both
    /// freeze prefixes are contiguous from the gap's start — the engine
    /// dispatches at the first busy slot after any skipped idle slot —
    /// so the gap replays as one freeze followed by pure idle polls,
    /// exactly as naive stepping would have applied them.
    fn catch_up(&mut self, now: Slot, busy_through: Slot) {
        let start = self.next_poll;
        if start >= now {
            return;
        }
        let Some(a) = &mut self.active else {
            return;
        };
        if !a.contending {
            return;
        }
        debug_assert!(
            busy_through == 0 || busy_through >= start,
            "frozen watermark predates the gap"
        );
        let medium = if busy_through >= start {
            busy_through + 1
        } else {
            start
        };
        let clear = self.core.nav.next_idle(start).max(medium).min(now);
        if clear > start {
            a.contention.freeze();
        }
        a.contention
            .advance_idle(now - clear, self.core.timing.difs);
    }

    fn slot(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        self.catch_up(now, ctx.frozen_through);
        self.next_poll = now + 1;
        self.flush_wait_data(ctx);

        if self.active.is_none() {
            self.start_next(ctx);
        }

        // Service timeout (measured from arrival).
        if self
            .active
            .as_ref()
            .is_some_and(|a| a.req.timed_out(now, self.core.timing.timeout))
        {
            let active = self.active.take().expect("checked above");
            self.finish(active, Outcome::TimedOut(now));
            self.start_next(ctx);
        }

        let mode = match &mut self.active {
            Some(a) if a.contending => {
                let busy = ctx.busy || self.core.nav.yielding(now) || self.core.tx_until > now;
                if a.contention.poll(busy, self.core.timing.difs) {
                    a.contending = false;
                    let (node, msg, attempts) = (self.core.id, a.req.msg, a.phases);
                    ctx.emit(|| TraceEvent::ContentionEnd {
                        slot: now,
                        node,
                        msg,
                        attempts,
                    });
                    DriveMode::Access
                } else {
                    DriveMode::None
                }
            }
            Some(_) => DriveMode::Slot,
            None => DriveMode::None,
        };
        match mode {
            DriveMode::Access => self.drive_fsm(ctx, |fsm, env| fsm.on_access(env)),
            DriveMode::Slot => self.drive_fsm(ctx, |fsm, env| fsm.on_slot(env)),
            DriveMode::None => {}
        }
    }
}

impl Station for MacNode {
    fn on_receive(&mut self, frame: &Frame, _captured: bool, ctx: &mut Ctx<'_>) {
        // Under selective dispatch the engine may not have polled this
        // station for a while (its medium stayed idle and nothing fell
        // due), so replay the gap before the frame lands: the reception
        // can change contention state that the skipped idle slots
        // already advanced.
        if self.next_poll < ctx.now {
            self.catch_up(ctx.now, ctx.frozen_through);
            self.next_poll = ctx.now;
        }
        self.handle_receive(frame, ctx);
    }

    fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
        self.slot(ctx);
    }

    /// Physical carrier sense only matters while a contention countdown
    /// is running: every other consumer of `ctx.busy` in [`MacNode`]
    /// derives busyness from the NAV or its own half-duplex state, which
    /// evolve through receptions and deadlines, not the medium bit. This
    /// lets the engine's selective dispatcher skip idle stations on
    /// slots where only the medium changed.
    fn carrier_sensitive(&self) -> bool {
        self.active.as_ref().is_some_and(|a| a.contending)
    }

    /// A busy medium can only freeze a contention countdown — it never
    /// changes any other per-slot decision in [`MacNode::slot`] — so the
    /// engine may skip busy slots entirely and let
    /// [`MacNode::catch_up`] replay the freeze from the engine's
    /// watermark.
    fn busy_freezes(&self) -> bool {
        self.active.as_ref().is_some_and(|a| a.contending)
    }

    /// Deadlines that fire regardless of the medium: receiver-side
    /// WAIT_FOR_DATA expiries and the in-service request's timeout.
    /// These bound how far the engine may skip a frozen contender.
    fn next_deadline(&self) -> Option<Slot> {
        let mut due: Option<Slot> = None;
        let mut consider = |slot: Slot| {
            due = Some(due.map_or(slot, |d: Slot| d.min(slot)));
        };
        for w in &self.core.wait_data {
            consider(w.deadline);
        }
        if let Some(a) = &self.active {
            consider(a.req.arrival + self.core.timing.timeout);
        }
        due
    }

    /// Crash-recovery cold reset ([`rmm_sim::FaultKind::Reboot`]): the
    /// platform rebooted, so transient MAC state is lost. The in-service
    /// exchange and everything queued behind it die with the radio
    /// (recorded as failed, so the harness still sees every request);
    /// the NAV, receiver-side data waits, and half-duplex bookkeeping
    /// clear. Measurement state survives: decoded messages, counters,
    /// sender records, and the sequence counter (post-reboot `MsgId`s
    /// must stay unique). The station's RNG keeps its stream position —
    /// a reboot must not replay backoff draws already consumed.
    fn on_reset(&mut self, now: Slot) {
        if let Some(active) = self.active.take() {
            self.finish(active, Outcome::Failed(now));
        }
        while let Some(req) = self.queue.pop_front() {
            self.record_unserviced(req, Outcome::Failed(now));
        }
        self.core.nav = Nav::new();
        self.core.wait_data.clear();
        self.core.tx_until = now;
        self.next_poll = now;
    }

    fn next_wakeup(&self, now: Slot) -> Option<Slot> {
        let t = self.core.timing;
        let mut wake: Option<Slot> = None;
        let mut consider = |slot: Slot| {
            // Deadlines already due act on the very next slot.
            let slot = slot.max(now + 1);
            wake = Some(wake.map_or(slot, |w: Slot| w.min(slot)));
        };
        for w in &self.core.wait_data {
            consider(w.deadline);
        }
        match &self.active {
            Some(a) => {
                consider(a.req.arrival + t.timeout);
                if a.contending {
                    if !a.contention.is_active() {
                        // Unreachable in practice (contending implies an
                        // armed countdown); degrade to naive stepping.
                        consider(now + 1);
                    } else {
                        // Under an idle medium the station yields to its
                        // NAV, then needs DIFS + backoff + 1 idle polls;
                        // the grant lands on the last of them.
                        let first_idle = self.core.nav.next_idle(now + 1);
                        let idle_run = if first_idle > now + 1 {
                            0
                        } else {
                            a.contention.idle_run()
                        };
                        let polls = u64::from(t.difs.saturating_sub(idle_run))
                            + u64::from(a.contention.backoff())
                            + 1;
                        consider(first_idle + polls - 1);
                    }
                } else if let Some(at) = a.fsm.deadline() {
                    consider(at);
                }
            }
            None => {
                if !self.queue.is_empty() {
                    consider(now + 1);
                }
            }
        }
        wake
    }
}
