//! FNV-1a 64-bit hashing for result digests and options hashes.
//!
//! The std `DefaultHasher` is explicitly not stable across releases, and
//! a manifest written by one build must be readable by the next — so the
//! fleet pins the classic FNV-1a, which is trivially stable.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Incremental FNV-1a 64 hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string, terminated so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// Feeds a `u64` in little-endian bytes.
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Formats a hash the way manifests store it (`0x` + 16 hex digits).
pub fn hex(h: u64) -> String {
    format!("{h:#018x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn string_feeding_is_boundary_sensitive() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0x1), "0x0000000000000001");
        assert_eq!(hex(u64::MAX), "0xffffffffffffffff");
    }
}
