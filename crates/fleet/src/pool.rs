//! The work-stealing thread pool: N workers over a sharded claim
//! cursor, results into a slot-addressed buffer.
//!
//! The job slice is split into one contiguous chunk per worker, each
//! with its own cache-line-padded atomic cursor. A worker drains its own
//! chunk first — uncontended `fetch_add`s on a line no other core
//! touches — and only when it runs dry does it sweep the other shards
//! and steal their remaining indices. Under even load no cursor line
//! ever bounces between cores; under skew the stealing sweep
//! load-balances exactly like a single shared injector. Every index is
//! claimed by exactly one `fetch_add` winner (cursors are monotone, so
//! "dry" is permanent), and each result lands in its job's own slot,
//! which is what keeps the output order independent of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One worker's chunk of the job slice: a claim cursor and the chunk's
/// end index. Padded to a cache line so workers draining their own
/// shards never share one.
#[repr(align(64))]
struct Shard {
    next: AtomicUsize,
    end: usize,
}

impl Shard {
    /// Claims the shard's next unclaimed index, or `None` if the shard
    /// is dry. Dry is permanent: the cursor only grows, so a `None`
    /// here can never be invalidated by another worker.
    #[inline]
    fn claim(&self) -> Option<usize> {
        // The load keeps dry shards read-only (no cache-line ping-pong
        // from stealers re-probing them); the fetch_add is the one true
        // claim — ties between racing stealers resolve to exactly one
        // winner per index.
        if self.next.load(Ordering::Relaxed) >= self.end {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.end).then_some(i)
    }
}

/// Splits `0..n` into `workers` contiguous shards of near-equal size.
fn make_shards(n: usize, workers: usize) -> Vec<Shard> {
    (0..workers)
        .map(|w| Shard {
            next: AtomicUsize::new(w * n / workers),
            end: (w + 1) * n / workers,
        })
        .collect()
}

/// Resolves a `--jobs` value: `0` means one worker per available core,
/// and the count never exceeds the number of jobs (spawning idle threads
/// is pointless).
pub fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    workers.clamp(1, jobs.max(1))
}

/// Runs every job on `workers` threads and returns the results **in job
/// order**, regardless of which worker finished what when.
///
/// `run` receives `(worker index, &job)`. Panics in a job propagate once
/// all workers have stopped.
pub fn run_parallel<J, R, F>(workers: usize, jobs: &[J], run: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_observed(workers, jobs, run, |_, _| {}, |_, _, _: &R| {})
}

/// [`run_parallel`] with start/finish hooks, for progress reporting and
/// manifest appends. `on_start(worker, index)` fires when a worker claims
/// a job; `on_finish(worker, index, &result)` fires after the job ran but
/// before its result is parked in the buffer, so a crash between the two
/// at worst re-runs one already-recorded job on resume.
pub fn run_observed<J, R, F, S, C>(
    workers: usize,
    jobs: &[J],
    run: F,
    on_start: S,
    on_finish: C,
) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    S: Fn(usize, usize) + Sync,
    C: Fn(usize, usize, &R) + Sync,
{
    let n = jobs.len();
    let workers = resolve_workers(workers, n);
    let shards = make_shards(n, workers);
    // One mutex per slot: a worker only ever locks the slot it owns, so
    // there is no contention and no unsafe indexing.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (shards, slots, run, on_start, on_finish) =
                (&shards, &slots, &run, &on_start, &on_finish);
            scope.spawn(move || {
                // Own shard first, then sweep the others (stealing).
                // Cursors are monotone, so one full dry sweep proves
                // there is no work left anywhere.
                'work: loop {
                    for k in 0..workers {
                        let shard = &shards[(w + k) % workers];
                        if let Some(i) = shard.claim() {
                            on_start(w, i);
                            let r = run(w, &jobs[i]);
                            on_finish(w, i, &r);
                            *slots[i].lock().expect("result slot poisoned") = Some(r);
                            continue 'work;
                        }
                    }
                    break;
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_job_order_at_any_worker_count() {
        let jobs: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = jobs.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_parallel(workers, &jobs, |_, &x| x * x);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let jobs: Vec<usize> = (0..50).collect();
        run_parallel(7, &jobs, |_, &x| {
            seen.lock().unwrap().push(x);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 50);
        assert_eq!(seen.iter().collect::<HashSet<_>>().len(), 50);
    }

    #[test]
    fn hooks_fire_per_job() {
        let starts = AtomicUsize::new(0);
        let finishes = AtomicUsize::new(0);
        let jobs: Vec<u32> = (0..23).collect();
        let out = run_observed(
            4,
            &jobs,
            |_, &x| x + 1,
            |_, _| {
                starts.fetch_add(1, Ordering::Relaxed);
            },
            |_, i, r: &u32| {
                assert_eq!(*r, jobs[i] + 1);
                finishes.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 23);
        assert_eq!(starts.load(Ordering::Relaxed), 23);
        assert_eq!(finishes.load(Ordering::Relaxed), 23);
    }

    #[test]
    fn zero_requested_workers_resolves_to_cores() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(resolve_workers(0, 1000), cores.min(1000));
        assert_eq!(resolve_workers(0, 0), 1);
        assert_eq!(resolve_workers(8, 3), 3, "never more workers than jobs");
        assert_eq!(resolve_workers(2, 1000), 2);
    }

    #[test]
    fn exhausted_workers_steal_from_busy_shards() {
        // 2 workers over 4 jobs → shards {0, 1} and {2, 3}. Whichever
        // worker runs job 2 parks until job 3's signal, so the run can
        // only finish if the other worker, after draining its own
        // shard, steals across the shard boundary and runs job 3. A
        // pool without stealing deadlocks here (test times out).
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let rx = Mutex::new(rx);
        let jobs: Vec<usize> = (0..4).collect();
        let out = run_parallel(2, &jobs, |_, &x| {
            if x == 2 {
                rx.lock().unwrap().recv().unwrap();
            }
            if x == 3 {
                tx.send(()).unwrap();
            }
            x * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn shards_cover_the_job_range_exactly() {
        for n in [0, 1, 5, 97, 100] {
            for workers in [1, 2, 3, 7, 16] {
                let shards = make_shards(n, workers);
                let mut next = 0;
                for s in &shards {
                    assert_eq!(s.next.load(Ordering::Relaxed), next);
                    assert!(s.end >= next);
                    next = s.end;
                }
                assert_eq!(next, n, "n = {n}, workers = {workers}");
            }
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = run_parallel(4, &Vec::<u8>::new(), |_, &x| x);
        assert!(out.is_empty());
    }
}
