//! The work-stealing-lite thread pool: N workers over a shared injector
//! queue, results into a slot-addressed buffer.
//!
//! The "queue" is an atomic cursor over the job slice — every worker
//! claims the next unclaimed index, so there is nothing to steal and no
//! per-worker deque to balance, yet the pool load-balances exactly like
//! a single shared injector. Each result lands in its job's own slot,
//! which is what keeps the output order independent of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs` value: `0` means one worker per available core,
/// and the count never exceeds the number of jobs (spawning idle threads
/// is pointless).
pub fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    workers.clamp(1, jobs.max(1))
}

/// Runs every job on `workers` threads and returns the results **in job
/// order**, regardless of which worker finished what when.
///
/// `run` receives `(worker index, &job)`. Panics in a job propagate once
/// all workers have stopped.
pub fn run_parallel<J, R, F>(workers: usize, jobs: &[J], run: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_observed(workers, jobs, run, |_, _| {}, |_, _, _: &R| {})
}

/// [`run_parallel`] with start/finish hooks, for progress reporting and
/// manifest appends. `on_start(worker, index)` fires when a worker claims
/// a job; `on_finish(worker, index, &result)` fires after the job ran but
/// before its result is parked in the buffer, so a crash between the two
/// at worst re-runs one already-recorded job on resume.
pub fn run_observed<J, R, F, S, C>(
    workers: usize,
    jobs: &[J],
    run: F,
    on_start: S,
    on_finish: C,
) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    S: Fn(usize, usize) + Sync,
    C: Fn(usize, usize, &R) + Sync,
{
    let n = jobs.len();
    let workers = resolve_workers(workers, n);
    let cursor = AtomicUsize::new(0);
    // One mutex per slot: a worker only ever locks the slot it owns, so
    // there is no contention and no unsafe indexing.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (cursor, slots, run, on_start, on_finish) =
                (&cursor, &slots, &run, &on_start, &on_finish);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                on_start(w, i);
                let r = run(w, &jobs[i]);
                on_finish(w, i, &r);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_job_order_at_any_worker_count() {
        let jobs: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = jobs.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_parallel(workers, &jobs, |_, &x| x * x);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let jobs: Vec<usize> = (0..50).collect();
        run_parallel(7, &jobs, |_, &x| {
            seen.lock().unwrap().push(x);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 50);
        assert_eq!(seen.iter().collect::<HashSet<_>>().len(), 50);
    }

    #[test]
    fn hooks_fire_per_job() {
        let starts = AtomicUsize::new(0);
        let finishes = AtomicUsize::new(0);
        let jobs: Vec<u32> = (0..23).collect();
        let out = run_observed(
            4,
            &jobs,
            |_, &x| x + 1,
            |_, _| {
                starts.fetch_add(1, Ordering::Relaxed);
            },
            |_, i, r: &u32| {
                assert_eq!(*r, jobs[i] + 1);
                finishes.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 23);
        assert_eq!(starts.load(Ordering::Relaxed), 23);
        assert_eq!(finishes.load(Ordering::Relaxed), 23);
    }

    #[test]
    fn zero_requested_workers_resolves_to_cores() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(resolve_workers(0, 1000), cores.min(1000));
        assert_eq!(resolve_workers(0, 0), 1);
        assert_eq!(resolve_workers(8, 3), 3, "never more workers than jobs");
        assert_eq!(resolve_workers(2, 1000), 2);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = run_parallel(4, &Vec::<u8>::new(), |_, &x| x);
        assert!(out.is_empty());
    }
}
