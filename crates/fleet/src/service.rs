//! The long-lived service pool: resident workers over a bounded queue,
//! with per-job cancellation.
//!
//! [`run_parallel`](crate::pool::run_parallel) is batch-shaped: it owns
//! a job slice, spawns scoped workers, and returns when the batch is
//! done. A daemon serving interactive requests needs the opposite shape
//! — the pool outlives any one request, jobs arrive one at a time from
//! many connection threads, and a client that disconnects wants its
//! queued work dropped, not run. [`ServicePool`] is that shape: N
//! resident workers draining a bounded FIFO, [`ServicePool::submit`]
//! returning a [`JobTicket`] whose `cancel` drops the job if it has not
//! started, and a draining [`ServicePool::shutdown`].
//!
//! The bounded queue *is* the backpressure mechanism: when it fills,
//! `submit` blocks its caller — a connection handler that consequently
//! stops reading its socket — which is exactly the TCP backpressure a
//! saturated daemon should exert instead of buffering without limit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cancellation flag shared between a [`JobTicket`] and the queue.
#[derive(Debug, Default)]
struct CancelFlag(AtomicBool);

/// Handle to one submitted job.
///
/// Dropping the ticket does *not* cancel the job; only
/// [`JobTicket::cancel`] does. Cancelling a job that already started
/// (or finished) has no effect — cancellation is queue-removal, not
/// preemption.
#[derive(Debug, Clone)]
pub struct JobTicket {
    flag: Arc<CancelFlag>,
}

impl JobTicket {
    /// Marks the job cancelled. If it is still queued it will be
    /// dropped un-run; if a worker already claimed it, it runs to
    /// completion.
    pub fn cancel(&self) {
        self.flag.0.store(true, Ordering::Release);
    }

    /// Whether [`JobTicket::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.0.load(Ordering::Acquire)
    }
}

struct QueueState {
    jobs: VecDeque<(Arc<CancelFlag>, Job)>,
    /// Accepting new submissions. Cleared by `shutdown`.
    open: bool,
    /// Jobs currently executing on a worker.
    active: usize,
    /// Worker threads that have not exited yet.
    alive: usize,
}

struct Inner {
    state: Mutex<QueueState>,
    /// Workers wait here for jobs (or for the queue to close).
    takeable: Condvar,
    /// Blocked submitters wait here for queue room.
    room: Condvar,
    /// `shutdown`/`wait_idle` wait here for drain milestones.
    drained: Condvar,
    capacity: usize,
    /// Jobs actually executed (cancelled-while-queued jobs never count).
    executed: AtomicU64,
    /// Jobs dropped from the queue because their ticket was cancelled.
    cancelled: AtomicU64,
}

/// A pool of resident worker threads fed from a bounded FIFO queue.
pub struct ServicePool {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl ServicePool {
    /// Spawns `workers` resident threads (`0` = one per available core)
    /// over a queue bounded at 1024 pending jobs.
    pub fn new(workers: usize) -> ServicePool {
        ServicePool::with_capacity(workers, 1024)
    }

    /// Spawns `workers` resident threads over a queue bounded at
    /// `capacity` pending jobs (minimum 1).
    pub fn with_capacity(workers: usize, capacity: usize) -> ServicePool {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
                active: 0,
                alive: workers,
            }),
            takeable: Condvar::new(),
            room: Condvar::new(),
            drained: Condvar::new(),
            capacity: capacity.max(1),
            executed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        ServicePool {
            inner,
            workers: Mutex::new(handles),
            worker_count: workers,
        }
    }

    /// Resident worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs executed so far (cancelled-while-queued jobs never count).
    pub fn executed(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Jobs dropped from the queue by cancellation.
    pub fn cancelled(&self) -> u64 {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Jobs waiting in the queue right now (racy, for telemetry).
    pub fn queued(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("pool state poisoned")
            .jobs
            .len()
    }

    /// Enqueues a job, blocking while the queue is at capacity.
    ///
    /// Returns a [`JobTicket`] that can drop the job if it has not
    /// started. After [`ServicePool::shutdown`] the workers are gone, so
    /// a racing `submit` runs the job inline on the caller's thread
    /// rather than losing it.
    pub fn submit<F>(&self, f: F) -> JobTicket
    where
        F: FnOnce() + Send + 'static,
    {
        let flag = Arc::new(CancelFlag::default());
        let ticket = JobTicket {
            flag: Arc::clone(&flag),
        };
        let mut state = self.inner.state.lock().expect("pool state poisoned");
        while state.open && state.jobs.len() >= self.inner.capacity {
            state = self.inner.room.wait(state).expect("pool state poisoned");
        }
        if !state.open {
            drop(state);
            self.inner.executed.fetch_add(1, Ordering::Relaxed);
            f();
            return ticket;
        }
        state.jobs.push_back((flag, Box::new(f)));
        drop(state);
        self.inner.takeable.notify_one();
        ticket
    }

    /// Blocks until the queue is empty and no job is executing. Jobs
    /// submitted concurrently can extend the wait; this is a test and
    /// drain helper, not a fence.
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock().expect("pool state poisoned");
        while !state.jobs.is_empty() || state.active > 0 {
            state = self.inner.drained.wait(state).expect("pool state poisoned");
        }
    }

    /// Closes the queue, lets the workers drain every remaining
    /// non-cancelled job, and joins them. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("pool state poisoned");
            state.open = false;
            self.inner.takeable.notify_all();
            self.inner.room.notify_all();
            while state.alive > 0 {
                state = self.inner.drained.wait(state).expect("pool state poisoned");
            }
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("pool joiner poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool state poisoned");
            loop {
                // Skim cancelled jobs off the front without running them.
                while let Some((flag, _)) = state.jobs.front() {
                    if !flag.0.load(Ordering::Acquire) {
                        break;
                    }
                    state.jobs.pop_front();
                    inner.cancelled.fetch_add(1, Ordering::Relaxed);
                    inner.room.notify_one();
                    if state.jobs.is_empty() && state.active == 0 {
                        inner.drained.notify_all();
                    }
                }
                if let Some((_, job)) = state.jobs.pop_front() {
                    state.active += 1;
                    inner.room.notify_one();
                    break Some(job);
                }
                if !state.open {
                    state.alive -= 1;
                    inner.drained.notify_all();
                    break None;
                }
                state = inner.takeable.wait(state).expect("pool state poisoned");
            }
        };
        let Some(job) = job else { return };
        // Count before running: anything the job publishes (response
        // lines, cache entries) must never be observable ahead of the
        // executed counter, or a metrics scrape racing the final line
        // under-reports the work.
        inner.executed.fetch_add(1, Ordering::Relaxed);
        job();
        let mut state = inner.state.lock().expect("pool state poisoned");
        state.active -= 1;
        if state.jobs.is_empty() && state.active == 0 {
            inner.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn every_submitted_job_runs() {
        let pool = ServicePool::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        assert_eq!(pool.executed(), 50);
        pool.shutdown();
    }

    #[test]
    fn results_come_back_through_channels() {
        let pool = ServicePool::new(2);
        let mut rxs = Vec::new();
        for x in 0..10u64 {
            let (tx, rx) = mpsc::channel();
            pool.submit(move || {
                let _ = tx.send(x * x);
            });
            rxs.push(rx);
        }
        let got: Vec<u64> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_queued_jobs_never_run() {
        // One worker parked on a gate job; everything behind it is
        // still queued when we cancel, so cancellation must drop it.
        let pool = ServicePool::with_capacity(1, 64);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            gate_rx.recv().unwrap();
        });
        let ran = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<JobTicket> = (0..5)
            .map(|_| {
                let ran = Arc::clone(&ran);
                pool.submit(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        tickets[1].cancel();
        tickets[3].cancel();
        assert!(tickets[3].is_cancelled());
        gate_tx.send(()).unwrap();
        pool.wait_idle();
        assert_eq!(ran.load(Ordering::Relaxed), 3, "two were cancelled");
        assert_eq!(pool.executed(), 1 + 3, "gate + survivors");
        assert_eq!(pool.cancelled(), 2);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = ServicePool::with_capacity(2, 64);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            20,
            "shutdown drains, not drops"
        );
        pool.shutdown(); // idempotent
    }

    #[test]
    fn bounded_queue_blocks_then_completes() {
        // Capacity 1 with a blocked worker: the producer thread must
        // stall in submit() until the gate opens, then everything runs.
        let pool = Arc::new(ServicePool::with_capacity(1, 1));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            gate_rx.recv().unwrap();
        });
        let hits = Arc::new(AtomicUsize::new(0));
        let producer = {
            let (pool, hits) = (Arc::clone(&pool), Arc::clone(&hits));
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let hits = Arc::clone(&hits);
                    pool.submit(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        };
        // The producer cannot finish while the gate is closed: at most
        // one job fits in the queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(hits.load(Ordering::Relaxed) == 0);
        gate_tx.send(()).unwrap();
        producer.join().unwrap();
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_runs_inline() {
        let pool = ServicePool::new(1);
        pool.shutdown();
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        pool.submit(move || {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_workers_resolves_to_cores() {
        let pool = ServicePool::new(0);
        assert!(pool.workers() >= 1);
        pool.shutdown();
    }
}
