//! The crash-safe sweep manifest: `results/<sweep>.manifest.jsonl`.
//!
//! Line 1 is a header binding the manifest to one sweep configuration
//! (an options hash over the full job grid); every following line is one
//! completed job with a digest of its serialized result. Lines are
//! appended and flushed as jobs finish, so a killed sweep leaves a
//! prefix of valid lines plus at most one truncated tail line — which
//! [`Manifest::load`] tolerates by dropping it. A manifest whose header
//! does not match the sweep being run (options changed, different grid)
//! is *stale* and is rejected rather than silently merged.

use crate::digest::hex;
use crate::id::JobId;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Manifest format version (bumped on incompatible layout changes).
/// Version 2 added the `schema` field to the header.
pub const MANIFEST_VERSION: u32 = 2;

/// The first line of a manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestHeader {
    /// Sweep (experiment) name.
    pub sweep: String,
    /// Hash over the sweep's options and full job grid.
    pub options_hash: String,
    /// Total jobs in the sweep.
    pub jobs: usize,
    /// Format version.
    pub version: u32,
    /// Fingerprint of the *result/scenario serialization shape* the
    /// entries were written under (see
    /// `rmm_workload::scenario_schema_hash`). The options hash covers
    /// the option *values*; this covers the field layout itself, so a
    /// `Scenario` refactor that keeps old option strings valid still
    /// invalidates cached entries instead of silently resurrecting
    /// stale digests.
    pub schema: u32,
}

/// One completed-job line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    id: JobId,
    /// FNV-1a 64 over the id fields and the `result` string, as `0x…`
    /// (see [`entry_digest`]).
    digest: String,
    /// The job's result, serialized to JSON (stored as a string so the
    /// digest covers the exact bytes that will be parsed on resume).
    result: String,
}

/// Why a manifest could not be loaded for resume.
#[derive(Debug)]
pub enum ManifestError {
    /// No manifest at the path (fresh start).
    Missing,
    /// The header does not match the sweep being resumed.
    Stale {
        /// What the running sweep expects.
        expected: Box<ManifestHeader>,
        /// What the file contains.
        found: Box<ManifestHeader>,
    },
    /// The header line is unreadable.
    Corrupt(String),
    /// Filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Missing => write!(f, "no manifest to resume from"),
            ManifestError::Stale { expected, found } => write!(
                f,
                "stale manifest: expected sweep `{}` hash {} schema {:#010x} over {} jobs, \
                 found sweep `{}` hash {} schema {:#010x} over {} jobs — \
                 rerun without --resume to start fresh",
                expected.sweep,
                expected.options_hash,
                expected.schema,
                expected.jobs,
                found.sweep,
                found.options_hash,
                found.schema,
                found.jobs
            ),
            ManifestError::Corrupt(why) => write!(
                f,
                "corrupt manifest: {why} — likely written by an older \
                 build; rerun without --resume to start fresh"
            ),
            ManifestError::Io(e) => write!(f, "manifest I/O error: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// An open manifest being appended to by the running sweep.
pub struct Manifest {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Manifest {
    /// Creates (or atomically replaces) the manifest with `header` and
    /// the already-completed `preserved` entries, then leaves it open
    /// for appends. The rewrite goes through a temp file + rename so a
    /// crash mid-rewrite never destroys the previous manifest.
    pub fn create(
        path: &Path,
        header: &ManifestHeader,
        preserved: &[(JobId, String)],
    ) -> Result<Manifest, ManifestError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("jsonl.tmp");
        let mut file = std::fs::File::create(&tmp)?;
        writeln!(
            file,
            "{}",
            serde_json::to_string(header).expect("header serializes")
        )?;
        for (id, result) in preserved {
            writeln!(file, "{}", entry_line(id, result))?;
        }
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(Manifest {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Appends one completed job and flushes, so the line survives a
    /// kill right after.
    pub fn append(&self, id: &JobId, result_json: &str) {
        let mut file = self.file.lock().expect("manifest writer poisoned");
        // A failed append must not kill the sweep (the results are still
        // merged in memory); it only costs resumability of this job.
        let _ = writeln!(file, "{}", entry_line(id, result_json));
        let _ = file.flush();
    }

    /// Where this manifest lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads a manifest back for `--resume`, validating the header
    /// against the sweep about to run and each line's digest against its
    /// stored result. Reading stops at the first unparseable or
    /// digest-mismatched line (the truncated tail of a killed run);
    /// everything before it is returned as `(id, result_json)` pairs.
    pub fn load(
        path: &Path,
        expected: &ManifestHeader,
    ) -> Result<Vec<(JobId, String)>, ManifestError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ManifestError::Missing)
            }
            Err(e) => return Err(e.into()),
        };
        let mut lines = text.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| ManifestError::Corrupt("empty file".into()))?;
        let found: ManifestHeader = serde_json::from_str(header_line)
            .map_err(|e| ManifestError::Corrupt(format!("bad header: {e}")))?;
        if found != *expected {
            return Err(ManifestError::Stale {
                expected: Box::new(expected.clone()),
                found: Box::new(found),
            });
        }
        let mut entries = Vec::new();
        for line in lines {
            let Ok(entry) = serde_json::from_str::<Entry>(line) else {
                break; // truncated tail of a killed sweep
            };
            if entry_digest(&entry.id, &entry.result) != entry.digest {
                break; // bit-rot or a torn write: stop trusting the file
            }
            entries.push((entry.id, entry.result));
        }
        Ok(entries)
    }
}

/// FNV-1a over the id *and* the result bytes. Covering the id matters:
/// bit-rot inside the id field would otherwise produce a valid-looking
/// entry under a forged identity, which on resume could mark a
/// different pending job as already done.
fn entry_digest(id: &JobId, result_json: &str) -> String {
    let mut h = crate::digest::Fnv1a::new();
    h.write_str(&id.experiment);
    h.write_str(&id.point);
    h.write_u64(id.seed);
    h.write_str(result_json);
    hex(h.finish())
}

fn entry_line(id: &JobId, result_json: &str) -> String {
    let entry = Entry {
        id: id.clone(),
        digest: entry_digest(id, result_json),
        result: result_json.to_string(),
    };
    serde_json::to_string(&entry).expect("entry serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(jobs: usize) -> ManifestHeader {
        ManifestHeader {
            sweep: "test".into(),
            options_hash: "0x00000000deadbeef".into(),
            jobs,
            version: MANIFEST_VERSION,
            schema: 7,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmm_fleet_manifest_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = tempdir("roundtrip");
        let path = dir.join("test.manifest.jsonl");
        let m = Manifest::create(&path, &header(3), &[]).unwrap();
        m.append(&JobId::new("test", "p", 0), "{\"v\":1}");
        m.append(&JobId::new("test", "p", 1), "{\"v\":2}");
        let loaded = Manifest::load(&path, &header(3)).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, JobId::new("test", "p", 0));
        assert_eq!(loaded[1].1, "{\"v\":2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let dir = tempdir("truncated");
        let path = dir.join("test.manifest.jsonl");
        let m = Manifest::create(&path, &header(3), &[]).unwrap();
        m.append(&JobId::new("test", "p", 0), "{\"v\":1}");
        m.append(&JobId::new("test", "p", 1), "{\"v\":2}");
        drop(m);
        // Simulate a kill mid-append: chop the file mid-way through the
        // last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let loaded = Manifest::load(&path, &header(3)).unwrap();
        assert_eq!(loaded.len(), 1, "only the intact line survives");
        assert_eq!(loaded[0].0.seed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_digest_stops_the_load() {
        let dir = tempdir("digest");
        let path = dir.join("test.manifest.jsonl");
        let m = Manifest::create(&path, &header(2), &[]).unwrap();
        m.append(&JobId::new("test", "p", 0), "{\"v\":1}");
        drop(m);
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a byte inside the stored result.
        std::fs::write(&path, text.replace("\\\"v\\\":1", "\\\"v\\\":9")).unwrap();
        let loaded = Manifest::load(&path, &header(2)).unwrap();
        assert!(loaded.is_empty(), "tampered line must not be trusted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_header_is_rejected() {
        let dir = tempdir("stale");
        let path = dir.join("test.manifest.jsonl");
        Manifest::create(&path, &header(3), &[]).unwrap();
        let mut other = header(3);
        other.options_hash = "0x0000000000000bad".into();
        match Manifest::load(&path, &other) {
            Err(ManifestError::Stale { .. }) => {}
            other => panic!("expected Stale, got {other:?}"),
        }
        // Different job count is stale too.
        match Manifest::load(&path, &header(4)) {
            Err(ManifestError::Stale { .. }) => {}
            other => panic!("expected Stale, got {other:?}"),
        }
        // A schema drift (Scenario fields changed) is stale as well —
        // cached entries must self-invalidate, never resurrect.
        let mut drifted = header(3);
        drifted.schema = 8;
        match Manifest::load(&path, &drifted) {
            Err(ManifestError::Stale { .. }) => {}
            other => panic!("expected Stale on schema drift, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schemaless_v1_header_is_rejected_not_merged() {
        // A manifest written before the schema field existed must not
        // load: its entries predate the schema fingerprint entirely.
        let dir = tempdir("v1");
        let path = dir.join("test.manifest.jsonl");
        std::fs::write(
            &path,
            "{\"sweep\":\"test\",\"options_hash\":\"0x00000000deadbeef\",\
             \"jobs\":3,\"version\":1}\n",
        )
        .unwrap();
        match Manifest::load(&path, &header(3)) {
            Err(ManifestError::Corrupt(_)) => {}
            other => panic!("expected Corrupt for a v1 header, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_headers_are_distinguished() {
        let dir = tempdir("missing");
        let path = dir.join("nope.manifest.jsonl");
        assert!(matches!(
            Manifest::load(&path, &header(1)),
            Err(ManifestError::Missing)
        ));
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            Manifest::load(&path, &header(1)),
            Err(ManifestError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_preserves_prior_entries() {
        let dir = tempdir("preserve");
        let path = dir.join("test.manifest.jsonl");
        let prior = vec![(JobId::new("test", "p", 4), "{\"v\":4}".to_string())];
        let m = Manifest::create(&path, &header(2), &prior).unwrap();
        m.append(&JobId::new("test", "p", 5), "{\"v\":5}");
        let loaded = Manifest::load(&path, &header(2)).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0.seed, 4);
        assert_eq!(loaded[1].0.seed, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
