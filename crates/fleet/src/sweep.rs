//! The sweep runner: pool + manifest + progress, merged in canonical
//! job order.

use crate::digest::hex;
use crate::id::JobId;
use crate::manifest::{Manifest, ManifestError, ManifestHeader, MANIFEST_VERSION};
use crate::pool::{resolve_workers, run_observed};
use crate::progress::Progress;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;

/// How to run one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Sweep (experiment) name — becomes the manifest's `sweep` field
    /// and the progress label.
    pub name: String,
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Reuse completed jobs from an existing manifest.
    pub resume: bool,
    /// Where the manifest lives (`None` disables resumability).
    pub manifest_path: Option<PathBuf>,
    /// Stable hash over the sweep options and the full job grid; a
    /// manifest written under a different hash is stale.
    pub options_hash: u64,
    /// Fingerprint of the result/scenario serialization shape (see
    /// `rmm_workload::scenario_schema_hash`); a manifest written under
    /// a different schema is stale.
    pub schema: u32,
    /// Suppress progress output.
    pub quiet: bool,
    /// Work units one job represents (e.g. simulated slots), for the
    /// progress reporter's throughput readout. 0 = unreported.
    pub work_per_job: u64,
}

impl SweepConfig {
    /// A manifest-less, quiet config (for library callers and tests).
    pub fn ephemeral(name: &str, workers: usize) -> SweepConfig {
        SweepConfig {
            name: name.to_string(),
            workers,
            resume: false,
            manifest_path: None,
            options_hash: 0,
            schema: 0,
            quiet: true,
            work_per_job: 0,
        }
    }
}

/// What a sweep did.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// Per-job results, in the input (canonical) job order.
    pub results: Vec<R>,
    /// Jobs reused from the manifest instead of re-executed.
    pub reused: usize,
    /// Jobs actually executed this run.
    pub executed: usize,
    /// Worker threads used.
    pub workers: usize,
}

/// A sweep failure.
#[derive(Debug)]
pub enum FleetError {
    /// The manifest could not be used (stale, corrupt, or unreadable).
    Manifest(ManifestError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Manifest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Executes `jobs` on the fleet and returns their results in input
/// order.
///
/// Each job is `(id, payload)`; `run` must derive all randomness from
/// the id (its `seed` in particular), never from scheduling. With a
/// manifest configured, completed jobs are appended as they finish;
/// with `resume`, jobs already in a matching manifest are loaded back
/// instead of re-executed. A manifest written under different options
/// (hash mismatch) yields `FleetError::Manifest(ManifestError::Stale)`.
pub fn run_sweep<J, R>(
    config: &SweepConfig,
    jobs: &[(JobId, J)],
    run: impl Fn(&JobId, &J) -> R + Sync,
) -> Result<SweepOutcome<R>, FleetError>
where
    J: Sync,
    R: Serialize + Deserialize + Send,
{
    let header = ManifestHeader {
        sweep: config.name.clone(),
        options_hash: hex(config.options_hash),
        jobs: jobs.len(),
        version: MANIFEST_VERSION,
        schema: config.schema,
    };

    // Phase 1: load completed results out of the manifest (resume only).
    let mut done: HashMap<&JobId, R> = HashMap::new();
    let mut preserved: Vec<(JobId, String)> = Vec::new();
    if config.resume {
        if let Some(path) = &config.manifest_path {
            let entries = match Manifest::load(path, &header) {
                Ok(entries) => entries,
                Err(ManifestError::Missing) => Vec::new(),
                Err(e) => return Err(FleetError::Manifest(e)),
            };
            let by_id: HashMap<JobId, String> = entries.into_iter().collect();
            for (id, _) in jobs {
                let Some(json) = by_id.get(id) else { continue };
                // A line that stopped parsing as R (schema drift the
                // options hash missed) is simply re-run.
                let Ok(result) = serde_json::from_str::<R>(json) else {
                    continue;
                };
                done.insert(id, result);
                preserved.push((id.clone(), json.clone()));
            }
        }
    }

    // Phase 2: rewrite the manifest fresh (header + reused lines) and
    // keep it open for appends.
    let manifest = match &config.manifest_path {
        Some(path) => {
            Some(Manifest::create(path, &header, &preserved).map_err(FleetError::Manifest)?)
        }
        None => None,
    };

    // Phase 3: run what's missing.
    let pending: Vec<(usize, &JobId, &J)> = jobs
        .iter()
        .enumerate()
        .filter(|(_, (id, _))| !done.contains_key(id))
        .map(|(i, (id, job))| (i, id, job))
        .collect();
    let reused = jobs.len() - pending.len();
    let workers = resolve_workers(config.workers, pending.len());
    let mut progress = Progress::new(&config.name, jobs.len(), reused, workers, config.quiet);
    progress.set_work_per_job(config.work_per_job);
    let progress = progress;
    let executed_results: Vec<R> = run_observed(
        workers,
        &pending,
        |_w, &(_, id, job): &(usize, &JobId, &J)| run(id, job),
        |w, i| progress.started(w, pending[i].1),
        |w, i, r: &R| {
            if let Some(m) = &manifest {
                let json = serde_json::to_string(r).expect("job result serializes");
                m.append(pending[i].1, &json);
            }
            progress.finished(w, pending[i].1);
        },
    );
    let executed = executed_results.len();

    // Phase 4: deterministic merge — slot every result back into the
    // canonical input order, whichever way it was obtained.
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    for ((id, _), slot) in jobs.iter().zip(&mut slots) {
        if let Some(r) = done.remove(id) {
            *slot = Some(r);
        }
    }
    let mut fresh = executed_results.into_iter();
    for ((i, _, _), r) in pending.iter().zip(&mut fresh) {
        slots[*i] = Some(r);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every job resolved"))
        .collect();
    Ok(SweepOutcome {
        results,
        reused,
        executed,
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn grid(n: u64) -> Vec<(JobId, u64)> {
        (0..n).map(|s| (JobId::new("sq", "p", s), s)).collect()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmm_fleet_sweep_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn results_are_identical_at_any_worker_count() {
        let jobs = grid(31);
        let expect: Vec<u64> = (0..31).map(|s| s * s).collect();
        for workers in [1, 2, 8] {
            let config = SweepConfig::ephemeral("sq", workers);
            let out = run_sweep(&config, &jobs, |id, _| id.seed * id.seed).unwrap();
            assert_eq!(out.results, expect, "workers = {workers}");
            assert_eq!(out.executed, 31);
            assert_eq!(out.reused, 0);
        }
    }

    #[test]
    fn resume_skips_completed_jobs() {
        let dir = tempdir("resume");
        let path = dir.join("sq.manifest.jsonl");
        let jobs = grid(12);
        let mut config = SweepConfig::ephemeral("sq", 2);
        config.manifest_path = Some(path.clone());
        config.options_hash = 0x5eed;

        // Full run, writing the manifest.
        let ran = AtomicUsize::new(0);
        let full = run_sweep(&config, &jobs, |id, _| {
            ran.fetch_add(1, Ordering::Relaxed);
            id.seed * 10
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 12);

        // Simulate a kill: drop the last 4 manifest lines.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(1 + 8).collect();
        std::fs::write(&path, keep.join("\n") + "\n").unwrap();

        // Resume: only the missing 4 run again, results identical.
        config.resume = true;
        let ran = AtomicUsize::new(0);
        let resumed = run_sweep(&config, &jobs, |id, _| {
            ran.fetch_add(1, Ordering::Relaxed);
            id.seed * 10
        })
        .unwrap();
        assert_eq!(
            ran.load(Ordering::Relaxed),
            4,
            "finished jobs must not re-run"
        );
        assert_eq!(resumed.reused, 8);
        assert_eq!(resumed.executed, 4);
        assert_eq!(resumed.results, full.results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_manifest_is_rejected_on_resume() {
        let dir = tempdir("stale");
        let path = dir.join("sq.manifest.jsonl");
        let jobs = grid(4);
        let mut config = SweepConfig::ephemeral("sq", 1);
        config.manifest_path = Some(path.clone());
        config.options_hash = 1;
        run_sweep(&config, &jobs, |id, _| id.seed).unwrap();

        // Same sweep, different options hash: stale.
        config.options_hash = 2;
        config.resume = true;
        match run_sweep(&config, &jobs, |id, _| id.seed) {
            Err(FleetError::Manifest(ManifestError::Stale { .. })) => {}
            other => panic!("expected stale rejection, got {other:?}"),
        }
        // Same options, drifted result schema: stale too.
        config.options_hash = 1;
        config.schema = 99;
        match run_sweep(&config, &jobs, |id, _| id.seed) {
            Err(FleetError::Manifest(ManifestError::Stale { .. })) => {}
            other => panic!("expected schema-drift rejection, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_manifest_starts_fresh() {
        let dir = tempdir("fresh");
        let mut config = SweepConfig::ephemeral("sq", 2);
        config.manifest_path = Some(dir.join("sq.manifest.jsonl"));
        config.resume = true;
        let jobs = grid(5);
        let out = run_sweep(&config, &jobs, |id, _| id.seed).unwrap();
        assert_eq!(out.reused, 0);
        assert_eq!(out.executed, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_results_survive_the_manifest_bit_exactly() {
        let dir = tempdir("floats");
        let path = dir.join("f.manifest.jsonl");
        let jobs: Vec<(JobId, ())> = (0..6).map(|s| (JobId::new("f", "p", s), ())).collect();
        let run = |id: &JobId, _: &()| 1.0 / (id.seed as f64 + 0.1) + 1e-17;
        let mut config = SweepConfig::ephemeral("f", 1);
        config.manifest_path = Some(path.clone());
        let full = run_sweep(&config, &jobs, run).unwrap();
        config.resume = true;
        let resumed: SweepOutcome<f64> =
            run_sweep(&config, &jobs, |_, _| unreachable!("all jobs reused")).unwrap();
        assert_eq!(resumed.reused, 6);
        for (a, b) in full.results.iter().zip(&resumed.results) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
