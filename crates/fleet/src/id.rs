//! Stable job identity: the key every sweep cell hangs off.

use serde::{Deserialize, Serialize};

/// Identifies one sweep cell: `(experiment, point, seed)`.
///
/// The id is the *only* input a job may derive randomness from — the
/// `seed` must be the same seed the serial runner would use for the
/// cell, which is what makes parallel and serial execution bit-identical.
/// The derived `Ord` is the canonical merge order: experiment, then
/// point, then seed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId {
    /// The sweep this cell belongs to (e.g. `density`, `ext_fer`).
    pub experiment: String,
    /// The grid point within the sweep (e.g. `nodes=40/BMW`).
    pub point: String,
    /// The per-cell seed, exactly as the serial path derives it.
    pub seed: u64,
}

impl JobId {
    /// Creates an id from its three components.
    pub fn new(experiment: impl Into<String>, point: impl Into<String>, seed: u64) -> JobId {
        JobId {
            experiment: experiment.into(),
            point: point.into(),
            seed,
        }
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}#{}", self.experiment, self.point, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_experiment_point_seed() {
        let mut ids = [
            JobId::new("b", "p", 0),
            JobId::new("a", "q", 0),
            JobId::new("a", "p", 2),
            JobId::new("a", "p", 1),
        ];
        ids.sort();
        let shown: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
        assert_eq!(shown, ["a/p#1", "a/p#2", "a/q#0", "b/p#0"]);
    }

    #[test]
    fn round_trips_through_json() {
        let id = JobId::new("density", "nodes=40/BMW", 40_003);
        let json = serde_json::to_string(&id).unwrap();
        let back: JobId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }
}
