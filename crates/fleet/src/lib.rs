//! Parallel, resumable sweep orchestration.
//!
//! The paper's evaluation is a grid of independent (protocol × density ×
//! rate × seed) simulator runs. This crate executes such grids on a
//! std-only thread pool while keeping the artifacts **bit-deterministic**:
//!
//! * every cell is a self-describing job keyed by a stable [`JobId`]
//!   (experiment, point, seed) — the job derives all of its randomness
//!   from that key, exactly as the serial path does,
//! * workers pull jobs from a shared injector queue and emit results into
//!   a slot-addressed buffer, so scheduling order never leaks into the
//!   output,
//! * the final merge happens in canonical (input) `JobId` order, making
//!   CSV/SVG/JSONL artifacts byte-identical at any `--jobs` value,
//!   including `--jobs 1` vs the serial runner,
//! * completed jobs are appended to a crash-safe [`manifest`]
//!   (`results/<sweep>.manifest.jsonl`) with a digest of their serialized
//!   result, so a killed sweep restarts with `--resume` and re-runs only
//!   the missing cells. A stale manifest (options-hash mismatch) is
//!   detected and rejected.
//!
//! ```
//! use rmm_fleet::{run_parallel, JobId};
//!
//! let jobs: Vec<u64> = (0..8).collect();
//! let doubled = run_parallel(4, &jobs, |_w, &x| x * 2);
//! assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! let id = JobId::new("density", "nodes=40/BMW", 3);
//! assert_eq!(id.to_string(), "density/nodes=40/BMW#3");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod digest;
pub mod id;
pub mod manifest;
pub mod pool;
pub mod progress;
pub mod service;
pub mod sweep;

pub use digest::{fnv1a, hex, Fnv1a};
pub use id::JobId;
pub use manifest::{Manifest, ManifestError, ManifestHeader, MANIFEST_VERSION};
pub use pool::{resolve_workers, run_parallel};
pub use progress::Progress;
pub use service::{JobTicket, ServicePool};
pub use sweep::{run_sweep, FleetError, SweepConfig, SweepOutcome};
