//! Live sweep progress on stderr: jobs done/total, ETA, and what each
//! worker is currently chewing on.
//!
//! Reporting is throttled (at most one line every ~500 ms, plus a final
//! line) so CI logs stay readable; all output goes to stderr, leaving
//! stdout artifacts untouched.

use crate::id::JobId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const THROTTLE: Duration = Duration::from_millis(500);

/// Progress state shared between workers (thread-safe).
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    start: Instant,
    current: Mutex<Vec<Option<String>>>,
    last_print: Mutex<Instant>,
    quiet: bool,
}

impl Progress {
    /// Creates a reporter for `total` jobs, `already_done` of which were
    /// reused from a manifest. `quiet` suppresses all output.
    pub fn new(
        label: &str,
        total: usize,
        already_done: usize,
        workers: usize,
        quiet: bool,
    ) -> Self {
        let start = Instant::now();
        Progress {
            label: label.to_string(),
            total,
            done: AtomicUsize::new(already_done),
            start,
            current: Mutex::new(vec![None; workers]),
            // Backdate so the very first completion prints immediately.
            last_print: Mutex::new(start.checked_sub(THROTTLE).unwrap_or(start)),
            quiet,
        }
    }

    /// Records that `worker` picked up `id`.
    pub fn started(&self, worker: usize, id: &JobId) {
        if self.quiet {
            return;
        }
        let mut current = self.current.lock().expect("progress state poisoned");
        if let Some(slot) = current.get_mut(worker) {
            *slot = Some(format!("{}#{}", id.point, id.seed));
        }
    }

    /// Records one finished job and maybe prints a status line.
    pub fn finished(&self, worker: usize, _id: &JobId) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.quiet {
            return;
        }
        {
            let mut current = self.current.lock().expect("progress state poisoned");
            if let Some(slot) = current.get_mut(worker) {
                *slot = None;
            }
        }
        let final_job = done >= self.total;
        {
            let mut last = self.last_print.lock().expect("progress clock poisoned");
            if !final_job && last.elapsed() < THROTTLE {
                return;
            }
            *last = Instant::now();
        }
        eprintln!("{}", self.render(done));
    }

    /// One status line: `[fleet density] 120/240 (50.0%) 3.2s eta 3.2s | w1 nodes=80/BMW#40003`.
    fn render(&self, done: usize) -> String {
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = if done == 0 {
            "?".to_string()
        } else {
            let remaining = elapsed / done as f64 * (self.total - done) as f64;
            format!("{remaining:.1}s")
        };
        let mut line = format!(
            "[fleet {}] {done}/{} ({:.1}%) {elapsed:.1}s eta {eta}",
            self.label,
            self.total,
            100.0 * done as f64 / self.total.max(1) as f64,
        );
        let current = self.current.lock().expect("progress state poisoned");
        let busy: Vec<String> = current
            .iter()
            .enumerate()
            .filter_map(|(w, c)| c.as_ref().map(|cell| format!("w{w} {cell}")))
            .collect();
        if !busy.is_empty() {
            line.push_str(" | ");
            line.push_str(&busy.join("  "));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_counts_and_workers() {
        let p = Progress::new("density", 10, 0, 2, false);
        p.started(1, &JobId::new("density", "nodes=40/BMW", 7));
        let line = p.render(5);
        assert!(line.contains("[fleet density] 5/10 (50.0%)"), "{line}");
        assert!(line.contains("w1 nodes=40/BMW#7"), "{line}");
    }

    #[test]
    fn finished_clears_the_worker_slot() {
        let p = Progress::new("x", 3, 0, 1, true);
        let id = JobId::new("x", "p", 0);
        p.started(0, &id);
        p.finished(0, &id);
        assert!(!p.render(1).contains("w0"));
        assert_eq!(p.done.load(Ordering::Relaxed), 1);
    }
}
