//! Live sweep progress on stderr: jobs done/total, ETA, throughput
//! (jobs/s and, when the job size is known, work units/s), and what each
//! worker is currently chewing on.
//!
//! Reporting is throttled (at most one line every ~500 ms, plus a final
//! line) so CI logs stay readable; all output goes to stderr, leaving
//! stdout artifacts untouched.

use crate::id::JobId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const THROTTLE: Duration = Duration::from_millis(500);

/// Progress state shared between workers (thread-safe).
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    /// Jobs loaded from a manifest rather than executed — excluded from
    /// throughput, which only rates work actually done this session.
    already_done: usize,
    /// Jobs completed per worker this session.
    worker_done: Vec<AtomicUsize>,
    /// Work units (e.g. simulated slots) per completed job; 0 disables
    /// the work-rate readout.
    work_per_job: u64,
    /// Work units completed this session.
    work_done: AtomicU64,
    start: Instant,
    current: Mutex<Vec<Option<String>>>,
    last_print: Mutex<Instant>,
    quiet: bool,
}

/// Compact human magnitude for rate readouts (`1234567` → `1.2M`).
fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.1}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

impl Progress {
    /// Creates a reporter for `total` jobs, `already_done` of which were
    /// reused from a manifest. `quiet` suppresses all output.
    pub fn new(
        label: &str,
        total: usize,
        already_done: usize,
        workers: usize,
        quiet: bool,
    ) -> Self {
        let start = Instant::now();
        Progress {
            label: label.to_string(),
            total,
            done: AtomicUsize::new(already_done),
            already_done,
            worker_done: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            work_per_job: 0,
            work_done: AtomicU64::new(0),
            start,
            current: Mutex::new(vec![None; workers]),
            // Backdate so the very first completion prints immediately.
            last_print: Mutex::new(start.checked_sub(THROTTLE).unwrap_or(start)),
            quiet,
        }
    }

    /// Declares how many work units (simulated slots, bytes, …) each job
    /// represents, enabling the `units/s` readout. Call before sharing
    /// the reporter with workers.
    pub fn set_work_per_job(&mut self, work_per_job: u64) {
        self.work_per_job = work_per_job;
    }

    /// Jobs completed by each worker this session.
    pub fn worker_jobs(&self) -> Vec<usize> {
        self.worker_done
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Overall jobs/second this session (executed jobs only — manifest
    /// reuse doesn't count as throughput).
    pub fn jobs_per_sec(&self) -> f64 {
        let executed = self
            .done
            .load(Ordering::Relaxed)
            .saturating_sub(self.already_done);
        executed as f64 / self.start.elapsed().as_secs_f64().max(1e-9)
    }

    /// Overall work units/second this session (0 unless
    /// [`Progress::set_work_per_job`] was called).
    pub fn work_per_sec(&self) -> f64 {
        self.work_done.load(Ordering::Relaxed) as f64 / self.start.elapsed().as_secs_f64().max(1e-9)
    }

    /// Records that `worker` picked up `id`.
    pub fn started(&self, worker: usize, id: &JobId) {
        if self.quiet {
            return;
        }
        let mut current = self.current.lock().expect("progress state poisoned");
        if let Some(slot) = current.get_mut(worker) {
            *slot = Some(format!("{}#{}", id.point, id.seed));
        }
    }

    /// Records one finished job and maybe prints a status line.
    pub fn finished(&self, worker: usize, _id: &JobId) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(w) = self.worker_done.get(worker) {
            w.fetch_add(1, Ordering::Relaxed);
        }
        self.work_done
            .fetch_add(self.work_per_job, Ordering::Relaxed);
        if self.quiet {
            return;
        }
        {
            let mut current = self.current.lock().expect("progress state poisoned");
            if let Some(slot) = current.get_mut(worker) {
                *slot = None;
            }
        }
        let final_job = done >= self.total;
        {
            let mut last = self.last_print.lock().expect("progress clock poisoned");
            if !final_job && last.elapsed() < THROTTLE {
                return;
            }
            *last = Instant::now();
        }
        eprintln!("{}", self.render(done));
    }

    /// One status line:
    /// `[fleet density] 120/240 (50.0%) 3.2s eta 3.2s 37.5 jobs/s 375.0k units/s | w1 nodes=80/BMW#40003`.
    fn render(&self, done: usize) -> String {
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = if done == 0 {
            "?".to_string()
        } else {
            let remaining = elapsed / done as f64 * (self.total - done) as f64;
            format!("{remaining:.1}s")
        };
        let mut line = format!(
            "[fleet {}] {done}/{} ({:.1}%) {elapsed:.1}s eta {eta}",
            self.label,
            self.total,
            100.0 * done as f64 / self.total.max(1) as f64,
        );
        let executed = done.saturating_sub(self.already_done);
        if executed > 0 && elapsed > 0.0 {
            line.push_str(&format!(" {} jobs/s", human(executed as f64 / elapsed)));
            if self.work_per_job > 0 {
                let work = self.work_done.load(Ordering::Relaxed) as f64;
                line.push_str(&format!(" {} units/s", human(work / elapsed)));
            }
        }
        let current = self.current.lock().expect("progress state poisoned");
        let busy: Vec<String> = current
            .iter()
            .enumerate()
            .filter_map(|(w, c)| {
                c.as_ref().map(|cell| {
                    let jobs = self
                        .worker_done
                        .get(w)
                        .map_or(0, |d| d.load(Ordering::Relaxed));
                    format!("w{w}({jobs}) {cell}")
                })
            })
            .collect();
        if !busy.is_empty() {
            line.push_str(" | ");
            line.push_str(&busy.join("  "));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_counts_and_workers() {
        let p = Progress::new("density", 10, 0, 2, false);
        p.started(1, &JobId::new("density", "nodes=40/BMW", 7));
        let line = p.render(5);
        assert!(line.contains("[fleet density] 5/10 (50.0%)"), "{line}");
        assert!(line.contains("w1(0) nodes=40/BMW#7"), "{line}");
        assert!(line.contains("jobs/s"), "{line}");
    }

    #[test]
    fn finished_clears_the_worker_slot() {
        let p = Progress::new("x", 3, 0, 1, true);
        let id = JobId::new("x", "p", 0);
        p.started(0, &id);
        p.finished(0, &id);
        assert!(!p.render(1).contains("w0"));
        assert_eq!(p.done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn work_rate_tracks_completed_jobs() {
        let mut p = Progress::new("x", 4, 0, 2, true);
        p.set_work_per_job(10_000);
        let id = JobId::new("x", "p", 0);
        p.finished(0, &id);
        p.finished(1, &id);
        p.finished(1, &id);
        assert_eq!(p.work_done.load(Ordering::Relaxed), 30_000);
        assert_eq!(p.worker_jobs(), vec![1, 2]);
        assert!(p.jobs_per_sec() > 0.0);
        assert!(p.work_per_sec() > p.jobs_per_sec());
        let line = p.render(3);
        assert!(line.contains("units/s"), "{line}");
    }

    #[test]
    fn reused_jobs_do_not_count_as_throughput() {
        let p = Progress::new("x", 10, 8, 1, true);
        assert_eq!(p.jobs_per_sec(), 0.0);
        let line = p.render(8);
        assert!(!line.contains("jobs/s"), "{line}");
    }

    #[test]
    fn human_magnitudes() {
        assert_eq!(human(3.2), "3.2");
        assert_eq!(human(1_500.0), "1.5k");
        assert_eq!(human(2_500_000.0), "2.5M");
        assert_eq!(human(7.2e9), "7.2G");
    }
}
