//! Property-based robustness tests for the crash-safe manifest: no
//! matter how the file is mangled — truncated mid-byte, bit-flipped,
//! interleaved with foreign lines — loading must never panic, must
//! never invent entries, and must keep resume exactly-once (a returned
//! prefix of intact entries, each byte-identical to what was written).

use proptest::prelude::*;
use rmm_fleet::{JobId, Manifest, ManifestError, ManifestHeader, MANIFEST_VERSION};
use std::path::PathBuf;

fn header(jobs: usize) -> ManifestHeader {
    ManifestHeader {
        sweep: "fuzz".into(),
        options_hash: "0x00000000deadbeef".into(),
        jobs,
        version: MANIFEST_VERSION,
        schema: 0x5eed,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rmm-manifest-fuzz-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("manifest.jsonl")
}

/// Writes a well-formed manifest with `n` entries and returns its bytes
/// plus the entries as written.
fn write_manifest(path: &PathBuf, n: usize) -> (Vec<u8>, Vec<(JobId, String)>) {
    let manifest = Manifest::create(path, &header(n), &[]).unwrap();
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let id = JobId::new("fuzz", format!("point-{i}"), i as u64);
        let result = format!("{{\"cell\":{i},\"payload\":\"r{i}\"}}");
        manifest.append(&id, &result);
        entries.push((id, result));
    }
    drop(manifest);
    (std::fs::read(path).unwrap(), entries)
}

/// Whatever load returns must be an exact prefix-subset of what was
/// written: same ids, byte-identical results, in order, no duplicates,
/// nothing invented. (Corruption may legally shorten the tail — never
/// alter or reorder what survives.)
fn assert_recovered_is_clean_prefix(recovered: &[(JobId, String)], written: &[(JobId, String)]) {
    assert!(recovered.len() <= written.len(), "load invented entries");
    for (got, want) in recovered.iter().zip(written) {
        assert_eq!(got, want, "recovered entry differs from what was written");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the file at any byte never panics and never corrupts
    /// the surviving prefix. Entries whose final newline survived are
    /// recovered; exactly-once means nothing past the cut is returned.
    #[test]
    fn truncation_yields_clean_prefix(n in 1usize..8, cut_frac in 0.0f64..1.0) {
        let path = scratch("trunc");
        let (bytes, written) = write_manifest(&path, n);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match Manifest::load(&path, &header(n)) {
            Ok(recovered) => {
                assert_recovered_is_clean_prefix(&recovered, &written);
                // Exactly-once accounting: a resumed sweep reruns
                // precisely the complement, so recovered + rerun = n.
                prop_assert!(recovered.len() <= n);
            }
            // Cutting into the header line is a Corrupt file, not a crash.
            Err(ManifestError::Corrupt(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Flipping any single bit anywhere never panics, and a flip inside
    /// an entry is caught by the digest (the poisoned entry and its tail
    /// are dropped, everything before it survives byte-identical).
    #[test]
    fn bit_flips_never_panic_or_forge_entries(n in 1usize..8, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let path = scratch("flip");
        let (mut bytes, written) = write_manifest(&path, n);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match Manifest::load(&path, &header(n)) {
            Ok(recovered) => {
                // The flip may land in an entry (dropping it and its
                // tail) or leave JSON valid-but-different; the digest
                // guarantees any *accepted* entry is byte-identical.
                assert_recovered_is_clean_prefix(&recovered, &written);
            }
            // A flip in the header line is Corrupt or Stale; a flip that
            // breaks UTF-8 is a clean I/O error. Never a panic.
            Err(ManifestError::Corrupt(_) | ManifestError::Stale { .. }) => {}
            Err(ManifestError::Io(e)) => {
                assert!(e.to_string().contains("UTF-8"), "unexpected I/O error: {e}");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Garbage lines interleaved into the file (a foreign process
    /// appending, a botched merge) stop the load at the first bad line —
    /// the intact prefix is recovered, nothing after it leaks through.
    #[test]
    fn interleaved_garbage_stops_cleanly(
        n in 2usize..8,
        at in 1usize..8,
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let path = scratch("interleave");
        let (bytes, written) = write_manifest(&path, n);
        let text = String::from_utf8(bytes).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let at = 1 + (at % n); // after the header, somewhere among entries
        let junk: String = garbage
            .iter()
            .map(|b| char::from(b'!' + (b % 90)))
            .filter(|c| *c != '\n')
            .collect();
        lines.insert(at.min(lines.len()), junk);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let recovered = Manifest::load(&path, &header(n)).unwrap();
        // Everything before the junk line survives; at it, load stops.
        prop_assert_eq!(recovered.len(), at - 1);
        assert_recovered_is_clean_prefix(&recovered, &written);
    }

    /// A manifest rewritten through `create` with preserved entries then
    /// truncated mid-append still resumes exactly-once: recovered
    /// entries and rerun jobs partition the grid.
    #[test]
    fn preserved_plus_truncated_tail_partitions_the_grid(keep in 1usize..6, extra in 1usize..4) {
        let path = scratch("partition");
        let n = keep + extra;
        let (_, written) = write_manifest(&path, keep);
        // Crash-recovery rewrite: preserve the first `keep`, then append
        // `extra` more and tear the last line in half.
        let manifest = Manifest::create(&path, &header(n), &written).unwrap();
        for i in 0..extra {
            let idx = keep + i;
            manifest.append(
                &JobId::new("fuzz", format!("point-{idx}"), idx as u64),
                &format!("{{\"cell\":{idx}}}"),
            );
        }
        drop(manifest);
        let bytes = std::fs::read(&path).unwrap();
        let text = std::str::from_utf8(&bytes).unwrap();
        let last_len = text.trim_end().lines().last().unwrap().len();
        std::fs::write(&path, &bytes[..bytes.len() - 1 - last_len / 2]).unwrap();
        let recovered = Manifest::load(&path, &header(n)).unwrap();
        prop_assert!(recovered.len() >= keep, "preserved entries must survive");
        prop_assert!(recovered.len() < n, "the torn entry must not resurrect");
        let ids: std::collections::HashSet<_> =
            recovered.iter().map(|(id, _)| id.clone()).collect();
        prop_assert_eq!(ids.len(), recovered.len(), "no duplicate ids");
    }
}
