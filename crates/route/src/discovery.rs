//! RREQ flooding over the MAC layer.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_mac::{MacNode, ProtocolKind, TrafficKind};
use rmm_sim::{Engine, MsgId, NodeId, Slot, Topology};
use rmm_workload::{Scenario, TrafficGen};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Route-discovery parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Maximum hops a RREQ may travel (TTL).
    pub ttl: u32,
    /// Slots to keep simulating after the flood starts.
    pub horizon: Slot,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            ttl: 16,
            horizon: 2_000,
        }
    }
}

/// Outcome of one route discovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryResult {
    /// The flood reached the target.
    pub reached: bool,
    /// Slot at which the target first processed a RREQ copy.
    pub latency: Option<Slot>,
    /// Hop count of the first copy to arrive (route length).
    pub hops: Option<u32>,
    /// Total RREQ (re)broadcasts the flood generated.
    pub rebroadcasts: u32,
    /// Stations that processed the RREQ at least once (flood coverage).
    pub coverage: usize,
}

/// Outcome of a full route-establishment cycle (RREQ flood + RREP
/// unicast chain back along the recorded reverse path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteResult {
    /// The forward flood's outcome.
    pub discovery: DiscoveryResult,
    /// The RREP made it back to the origin.
    pub route_established: bool,
    /// Slot at which the origin received the RREP.
    pub round_trip: Option<Slot>,
    /// The reverse path the RREP walked (target first), when established.
    pub path: Vec<NodeId>,
}

/// A RREQ copy in flight: which flood it belongs to and its hop count.
#[derive(Debug, Clone, Copy)]
struct RreqCopy {
    hops: u32,
}

/// The route-discovery harness: MAC stations under a chosen protocol plus
/// the network-layer flooding state.
pub struct RouteSim {
    topo: Topology,
    nodes: Vec<MacNode>,
    engine: Engine,
    /// MsgId → RREQ metadata for frames that carry the flood.
    payloads: HashMap<MsgId, RreqCopy>,
    /// Per-node count of received messages already processed.
    processed: Vec<usize>,
    /// Per-node: has this station already forwarded the flood?
    forwarded: Vec<bool>,
    /// Reverse route: the station each node first heard the flood from.
    prev_hop: Vec<Option<NodeId>>,
    /// Optional cross traffic competing with the flood.
    background: Option<TrafficGen>,
    rng: SmallRng,
}

impl RouteSim {
    /// Builds the harness over a scenario's topology with every station
    /// running `protocol`.
    pub fn new(scenario: &Scenario, protocol: ProtocolKind, seed: u64) -> Self {
        let topo = rmm_workload::uniform_square(scenario.n_nodes, scenario.radius, seed);
        let nodes = MacNode::build_network(&topo, protocol, scenario.timing, seed);
        let mut engine = Engine::new(topo.clone(), scenario.capture, seed.wrapping_add(0x5eed));
        if scenario.fer > 0.0 {
            engine.set_fer(scenario.fer);
        }
        let n = topo.len();
        let background = (scenario.msg_rate > 0.0)
            .then(|| TrafficGen::new(scenario.msg_rate, scenario.mix, seed));
        RouteSim {
            topo,
            nodes,
            engine,
            payloads: HashMap::new(),
            processed: vec![0; n],
            forwarded: vec![false; n],
            prev_hop: vec![None; n],
            background,
            rng: SmallRng::seed_from_u64(seed ^ 0x7275_7465),
        }
    }

    /// Disables the scenario's background traffic (flood on a quiet
    /// channel).
    pub fn quiet(mut self) -> Self {
        self.background = None;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Picks an origin/target pair at least `min_hops` apart in the
    /// connectivity graph (BFS), if one exists.
    pub fn pick_distant_pair(&mut self, min_hops: u32) -> Option<(NodeId, NodeId)> {
        let n = self.topo.len();
        for _ in 0..64 {
            let origin = NodeId(self.rng.random_range(0..n as u32));
            let dist = self.bfs_distances(origin);
            let candidates: Vec<NodeId> = (0..n as u32)
                .map(NodeId)
                .filter(|t| dist[t.index()].is_some_and(|d| d >= min_hops))
                .collect();
            if !candidates.is_empty() {
                let target = candidates[self.rng.random_range(0..candidates.len())];
                return Some((origin, target));
            }
        }
        None
    }

    /// BFS hop distances from `origin` over the connectivity graph.
    pub fn bfs_distances(&self, origin: NodeId) -> Vec<Option<u32>> {
        let n = self.topo.len();
        let mut dist = vec![None; n];
        dist[origin.index()] = Some(0);
        let mut queue = std::collections::VecDeque::from([origin]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for &v in self.topo.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Floods a RREQ from `origin` toward `target` and runs the network
    /// until the flood dies out or `config.horizon` elapses.
    pub fn discover(
        &mut self,
        origin: NodeId,
        target: NodeId,
        config: DiscoveryConfig,
    ) -> DiscoveryResult {
        let mut result = DiscoveryResult {
            reached: false,
            latency: None,
            hops: None,
            rebroadcasts: 0,
            coverage: 1, // the origin knows the request
        };
        // Origin broadcast: hop count 0 copy.
        self.forwarded[origin.index()] = true;
        self.broadcast_copy(origin, 0, self.engine.now(), &mut result);

        let deadline = self.engine.now() + config.horizon;
        let mut arrivals = Vec::new();
        while self.engine.now() < deadline {
            if let Some(gen) = &mut self.background {
                let now = self.engine.now();
                gen.tick(&self.topo, now, &mut arrivals);
                for a in &arrivals {
                    self.nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), now);
                }
            }
            self.engine.step(&mut self.nodes);
            let now = self.engine.now();
            // Network layer: react to newly decoded data frames.
            for i in 0..self.nodes.len() {
                let received = self.nodes[i].received();
                if received.len() == self.processed[i] {
                    continue;
                }
                // Collect the fresh RREQ copies (cheap: received counts
                // only move forward, and floods are short).
                let fresh: Vec<(MsgId, RreqCopy)> = received
                    .iter()
                    .filter_map(|m| self.payloads.get(m).map(|c| (*m, *c)))
                    .collect();
                self.processed[i] = received.len();
                let me = NodeId(i as u32);
                let Some(&(best_msg, best)) = fresh.iter().min_by_key(|(_, c)| c.hops) else {
                    continue;
                };
                if self.forwarded[i] {
                    continue;
                }
                self.forwarded[i] = true;
                self.prev_hop[i] = Some(best_msg.src);
                result.coverage += 1;
                if me == target {
                    result.reached = true;
                    result.latency = Some(now);
                    result.hops = Some(best.hops + 1);
                    return result;
                }
                if best.hops + 1 < config.ttl {
                    self.broadcast_copy(me, best.hops + 1, now, &mut result);
                }
            }
        }
        result
    }

    /// Runs the full AODV cycle: RREQ flood, then a RREP unicast chain
    /// walking the recorded reverse path back to the origin.
    pub fn establish_route(
        &mut self,
        origin: NodeId,
        target: NodeId,
        config: DiscoveryConfig,
    ) -> RouteResult {
        let discovery = self.discover(origin, target, config);
        let mut result = RouteResult {
            discovery,
            route_established: false,
            round_trip: None,
            path: Vec::new(),
        };
        if !discovery.reached {
            return result;
        }
        // Reconstruct the reverse path target → origin from prev hops.
        let mut path = vec![target];
        let mut cursor = target;
        while cursor != origin {
            let Some(prev) = self.prev_hop[cursor.index()] else {
                return result; // broken reverse route (should not happen)
            };
            if path.contains(&prev) {
                return result; // defensive: loop
            }
            path.push(prev);
            cursor = prev;
        }
        // Walk the RREP: one DCF unicast per reverse hop, each launched
        // once the previous one is delivered. The flood's broadcast storm
        // is usually still draining, so legs may time out; retry each a
        // few times, as AODV route replies effectively do.
        let mut leg = 0usize; // path[leg] -> path[leg + 1]
        let mut pending: Option<MsgId> = None;
        let mut retries = 0u32;
        let deadline = self.engine.now() + config.horizon;
        let mut arrivals = Vec::new();
        while self.engine.now() < deadline {
            let now = self.engine.now();
            if pending.is_none() {
                if leg + 1 == path.len() {
                    result.route_established = true;
                    result.round_trip = Some(now);
                    result.path = path;
                    return result;
                }
                let from = path[leg];
                let to = path[leg + 1];
                let msg = self.nodes[from.index()].enqueue(TrafficKind::Unicast, vec![to], now);
                pending = Some(msg);
            }
            if let Some(gen) = &mut self.background {
                gen.tick(&self.topo, now, &mut arrivals);
                for a in &arrivals {
                    self.nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), now);
                }
            }
            self.engine.step(&mut self.nodes);
            if let Some(msg) = pending {
                let to = path[leg + 1];
                if self.nodes[to.index()].received().contains(&msg) {
                    pending = None;
                    leg += 1;
                } else {
                    // Retry the leg if the sender abandoned it (service
                    // timeout under the draining flood storm).
                    let from = path[leg];
                    let done = self.nodes[from.index()]
                        .records()
                        .iter()
                        .any(|r| r.msg == msg && !matches!(r.outcome, rmm_mac::Outcome::Pending));
                    if done {
                        retries += 1;
                        if retries > 8 {
                            return result; // leg persistently failing
                        }
                        pending = None; // re-enqueue this leg next round
                    }
                }
            }
        }
        result
    }

    fn broadcast_copy(&mut self, from: NodeId, hops: u32, now: Slot, result: &mut DiscoveryResult) {
        if self.topo.neighbors(from).is_empty() {
            return;
        }
        let receivers = self.topo.neighbors(from).to_vec();
        let msg = self.nodes[from.index()].enqueue(TrafficKind::Broadcast, receivers, now);
        self.payloads.insert(msg, RreqCopy { hops });
        result.rebroadcasts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(nodes: usize) -> Scenario {
        // msg_rate 0: the unit tests flood on a quiet channel.
        Scenario {
            n_nodes: nodes,
            n_runs: 1,
            msg_rate: 0.0,
            ..Scenario::default()
        }
    }

    #[test]
    fn bfs_distances_on_known_topology() {
        // RouteSim over a seeded random topology: BFS sanity.
        let sim = RouteSim::new(&scenario(50), ProtocolKind::Bmmm, 3);
        let dist = sim.bfs_distances(NodeId(0));
        assert_eq!(dist[0], Some(0));
        // Every direct neighbor is at distance 1.
        for &nb in sim.topology().neighbors(NodeId(0)) {
            assert_eq!(dist[nb.index()], Some(1));
        }
        // Triangle inequality along edges.
        for u in 0..50u32 {
            if let Some(du) = dist[u as usize] {
                for &v in sim.topology().neighbors(NodeId(u)) {
                    let dv = dist[v.index()].expect("connected to reached node");
                    assert!(dv <= du + 1);
                }
            }
        }
    }

    #[test]
    fn discovery_reaches_multi_hop_target_under_bmmm() {
        let mut sim = RouteSim::new(&scenario(80), ProtocolKind::Bmmm, 7);
        let (origin, target) = sim.pick_distant_pair(3).expect("a 3-hop pair exists");
        let hops_truth = sim.bfs_distances(origin)[target.index()].unwrap();
        let result = sim.discover(origin, target, DiscoveryConfig::default());
        assert!(result.reached, "flood never reached the target");
        let hops = result.hops.unwrap();
        assert!(
            hops >= hops_truth,
            "route of {hops} hops beats the BFS optimum {hops_truth}"
        );
        assert!(result.rebroadcasts >= hops_truth);
        assert!(result.coverage >= hops as usize);
    }

    #[test]
    fn unreachable_target_is_never_found() {
        // Find a disconnected pair if one exists; otherwise synthesize by
        // using an isolated-by-construction two-cluster layout.
        let topo = Topology::new(
            vec![
                rmm_geom::Point::new(0.1, 0.1),
                rmm_geom::Point::new(0.2, 0.1),
                rmm_geom::Point::new(0.9, 0.9),
            ],
            0.2,
        );
        let nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, Default::default(), 1);
        let engine = Engine::new(topo.clone(), rmm_sim::Capture::ZorziRao, 1);
        let mut sim = RouteSim {
            topo,
            nodes,
            engine,
            payloads: HashMap::new(),
            processed: vec![0; 3],
            forwarded: vec![false; 3],
            prev_hop: vec![None; 3],
            background: None,
            rng: SmallRng::seed_from_u64(1),
        };
        let result = sim.discover(
            NodeId(0),
            NodeId(2),
            DiscoveryConfig {
                ttl: 8,
                horizon: 500,
            },
        );
        assert!(!result.reached);
        assert_eq!(result.latency, None);
        assert!(
            result.coverage >= 2,
            "the connected cluster should be covered"
        );
    }

    #[test]
    fn ttl_bounds_the_flood() {
        let mut sim = RouteSim::new(&scenario(80), ProtocolKind::Bmmm, 7);
        let (origin, target) = sim.pick_distant_pair(4).expect("a 4-hop pair exists");
        // TTL 1: only the origin's own broadcast; a ≥4-hop target cannot
        // be reached.
        let result = sim.discover(
            origin,
            target,
            DiscoveryConfig {
                ttl: 1,
                horizon: 800,
            },
        );
        assert!(!result.reached);
        assert_eq!(result.rebroadcasts, 1);
    }

    #[test]
    fn discovery_is_deterministic() {
        let run = |seed: u64| {
            let mut sim = RouteSim::new(&scenario(60), ProtocolKind::Lamm, seed);
            let (o, t) = sim.pick_distant_pair(2).unwrap();
            sim.discover(o, t, DiscoveryConfig::default())
        };
        assert_eq!(run(11), run(11));
    }
}

#[cfg(test)]
mod rrep_tests {
    use super::*;

    fn scenario(nodes: usize) -> Scenario {
        Scenario {
            n_nodes: nodes,
            n_runs: 1,
            msg_rate: 0.0,
            ..Scenario::default()
        }
    }

    #[test]
    fn full_route_establishment_round_trip() {
        let mut sim = RouteSim::new(&scenario(80), ProtocolKind::Bmmm, 7);
        let (origin, target) = sim.pick_distant_pair(3).expect("3-hop pair");
        let result = sim.establish_route(origin, target, DiscoveryConfig::default());
        assert!(result.discovery.reached);
        assert!(result.route_established, "RREP never returned");
        // The path runs target → origin and is loop-free.
        assert_eq!(*result.path.first().unwrap(), target);
        assert_eq!(*result.path.last().unwrap(), origin);
        let mut dedup = result.path.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), result.path.len(), "loop in path");
        // Every consecutive pair is a radio link.
        for w in result.path.windows(2) {
            assert!(sim.topology().in_range(w[0], w[1]));
        }
        // Round trip strictly after the forward latency.
        assert!(result.round_trip.unwrap() > result.discovery.latency.unwrap());
    }

    #[test]
    fn rrep_path_length_is_at_least_bfs_distance() {
        let mut sim = RouteSim::new(&scenario(80), ProtocolKind::Lamm, 9);
        let (origin, target) = sim.pick_distant_pair(3).expect("3-hop pair");
        let truth = sim.bfs_distances(origin)[target.index()].unwrap() as usize;
        let result = sim.establish_route(origin, target, DiscoveryConfig::default());
        if result.route_established {
            assert!(result.path.len() > truth);
        }
    }

    #[test]
    fn failed_discovery_yields_no_route() {
        let mut sim = RouteSim::new(&scenario(80), ProtocolKind::Bmmm, 7);
        let (origin, target) = sim.pick_distant_pair(4).expect("4-hop pair");
        let result = sim.establish_route(
            origin,
            target,
            DiscoveryConfig {
                ttl: 1,
                horizon: 500,
            },
        );
        assert!(!result.discovery.reached);
        assert!(!result.route_established);
        assert!(result.path.is_empty());
    }
}
