//! Network-layer route discovery over the multicast MAC — the workload
//! the paper's introduction motivates: "several higher layer protocols
//! rely heavily on reliable and efficient MAC layer multicast/broadcast,
//! for instance DSR, AODV and ZRP routing protocols."
//!
//! [`RouteSim`] floods an AODV-style route request (RREQ) from an origin
//! toward a target: every station that receives a copy for the first
//! time records the reverse hop and rebroadcasts it **through the MAC
//! protocol under test**. Whether the flood actually crosses the network
//! is then a direct function of the MAC broadcast's reliability — the
//! quantity the paper's protocols exist to improve.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod discovery;

pub use discovery::{DiscoveryConfig, DiscoveryResult, RouteResult, RouteSim};
