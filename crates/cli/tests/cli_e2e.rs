//! End-to-end tests driving the actual `rmm` binary.

use std::process::Command;

fn rmm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rmm"))
}

#[test]
fn config_emits_valid_scenario_json() {
    let out = rmm().arg("config").output().expect("binary runs");
    assert!(out.status.success());
    let scenario: rmm::workload::Scenario =
        serde_json::from_slice(&out.stdout).expect("valid Scenario JSON");
    assert_eq!(scenario, rmm::workload::Scenario::default());
}

#[test]
fn run_json_reports_metrics() {
    let out = rmm()
        .args([
            "run",
            "--protocol",
            "bmmm",
            "--nodes",
            "30",
            "--slots",
            "1500",
            "--runs",
            "1",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("json output");
    assert_eq!(v["protocol"], "BMMM");
    assert_eq!(v["reliable"], true);
    let rate = v["delivery_rate"]["mean"].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&rate));
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = rmm()
        .args(["run", "--nodes", "30"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--protocol"));
    assert!(err.contains("usage"));
}

#[test]
fn help_prints_usage() {
    let out = rmm().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("rmm run --protocol"));
}

#[test]
fn trace_streams_jsonl_and_writes_metrics() {
    let dir = std::env::temp_dir().join("rmm_cli_e2e_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("m.json");
    let out = rmm()
        .args([
            "trace",
            "--protocol",
            "bmmm",
            "--nodes",
            "30",
            "--slots",
            "1500",
            "--seed",
            "11",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // stdout is the JSONL event log; it parses back into a trace.
    let trace = rmm::sim::Trace::from_jsonl(&String::from_utf8_lossy(&out.stdout))
        .expect("stdout is valid JSONL");
    assert!(!trace.events().is_empty());
    // stderr carries the one-line human summary.
    assert!(String::from_utf8_lossy(&out.stderr).contains("BMMM seed 11"));
    // The metrics file embeds the run manifest for provenance.
    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert_eq!(metrics["manifest"]["seed"].as_u64(), Some(11));
    assert_eq!(metrics["manifest"]["protocol"], "Bmmm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_with_trace_out_writes_event_log() {
    let dir = std::env::temp_dir().join("rmm_cli_e2e_run_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("t.jsonl");
    let out = rmm()
        .args([
            "run",
            "--protocol",
            "lamm",
            "--nodes",
            "25",
            "--slots",
            "1200",
            "--runs",
            "1",
            "--json",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // stdout stays the normal run report.
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["protocol"], "LAMM");
    let trace = rmm::sim::Trace::from_jsonl(&std::fs::read_to_string(&trace_path).unwrap())
        .expect("trace file is valid JSONL");
    assert!(!trace.events().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_file_roundtrip_through_binary() {
    let dir = std::env::temp_dir().join("rmm_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.json");
    let out = rmm().arg("config").output().unwrap();
    std::fs::write(&path, &out.stdout).unwrap();
    let out = rmm()
        .args([
            "run",
            "--protocol",
            "lamm",
            "--config",
            path.to_str().unwrap(),
            "--nodes",
            "25",
            "--slots",
            "1200",
            "--runs",
            "1",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["protocol"], "LAMM");
    let _ = std::fs::remove_dir_all(&dir);
}
