//! The `rmm` binary. See [`rmm_cli`] for the command grammar.

use rmm_cli::{parse_args, render_compare, render_run, Command, USAGE};

fn main() {
    let cmd = match parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd {
        Command::Help => print!("{USAGE}"),
        Command::Config => println!("{}", rmm_cli::config_template()),
        Command::Run {
            protocol,
            scenario,
            json,
        } => {
            print!("{}", render_run(protocol, &scenario, json));
            if !json {
                println!();
            }
        }
        Command::Compare { scenario, json } => {
            print!("{}", render_compare(&scenario, json));
            if !json {
                println!();
            }
        }
    }
}
