//! The `rmm` binary. See [`rmm_cli`] for the command grammar.

use rmm_cli::{
    compare_metrics_json, export_profile, export_trace, parse_args, render_compare, render_run,
    replay_repro, repro_json, run_chaos_campaign, Command, SubmitAction, USAGE,
};

fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

fn main() {
    let cmd = match parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd {
        Command::Help => print!("{USAGE}"),
        Command::Config => println!("{}", rmm_cli::config_template()),
        Command::Run {
            protocol,
            scenario,
            seed,
            json,
            trace_out,
            metrics_out,
            profile_out,
            sweep,
        } => {
            match render_run(protocol, &scenario, seed, json, &sweep) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            if !json {
                println!();
            }
            if trace_out.is_some() || metrics_out.is_some() {
                let export = export_trace(protocol, &scenario, seed);
                if let Some(path) = trace_out.as_deref() {
                    write_file(path, &export.jsonl);
                }
                if let Some(path) = metrics_out.as_deref() {
                    write_file(path, &export.metrics_json);
                }
                eprintln!("{}", export.summary);
            }
            if let Some(path) = profile_out.as_deref() {
                let prof = export_profile(protocol, &scenario, seed);
                write_file(path, &prof.profile_json);
                eprintln!("{}", prof.summary);
            }
        }
        Command::Compare {
            scenario,
            seed,
            json,
            metrics_out,
            jobs,
        } => {
            print!("{}", render_compare(&scenario, seed, json, jobs));
            if !json {
                println!();
            }
            if let Some(path) = metrics_out.as_deref() {
                write_file(path, &compare_metrics_json(&scenario, seed));
            }
        }
        Command::Trace {
            protocol,
            scenario,
            seed,
            trace_out,
            metrics_out,
        } => {
            let export = export_trace(protocol, &scenario, seed);
            match trace_out.as_deref() {
                Some(path) => write_file(path, &export.jsonl),
                None => print!("{}", export.jsonl),
            }
            if let Some(path) = metrics_out.as_deref() {
                write_file(path, &export.metrics_json);
            }
            eprintln!("{}", export.summary);
        }
        Command::Chaos {
            scenario,
            protocol,
            iters,
            budget_secs,
            seed,
            json,
            out,
            repro,
        } => {
            if let Some(path) = repro.as_deref() {
                match replay_repro(path) {
                    Ok(text) => print!("{text}"),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                let report =
                    run_chaos_campaign(&scenario, protocol, iters, budget_secs, seed, json);
                print!("{}", report.rendered);
                if json {
                    println!();
                }
                if let Some(failure) = &report.outcome.failure {
                    if let Some(path) = out.as_deref() {
                        write_file(path, &repro_json(failure));
                        eprintln!("[repro written to {path}]");
                    }
                    std::process::exit(1);
                }
            }
        }
        Command::Serve {
            addr,
            jobs,
            max_conns,
            queue_cap,
            cache,
        } => {
            let config = rmm::serve::ServeConfig {
                addr,
                workers: jobs,
                max_conns,
                queue_cap,
                cache_path: cache.map(std::path::PathBuf::from),
                quiet: false,
            };
            match rmm::serve::Server::start(config) {
                Ok(server) => server.join(), // runs until a Shutdown request drains it
                Err(e) => {
                    eprintln!("error: cannot start server: {e}");
                    std::process::exit(2);
                }
            }
        }
        Command::Submit { addr, action } => match action {
            SubmitAction::Run {
                protocol,
                scenario,
                seed,
                trace,
                profile,
                local,
            } => {
                let req = rmm::serve::RunRequest {
                    id: 0,
                    protocol: protocol.name().to_string(),
                    scenario,
                    seed,
                    trace,
                    profile,
                };
                let lines = if local {
                    rmm::serve::local_lines(&req).expect("protocol came from parse_protocol")
                } else {
                    match rmm::serve::submit_one(&addr, &req) {
                        Ok(lines) => lines,
                        Err(e) => {
                            eprintln!("error: submit to {addr}: {e}");
                            std::process::exit(2);
                        }
                    }
                };
                let failed = lines.last().is_some_and(|l| l.contains("\"Error\""));
                for line in lines {
                    println!("{line}");
                }
                if failed {
                    std::process::exit(1);
                }
            }
            SubmitAction::Soak {
                requests,
                conns,
                scenario,
                seed,
                trace_every,
                expect_cached,
            } => {
                let spec = rmm::serve::SoakSpec {
                    requests,
                    conns,
                    scenario,
                    seed_base: seed,
                    trace_every,
                    expect_cached,
                };
                match rmm::serve::soak(&addr, &spec) {
                    Ok(report) => println!("{}", rmm::serve::render_soak(&report)),
                    Err(e) => {
                        eprintln!("soak FAILED: {e}");
                        std::process::exit(1);
                    }
                }
            }
            SubmitAction::Metrics => match rmm::serve::fetch_metrics(&addr) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: metrics from {addr}: {e}");
                    std::process::exit(2);
                }
            },
            SubmitAction::Shutdown => {
                if let Err(e) = rmm::serve::request_shutdown(&addr) {
                    eprintln!("error: shutdown of {addr}: {e}");
                    std::process::exit(2);
                }
            }
        },
        Command::Prof {
            protocol,
            scenario,
            seed,
            json,
            profile_out,
            prom_out,
        } => {
            let prof = export_profile(protocol, &scenario, seed);
            if json {
                println!("{}", prof.profile_json);
            } else {
                print!("{}", prof.human);
            }
            if let Some(path) = profile_out.as_deref() {
                write_file(path, &prof.profile_json);
            }
            if let Some(path) = prom_out.as_deref() {
                write_file(path, &prof.prom_text);
            }
            eprintln!("{}", prof.summary);
        }
    }
}
