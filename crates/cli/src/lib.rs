//! Command-line front end for the reliable multicast MAC simulator.
//!
//! ```text
//! rmm run     --protocol lamm [--config s.json] [--nodes N] [--slots N]
//!             [--rate X] [--timeout N] [--runs N] [--seed N] [--json]
//! rmm compare [--config s.json] [same overrides]
//! rmm config  # emit a default scenario JSON template to stdout
//! ```
//!
//! Configs are the JSON serialization of
//! [`rmm::workload::Scenario`]; command-line flags override
//! individual fields after the file is loaded.

use rmm::mac::ProtocolKind;
use rmm::stats::{Summary, Table};
use rmm::workload::{mean_group_metrics, run_many, Scenario};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one protocol and report its metrics.
    Run {
        /// Protocol under test.
        protocol: ProtocolKind,
        /// Scenario after config + overrides.
        scenario: Scenario,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
    /// Run every protocol on the same scenario and print the comparison.
    Compare {
        /// Scenario after config + overrides.
        scenario: Scenario,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
    /// Print the default scenario as a JSON template.
    Config,
    /// Print usage.
    Help,
}

/// Errors from [`parse_args`].
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Unknown subcommand or flag.
    Unknown(String),
    /// A flag was missing its value or the value did not parse.
    BadValue(String),
    /// The config file could not be read or parsed.
    BadConfig(String),
    /// `run` requires `--protocol`.
    MissingProtocol,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Unknown(s) => write!(f, "unknown argument: {s}"),
            CliError::BadValue(s) => write!(f, "bad or missing value for {s}"),
            CliError::BadConfig(s) => write!(f, "config error: {s}"),
            CliError::MissingProtocol => write!(f, "`run` requires --protocol <name>"),
        }
    }
}

/// Parses a protocol name (case-insensitive; accepts the display names
/// and a few aliases).
pub fn parse_protocol(name: &str) -> Option<ProtocolKind> {
    match name.to_ascii_lowercase().as_str() {
        "802.11" | "80211" | "ieee80211" | "plain" => Some(ProtocolKind::Ieee80211),
        "tg" | "tg-rts" | "tang-gerla" | "tanggerla" => Some(ProtocolKind::TangGerla),
        "bsma" => Some(ProtocolKind::Bsma),
        "bmw" => Some(ProtocolKind::Bmw),
        "bmmm" => Some(ProtocolKind::Bmmm),
        "lamm" => Some(ProtocolKind::Lamm),
        "leader" | "leader-based" | "kk" => Some(ProtocolKind::LeaderBased),
        _ => None,
    }
}

/// Parses an argument vector (without the binary name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut args = args.into_iter();
    let sub = match args.next() {
        Some(s) => s,
        None => return Ok(Command::Help),
    };
    match sub.as_str() {
        "config" => Ok(Command::Config),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" | "compare" => {
            let mut protocol = None;
            let mut scenario = Scenario::default();
            let mut json = false;
            let rest: Vec<String> = args.collect();
            let mut i = 0;
            let value = |rest: &[String], i: usize, flag: &str| -> Result<String, CliError> {
                rest.get(i + 1)
                    .cloned()
                    .ok_or_else(|| CliError::BadValue(flag.into()))
            };
            while i < rest.len() {
                match rest[i].as_str() {
                    "--protocol" | "-p" => {
                        let v = value(&rest, i, "--protocol")?;
                        protocol =
                            Some(parse_protocol(&v).ok_or_else(|| CliError::BadValue(v.clone()))?);
                        i += 2;
                    }
                    "--config" => {
                        let path = value(&rest, i, "--config")?;
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?;
                        scenario = serde_json::from_str(&text)
                            .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?;
                        i += 2;
                    }
                    "--nodes" => {
                        scenario.n_nodes = parse_num(&rest, i, "--nodes")?;
                        i += 2;
                    }
                    "--slots" => {
                        scenario.sim_slots = parse_num(&rest, i, "--slots")?;
                        i += 2;
                    }
                    "--rate" => {
                        scenario.msg_rate = parse_num(&rest, i, "--rate")?;
                        i += 2;
                    }
                    "--timeout" => {
                        scenario.timing.timeout = parse_num(&rest, i, "--timeout")?;
                        i += 2;
                    }
                    "--runs" => {
                        scenario.n_runs = parse_num(&rest, i, "--runs")?;
                        i += 2;
                    }
                    "--threshold" => {
                        scenario.reliability_threshold = parse_num(&rest, i, "--threshold")?;
                        i += 2;
                    }
                    "--fer" => {
                        scenario.fer = parse_num(&rest, i, "--fer")?;
                        i += 2;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    other => return Err(CliError::Unknown(other.to_string())),
                }
            }
            if sub == "run" {
                Ok(Command::Run {
                    protocol: protocol.ok_or(CliError::MissingProtocol)?,
                    scenario,
                    json,
                })
            } else {
                Ok(Command::Compare { scenario, json })
            }
        }
        other => Err(CliError::Unknown(other.to_string())),
    }
}

fn parse_num<T: std::str::FromStr>(rest: &[String], i: usize, flag: &str) -> Result<T, CliError> {
    rest.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CliError::BadValue(flag.into()))
}

/// Renders one protocol's results.
pub fn render_run(protocol: ProtocolKind, scenario: &Scenario, json: bool) -> String {
    let results = run_many(scenario, protocol);
    let m = mean_group_metrics(&results);
    let delivery: Vec<f64> = results
        .iter()
        .map(|r| r.group_metrics.delivery_rate)
        .collect();
    let ci = Summary::of(&delivery);
    if json {
        serde_json::json!({
            "protocol": protocol.name(),
            "runs": results.len(),
            "mean_degree": results.iter().map(|r| r.mean_degree).sum::<f64>() / results.len() as f64,
            "delivery_rate": { "mean": ci.mean, "ci95": ci.ci95 },
            "avg_contention_phases": m.avg_contention_phases,
            "avg_completion_time": m.avg_completion_time,
            "utilization": results.iter().map(|r| r.utilization).sum::<f64>() / results.len() as f64,
            "reliable": protocol.is_reliable(),
        })
        .to_string()
    } else {
        let mut t = Table::new(["metric", "value"]);
        t.row(["protocol".to_string(), protocol.name().to_string()]);
        t.row(["runs".to_string(), results.len().to_string()]);
        t.row(["delivery rate".to_string(), ci.display()]);
        t.row([
            "contention phases/msg".to_string(),
            format!("{:.2}", m.avg_contention_phases),
        ]);
        t.row([
            "completion time (slots)".to_string(),
            format!("{:.1}", m.avg_completion_time),
        ]);
        t.row([
            "airtime utilization".to_string(),
            format!(
                "{:.3}",
                results.iter().map(|r| r.utilization).sum::<f64>() / results.len() as f64
            ),
        ]);
        t.row([
            "reliable protocol".to_string(),
            if protocol.is_reliable() { "yes" } else { "no" }.to_string(),
        ]);
        t.render()
    }
}

/// Renders the all-protocol comparison.
pub fn render_compare(scenario: &Scenario, json: bool) -> String {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        let results = run_many(scenario, protocol);
        let m = mean_group_metrics(&results);
        rows.push((protocol, m));
    }
    if json {
        let v: Vec<_> = rows
            .iter()
            .map(|(p, m)| {
                serde_json::json!({
                    "protocol": p.name(),
                    "delivery_rate": m.delivery_rate,
                    "avg_contention_phases": m.avg_contention_phases,
                    "avg_completion_time": m.avg_completion_time,
                })
            })
            .collect();
        serde_json::to_string_pretty(&v).expect("json serializes")
    } else {
        let mut t = Table::new(["protocol", "delivery", "phases", "completion", "reliable"]);
        for (p, m) in rows {
            t.row([
                p.name().to_string(),
                format!("{:.3}", m.delivery_rate),
                format!("{:.2}", m.avg_contention_phases),
                format!("{:.1}", m.avg_completion_time),
                if p.is_reliable() { "yes" } else { "no" }.to_string(),
            ]);
        }
        t.render()
    }
}

/// The default scenario as a pretty JSON template.
pub fn config_template() -> String {
    serde_json::to_string_pretty(&Scenario::default()).expect("scenario serializes")
}

/// Usage text.
pub const USAGE: &str = "\
rmm — reliable 802.11 multicast MAC simulator (BMMM / LAMM, ICPP 2002)

usage:
  rmm run --protocol <802.11|tg|bsma|bmw|bmmm|lamm|leader> [options]
  rmm compare [options]
  rmm config              # print a scenario JSON template

options:
  --config <file.json>    load a Scenario (JSON); flags below override it
  --nodes N  --slots N  --rate X  --timeout N  --runs N
  --threshold X  --fer X  --json
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_protocol_names() {
        assert_eq!(parse_protocol("LAMM"), Some(ProtocolKind::Lamm));
        assert_eq!(parse_protocol("bmmm"), Some(ProtocolKind::Bmmm));
        assert_eq!(parse_protocol("802.11"), Some(ProtocolKind::Ieee80211));
        assert_eq!(parse_protocol("kk"), Some(ProtocolKind::LeaderBased));
        assert_eq!(parse_protocol("nope"), None);
    }

    #[test]
    fn parse_run_with_overrides() {
        let cmd = parse_args(args(
            "run --protocol lamm --nodes 50 --slots 2000 --runs 3 --json",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                protocol,
                scenario,
                json,
            } => {
                assert_eq!(protocol, ProtocolKind::Lamm);
                assert_eq!(scenario.n_nodes, 50);
                assert_eq!(scenario.sim_slots, 2000);
                assert_eq!(scenario.n_runs, 3);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_requires_protocol() {
        assert_eq!(
            parse_args(args("run --nodes 50")),
            Err(CliError::MissingProtocol)
        );
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(matches!(
            parse_args(args("run --protocol bmmm --frobnicate")),
            Err(CliError::Unknown(_))
        ));
    }

    #[test]
    fn compare_and_config_and_help() {
        assert!(matches!(
            parse_args(args("compare --runs 2")),
            Ok(Command::Compare { .. })
        ));
        assert_eq!(parse_args(args("config")), Ok(Command::Config));
        assert_eq!(parse_args(args("help")), Ok(Command::Help));
        assert_eq!(parse_args(Vec::new()), Ok(Command::Help));
    }

    #[test]
    fn config_template_roundtrips() {
        let template = config_template();
        let parsed: Scenario = serde_json::from_str(&template).unwrap();
        assert_eq!(parsed, Scenario::default());
    }

    #[test]
    fn config_file_loads_and_flags_override() {
        let dir = std::env::temp_dir().join("rmm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.json");
        let s = Scenario {
            n_nodes: 33,
            msg_rate: 1e-3,
            ..Scenario::default()
        };
        std::fs::write(&path, serde_json::to_string(&s).unwrap()).unwrap();
        let cmd = parse_args(args(&format!(
            "run --protocol bmw --config {} --nodes 44",
            path.display()
        )))
        .unwrap();
        match cmd {
            Command::Run { scenario, .. } => {
                assert_eq!(scenario.n_nodes, 44, "flag overrides config");
                assert_eq!(scenario.msg_rate, 1e-3, "config field survives");
            }
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_run_produces_metrics() {
        let scenario = Scenario {
            n_nodes: 30,
            sim_slots: 1_500,
            n_runs: 1,
            ..Scenario::default()
        };
        let text = render_run(ProtocolKind::Bmmm, &scenario, false);
        assert!(text.contains("delivery rate"));
        assert!(text.contains("BMMM"));
        let json = render_run(ProtocolKind::Bmmm, &scenario, true);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["protocol"], "BMMM");
        assert!(v["delivery_rate"]["mean"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn bad_config_reports_error() {
        let err = parse_args(args("run --protocol bmmm --config /nonexistent/x.json"));
        assert!(matches!(err, Err(CliError::BadConfig(_))));
    }
}
