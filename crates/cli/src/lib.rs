//! Command-line front end for the reliable multicast MAC simulator.
//!
//! ```text
//! rmm run     --protocol lamm [--config s.json] [--nodes N] [--slots N]
//!             [--rate X] [--timeout N] [--runs N] [--seed N] [--json]
//!             [--trace-out t.jsonl] [--metrics-out m.json]
//!             [--jobs N] [--manifest f.jsonl] [--resume]
//! rmm compare [--config s.json] [same overrides] [--metrics-out m.json]
//!             [--jobs N]
//! rmm trace   --protocol bmmm [--seed N] [overrides]  # JSONL to stdout
//! rmm chaos   [--iters N] [--budget-secs N] [--protocol name] [--seed N]
//!             [--canary] [--out repro.json] [--repro repro.json] [overrides]
//! rmm config  # emit a default scenario JSON template to stdout
//! ```
//!
//! Configs are the JSON serialization of
//! [`rmm::workload::Scenario`]; command-line flags override
//! individual fields after the file is loaded. `trace` (and `run` with
//! `--trace-out`/`--metrics-out`) executes one *traced* run at the given
//! seed and exports the protocol event log as JSON Lines plus a metrics
//! registry derived from it.

use rmm::fleet::{run_sweep, Fnv1a, JobId, SweepConfig};
use rmm::mac::ProtocolKind;
use rmm::sim::{FaultPlan, GilbertElliott};
use rmm::stats::{render_profile, render_registry, Summary, Table};
use rmm::workload::{
    collect_dwell, collect_metrics, mean_group_metrics, run_chaos, run_many_jobs, run_one,
    run_one_profiled_traced, run_one_traced, ChaosConfig, ChaosOutcome, ChaosRepro, ChurnPlan,
    RunResult, Scenario,
};
use std::time::Duration;

/// How a run sweep is executed: worker count and optional resumable
/// manifest (`--jobs`, `--manifest`, `--resume`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepOpts {
    /// Fleet worker threads (0 = one per available core). Results are
    /// identical at any value.
    pub jobs: usize,
    /// Manifest file recording completed runs for `--resume`.
    pub manifest: Option<String>,
    /// Reuse completed runs from the manifest instead of re-executing.
    pub resume: bool,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one protocol and report its metrics.
    Run {
        /// Protocol under test.
        protocol: ProtocolKind,
        /// Scenario after config + overrides.
        scenario: Scenario,
        /// Base seed for the run sweep (and the traced export run).
        seed: u64,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
        /// Write a traced run's event log (JSON Lines) to this file.
        trace_out: Option<String>,
        /// Write a traced run's metrics registry (JSON) to this file.
        metrics_out: Option<String>,
        /// Write a profiled run's attribution report (JSON) to this file.
        profile_out: Option<String>,
        /// Parallelism and resume options.
        sweep: SweepOpts,
    },
    /// Run every protocol on the same scenario and print the comparison.
    Compare {
        /// Scenario after config + overrides.
        scenario: Scenario,
        /// Base seed for the run sweeps.
        seed: u64,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
        /// Write per-protocol traced-run metrics (JSON) to this file.
        metrics_out: Option<String>,
        /// Fleet worker threads (0 = one per available core).
        jobs: usize,
    },
    /// Execute one traced run and export its event log.
    Trace {
        /// Protocol under test.
        protocol: ProtocolKind,
        /// Scenario after config + overrides.
        scenario: Scenario,
        /// Seed of the traced run.
        seed: u64,
        /// Event log destination (stdout when absent).
        trace_out: Option<String>,
        /// Metrics registry destination (not written when absent).
        metrics_out: Option<String>,
    },
    /// Profile one run: engine phase timers, airtime ledger, FSM dwell.
    Prof {
        /// Protocol under test.
        protocol: ProtocolKind,
        /// Scenario after config + overrides.
        scenario: Scenario,
        /// Seed of the profiled run.
        seed: u64,
        /// Emit machine-readable JSON instead of tables.
        json: bool,
        /// Write the attribution report (JSON) to this file.
        profile_out: Option<String>,
        /// Write a Prometheus text-exposition snapshot to this file.
        prom_out: Option<String>,
    },
    /// Run a chaos campaign: randomized fault + churn + burst schedules
    /// checked against the harness invariants, with automatic shrinking.
    Chaos {
        /// Base scenario after config + overrides (its fault/churn/burst
        /// fields are overwritten per iteration).
        scenario: Scenario,
        /// Restrict the campaign to one protocol (all eight otherwise).
        protocol: Option<ProtocolKind>,
        /// Maximum schedules to try.
        iters: u64,
        /// Optional wall-clock budget in seconds.
        budget_secs: Option<u64>,
        /// Master seed; iteration `i` uses `seed + i`.
        seed: u64,
        /// Emit the outcome as JSON instead of a table.
        json: bool,
        /// Write the shrunk repro (JSON) here when a failure is found.
        out: Option<String>,
        /// Replay a stored repro file instead of running a campaign.
        repro: Option<String>,
    },
    /// Start the long-lived simulation daemon.
    Serve {
        /// Bind address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Engine worker threads (0 = one per core; an *explicit*
        /// `--jobs 0` is rejected at parse time).
        jobs: usize,
        /// Concurrent-connection cap.
        max_conns: usize,
        /// Bounded engine-queue depth (TCP backpressure threshold).
        queue_cap: usize,
        /// On-disk result cache (manifest format); memory-only if absent.
        cache: Option<String>,
    },
    /// Talk to a running daemon.
    Submit {
        /// Daemon address (`host:port`).
        addr: String,
        /// What to submit.
        action: SubmitAction,
    },
    /// Print the default scenario as a JSON template.
    Config,
    /// Print usage.
    Help,
}

/// What `rmm submit` does once connected.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitAction {
    /// Submit one cell and print the response lines verbatim (or, with
    /// `local`, compute the identical lines in-process — the byte-diff
    /// oracle CI uses against a running server).
    Run {
        /// Protocol under test.
        protocol: ProtocolKind,
        /// Scenario after config + overrides.
        scenario: Scenario,
        /// Seed of the cell.
        seed: u64,
        /// Ask for the streamed event trace.
        trace: bool,
        /// Ask for the phase-timer profile.
        profile: bool,
        /// Compute locally instead of contacting the daemon.
        local: bool,
    },
    /// Drive a concurrent soak campaign and byte-verify every response
    /// against the serial in-process oracle.
    Soak {
        /// Total requests (spread over all protocols round-robin).
        requests: usize,
        /// Concurrent pipelined connections.
        conns: usize,
        /// Scenario every request uses (seeds differ per request).
        scenario: Scenario,
        /// First seed; request `i` uses `seed + i`.
        seed: u64,
        /// Request a trace on every n-th request (0 = never).
        trace_every: usize,
        /// Require a fully-cached sweep with zero engine runs.
        expect_cached: bool,
    },
    /// Print the daemon's Prometheus metrics snapshot.
    Metrics,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// Errors from [`parse_args`].
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Unknown subcommand or flag.
    Unknown(String),
    /// A flag was missing its value or the value did not parse.
    BadValue(String),
    /// The config file could not be read or parsed.
    BadConfig(String),
    /// `run`, `trace`, and `prof` require `--protocol`.
    MissingProtocol,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Unknown(s) => write!(f, "unknown argument: {s}"),
            CliError::BadValue(s) => write!(f, "bad or missing value for {s}"),
            CliError::BadConfig(s) => write!(f, "config error: {s}"),
            CliError::MissingProtocol => {
                write!(
                    f,
                    "`run`, `trace`, `prof`, and `submit run` require --protocol <name>"
                )
            }
        }
    }
}

/// Parses a protocol name (case-insensitive; accepts the display names
/// and a few aliases). Delegates to [`ProtocolKind::parse`] so the CLI,
/// the serve daemon, and library callers accept exactly the same names.
pub fn parse_protocol(name: &str) -> Option<ProtocolKind> {
    ProtocolKind::parse(name)
}

/// Parses an argument vector (without the binary name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut args = args.into_iter();
    let sub = match args.next() {
        Some(s) => s,
        None => return Ok(Command::Help),
    };
    match sub.as_str() {
        "config" => Ok(Command::Config),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" | "compare" | "trace" | "prof" | "chaos" => {
            let mut protocol = None;
            let mut scenario = Scenario::default();
            let mut seed = 0u64;
            let mut json = false;
            let mut trace_out = None;
            let mut metrics_out = None;
            let mut profile_out = None;
            let mut prom_out = None;
            let mut sweep = SweepOpts::default();
            let mut iters = 64u64;
            let mut budget_secs = None;
            let mut out = None;
            let mut repro = None;
            let rest: Vec<String> = args.collect();
            let mut i = 0;
            let value = |rest: &[String], i: usize, flag: &str| -> Result<String, CliError> {
                rest.get(i + 1)
                    .cloned()
                    .ok_or_else(|| CliError::BadValue(flag.into()))
            };
            while i < rest.len() {
                match rest[i].as_str() {
                    "--protocol" | "-p" => {
                        let v = value(&rest, i, "--protocol")?;
                        protocol =
                            Some(parse_protocol(&v).ok_or_else(|| CliError::BadValue(v.clone()))?);
                        i += 2;
                    }
                    "--config" => {
                        let path = value(&rest, i, "--config")?;
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?;
                        scenario = serde_json::from_str(&text)
                            .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?;
                        i += 2;
                    }
                    "--nodes" => {
                        scenario.n_nodes = parse_num(&rest, i, "--nodes")?;
                        i += 2;
                    }
                    "--slots" => {
                        scenario.sim_slots = parse_num(&rest, i, "--slots")?;
                        i += 2;
                    }
                    "--rate" => {
                        scenario.msg_rate = parse_num(&rest, i, "--rate")?;
                        i += 2;
                    }
                    "--timeout" => {
                        scenario.timing.timeout = parse_num(&rest, i, "--timeout")?;
                        i += 2;
                    }
                    "--runs" => {
                        scenario.n_runs = parse_num(&rest, i, "--runs")?;
                        i += 2;
                    }
                    "--threshold" => {
                        scenario.reliability_threshold = parse_num(&rest, i, "--threshold")?;
                        i += 2;
                    }
                    "--fer" => {
                        scenario.fer = parse_num(&rest, i, "--fer")?;
                        i += 2;
                    }
                    "--faults" => {
                        let v = value(&rest, i, "--faults")?;
                        scenario.faults = FaultPlan::parse(&v)
                            .map_err(|e| CliError::BadValue(format!("--faults: {e}")))?;
                        i += 2;
                    }
                    "--churn" => {
                        let v = value(&rest, i, "--churn")?;
                        scenario.churn = ChurnPlan::parse(&v)
                            .map_err(|e| CliError::BadValue(format!("--churn: {e}")))?;
                        i += 2;
                    }
                    "--burst-fer" => {
                        let v = value(&rest, i, "--burst-fer")?;
                        scenario.burst = Some(
                            parse_burst(&v)
                                .ok_or_else(|| CliError::BadValue(format!("--burst-fer {v}")))?,
                        );
                        i += 2;
                    }
                    "--stall-window" => {
                        scenario.stall_window = Some(parse_num(&rest, i, "--stall-window")?);
                        i += 2;
                    }
                    "--seed" => {
                        seed = parse_num(&rest, i, "--seed")?;
                        i += 2;
                    }
                    "--trace-out" if sub == "run" || sub == "trace" => {
                        trace_out = Some(value(&rest, i, "--trace-out")?);
                        i += 2;
                    }
                    "--metrics-out" if sub != "prof" => {
                        metrics_out = Some(value(&rest, i, "--metrics-out")?);
                        i += 2;
                    }
                    "--profile-out" if sub == "run" || sub == "prof" => {
                        profile_out = Some(value(&rest, i, "--profile-out")?);
                        i += 2;
                    }
                    "--prom-out" if sub == "prof" => {
                        prom_out = Some(value(&rest, i, "--prom-out")?);
                        i += 2;
                    }
                    "--json" if sub != "trace" => {
                        json = true;
                        i += 1;
                    }
                    "--jobs" if sub == "run" || sub == "compare" => {
                        sweep.jobs = parse_positive(&rest, i, "--jobs")?;
                        i += 2;
                    }
                    "--manifest" if sub == "run" => {
                        sweep.manifest = Some(value(&rest, i, "--manifest")?);
                        i += 2;
                    }
                    "--resume" if sub == "run" => {
                        sweep.resume = true;
                        i += 1;
                    }
                    "--iters" if sub == "chaos" => {
                        iters = parse_num(&rest, i, "--iters")?;
                        i += 2;
                    }
                    "--budget-secs" if sub == "chaos" => {
                        budget_secs = Some(parse_num(&rest, i, "--budget-secs")?);
                        i += 2;
                    }
                    "--out" if sub == "chaos" => {
                        out = Some(value(&rest, i, "--out")?);
                        i += 2;
                    }
                    "--repro" if sub == "chaos" => {
                        repro = Some(value(&rest, i, "--repro")?);
                        i += 2;
                    }
                    "--canary" if sub == "chaos" => {
                        // A preset, like --config: later flags override it.
                        scenario = canary_scenario();
                        protocol = protocol.or(Some(ProtocolKind::Bmw));
                        i += 1;
                    }
                    other => return Err(CliError::Unknown(other.to_string())),
                }
            }
            if sweep.resume && sweep.manifest.is_none() {
                return Err(CliError::BadValue(
                    "--resume (requires --manifest <file>)".into(),
                ));
            }
            // The engine asserts plan validity; reject bad plans (from
            // --faults/--churn or a config file) with a friendly error
            // instead of panicking mid-run.
            scenario
                .faults
                .validate(scenario.n_nodes)
                .map_err(|e| CliError::BadValue(format!("--faults: {e}")))?;
            scenario
                .churn
                .validate(scenario.n_nodes)
                .map_err(|e| CliError::BadValue(format!("--churn: {e}")))?;
            match sub.as_str() {
                "run" => Ok(Command::Run {
                    protocol: protocol.ok_or(CliError::MissingProtocol)?,
                    scenario,
                    seed,
                    json,
                    trace_out,
                    metrics_out,
                    profile_out,
                    sweep,
                }),
                "prof" => Ok(Command::Prof {
                    protocol: protocol.ok_or(CliError::MissingProtocol)?,
                    scenario,
                    seed,
                    json,
                    profile_out,
                    prom_out,
                }),
                "trace" => Ok(Command::Trace {
                    protocol: protocol.ok_or(CliError::MissingProtocol)?,
                    scenario,
                    seed,
                    trace_out,
                    metrics_out,
                }),
                "chaos" => Ok(Command::Chaos {
                    scenario,
                    protocol,
                    iters,
                    budget_secs,
                    seed,
                    json,
                    out,
                    repro,
                }),
                _ => Ok(Command::Compare {
                    scenario,
                    seed,
                    json,
                    metrics_out,
                    jobs: sweep.jobs,
                }),
            }
        }
        "serve" => {
            let rest: Vec<String> = args.collect();
            let mut addr = "127.0.0.1:4860".to_string();
            let mut jobs = 0usize;
            let mut max_conns = 64usize;
            let mut queue_cap = 1024usize;
            let mut cache = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--addr" => {
                        addr = flag_value(&rest, i, "--addr")?;
                        i += 2;
                    }
                    "--jobs" => {
                        jobs = parse_positive(&rest, i, "--jobs")?;
                        i += 2;
                    }
                    "--max-conns" => {
                        max_conns = parse_positive(&rest, i, "--max-conns")?;
                        i += 2;
                    }
                    "--queue-cap" => {
                        queue_cap = parse_positive(&rest, i, "--queue-cap")?;
                        i += 2;
                    }
                    "--cache" => {
                        cache = Some(flag_value(&rest, i, "--cache")?);
                        i += 2;
                    }
                    other => return Err(CliError::Unknown(other.to_string())),
                }
            }
            Ok(Command::Serve {
                addr,
                jobs,
                max_conns,
                queue_cap,
                cache,
            })
        }
        "submit" => {
            let mut args = args.peekable();
            let action = match args.next().as_deref() {
                Some("run") => "run",
                Some("soak") => "soak",
                Some("metrics") => "metrics",
                Some("shutdown") => "shutdown",
                Some(other) => return Err(CliError::Unknown(format!("submit {other}"))),
                None => {
                    return Err(CliError::BadValue(
                        "submit (needs an action: run, soak, metrics, or shutdown)".into(),
                    ))
                }
            };
            let rest: Vec<String> = args.collect();
            let mut addr = "127.0.0.1:4860".to_string();
            let mut protocol = None;
            let mut scenario = Scenario::default();
            let mut seed = 0u64;
            let mut trace = false;
            let mut profile = false;
            let mut local = false;
            let mut requests = 1000usize;
            let mut conns = 8usize;
            let mut trace_every = 0usize;
            let mut expect_cached = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--addr" => {
                        addr = flag_value(&rest, i, "--addr")?;
                        i += 2;
                    }
                    "--protocol" | "-p" if action == "run" => {
                        let v = flag_value(&rest, i, "--protocol")?;
                        protocol =
                            Some(parse_protocol(&v).ok_or_else(|| CliError::BadValue(v.clone()))?);
                        i += 2;
                    }
                    "--config" if action == "run" || action == "soak" => {
                        let path = flag_value(&rest, i, "--config")?;
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?;
                        scenario = serde_json::from_str(&text)
                            .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?;
                        i += 2;
                    }
                    "--nodes" if action == "run" || action == "soak" => {
                        scenario.n_nodes = parse_num(&rest, i, "--nodes")?;
                        i += 2;
                    }
                    "--slots" if action == "run" || action == "soak" => {
                        scenario.sim_slots = parse_num(&rest, i, "--slots")?;
                        i += 2;
                    }
                    "--rate" if action == "run" || action == "soak" => {
                        scenario.msg_rate = parse_num(&rest, i, "--rate")?;
                        i += 2;
                    }
                    "--runs" if action == "run" || action == "soak" => {
                        scenario.n_runs = parse_num(&rest, i, "--runs")?;
                        i += 2;
                    }
                    "--seed" if action == "run" || action == "soak" => {
                        seed = parse_num(&rest, i, "--seed")?;
                        i += 2;
                    }
                    "--trace" if action == "run" => {
                        trace = true;
                        i += 1;
                    }
                    "--profile" if action == "run" => {
                        profile = true;
                        i += 1;
                    }
                    "--local" if action == "run" => {
                        local = true;
                        i += 1;
                    }
                    "--requests" if action == "soak" => {
                        requests = parse_positive(&rest, i, "--requests")?;
                        i += 2;
                    }
                    "--conns" if action == "soak" => {
                        conns = parse_positive(&rest, i, "--conns")?;
                        i += 2;
                    }
                    "--trace-every" if action == "soak" => {
                        trace_every = parse_num(&rest, i, "--trace-every")?;
                        i += 2;
                    }
                    "--expect-cached" if action == "soak" => {
                        expect_cached = true;
                        i += 1;
                    }
                    other => return Err(CliError::Unknown(other.to_string())),
                }
            }
            scenario
                .faults
                .validate(scenario.n_nodes)
                .map_err(|e| CliError::BadValue(format!("--config faults: {e}")))?;
            scenario
                .churn
                .validate(scenario.n_nodes)
                .map_err(|e| CliError::BadValue(format!("--config churn: {e}")))?;
            let action = match action {
                "run" => SubmitAction::Run {
                    protocol: protocol.ok_or(CliError::MissingProtocol)?,
                    scenario,
                    seed,
                    trace,
                    profile,
                    local,
                },
                "soak" => SubmitAction::Soak {
                    requests,
                    conns,
                    scenario,
                    seed,
                    trace_every,
                    expect_cached,
                },
                "metrics" => SubmitAction::Metrics,
                _ => SubmitAction::Shutdown,
            };
            Ok(Command::Submit { addr, action })
        }
        other => Err(CliError::Unknown(other.to_string())),
    }
}

fn flag_value(rest: &[String], i: usize, flag: &str) -> Result<String, CliError> {
    rest.get(i + 1)
        .cloned()
        .ok_or_else(|| CliError::BadValue(flag.into()))
}

fn parse_num<T: std::str::FromStr>(rest: &[String], i: usize, flag: &str) -> Result<T, CliError> {
    rest.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CliError::BadValue(flag.into()))
}

/// [`parse_num`] for counts where zero is meaningless: an explicit `0`
/// gets a friendly rejection instead of surprising behaviour (`--jobs 0`
/// would mean "no workers", `--max-conns 0` a server nobody can reach).
/// Omitting the flag keeps the documented default.
fn parse_positive(rest: &[String], i: usize, flag: &str) -> Result<usize, CliError> {
    let n: usize = parse_num(rest, i, flag)?;
    if n == 0 {
        return Err(CliError::BadValue(format!(
            "{flag} (must be at least 1; omit the flag for the default)"
        )));
    }
    Ok(n)
}

/// Parses a `--burst-fer p,r` value into a Gilbert–Elliott model.
fn parse_burst(v: &str) -> Option<GilbertElliott> {
    let (p, r) = v.split_once(',')?;
    let p: f64 = p.trim().parse().ok()?;
    let r: f64 = r.trim().parse().ok()?;
    ((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&r)).then_some(GilbertElliott { p, r })
}

/// Executes the `run` sweep: `scenario.n_runs` seeds from `seed`, on
/// `sweep.jobs` workers, optionally recorded in (and resumed from) a
/// manifest. Results come back seed-ordered — identical at any worker
/// count. Errors on a stale or corrupt manifest.
fn sweep_runs(
    protocol: ProtocolKind,
    scenario: &Scenario,
    seed: u64,
    sweep: &SweepOpts,
) -> Result<Vec<RunResult>, String> {
    let Some(path) = &sweep.manifest else {
        return Ok(run_many_jobs(scenario, protocol, seed, sweep.jobs));
    };
    let ids: Vec<(JobId, ())> = (0..scenario.n_runs as u64)
        .map(|s| (JobId::new("cli-run", protocol.name(), seed + s), ()))
        .collect();
    let mut h = Fnv1a::new();
    h.write_str(protocol.name());
    h.write_u64(seed);
    h.write_str(&serde_json::to_string(scenario).expect("scenario serializes"));
    let config = SweepConfig {
        name: "cli-run".to_string(),
        workers: sweep.jobs,
        resume: sweep.resume,
        manifest_path: Some(path.into()),
        options_hash: h.finish(),
        schema: rmm::workload::scenario_schema_hash(),
        quiet: true,
        work_per_job: scenario.sim_slots,
    };
    match run_sweep(&config, &ids, |id, _| run_one(scenario, protocol, id.seed)) {
        Ok(out) => {
            if out.reused > 0 {
                eprintln!(
                    "[reused {} completed runs from {path}, ran {}]",
                    out.reused, out.executed
                );
            }
            Ok(out.results)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Renders one protocol's results. Errors if the sweep manifest cannot
/// be used (stale or corrupt).
pub fn render_run(
    protocol: ProtocolKind,
    scenario: &Scenario,
    seed: u64,
    json: bool,
    sweep: &SweepOpts,
) -> Result<String, String> {
    let results = sweep_runs(protocol, scenario, seed, sweep)?;
    let m = mean_group_metrics(&results);
    let delivery: Vec<f64> = results
        .iter()
        .map(|r| r.group_metrics.delivery_rate)
        .collect();
    let ci = Summary::of(&delivery);
    let stalls: usize = results.iter().map(|r| r.stalls.len()).sum();
    // Mean per-epoch delivery across the sweep (epoch boundaries are a
    // property of the churn plan, so every run has the same table shape).
    let no_epochs = Vec::new();
    let epochs: Vec<(String, f64)> = results
        .first()
        .map_or(&no_epochs, |first| &first.churn_epochs)
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mean = results
                .iter()
                .map(|r| r.churn_epochs[i].group_metrics.delivery_rate)
                .sum::<f64>()
                / results.len() as f64;
            let until = e.until.map_or_else(|| "end".to_string(), |u| u.to_string());
            (format!("epoch {} [{}..{until})", e.epoch, e.from), mean)
        })
        .collect();
    if json {
        Ok(serde_json::json!({
            "protocol": protocol.name(),
            "runs": results.len(),
            "mean_degree": results.iter().map(|r| r.mean_degree).sum::<f64>() / results.len() as f64,
            "delivery_rate": { "mean": ci.mean, "ci95": ci.ci95 },
            "avg_contention_phases": m.avg_contention_phases,
            "avg_completion_time": m.avg_completion_time,
            "avg_delivered_frac": m.avg_delivered_frac,
            "avg_reachable_frac": m.avg_reachable_frac,
            "stalls": stalls,
            "utilization": results.iter().map(|r| r.utilization).sum::<f64>() / results.len() as f64,
            "reliable": protocol.is_reliable(),
            "churn_epochs": epochs
                .iter()
                .map(|(label, mean)| serde_json::json!({ "epoch": label, "delivery_rate": mean }))
                .collect::<Vec<_>>(),
        })
        .to_string())
    } else {
        let mut t = Table::new(["metric", "value"]);
        t.row(["protocol".to_string(), protocol.name().to_string()]);
        t.row(["runs".to_string(), results.len().to_string()]);
        t.row(["delivery rate".to_string(), ci.display()]);
        t.row([
            "contention phases/msg".to_string(),
            format!("{:.2}", m.avg_contention_phases),
        ]);
        t.row([
            "completion time (slots)".to_string(),
            format!("{:.1}", m.avg_completion_time),
        ]);
        t.row([
            "airtime utilization".to_string(),
            format!(
                "{:.3}",
                results.iter().map(|r| r.utilization).sum::<f64>() / results.len() as f64
            ),
        ]);
        if !scenario.faults.is_empty() {
            t.row([
                "delivered frac (reachable)".to_string(),
                format!("{:.3}", m.avg_reachable_frac),
            ]);
        }
        if scenario.stall_window.is_some() {
            t.row(["watchdog stalls".to_string(), stalls.to_string()]);
        }
        for (label, mean) in &epochs {
            t.row([format!("delivery {label}"), format!("{mean:.3}")]);
        }
        t.row([
            "reliable protocol".to_string(),
            if protocol.is_reliable() { "yes" } else { "no" }.to_string(),
        ]);
        Ok(t.render())
    }
}

/// Renders the all-protocol comparison on `jobs` fleet workers
/// (0 = one per core; output identical at any value).
pub fn render_compare(scenario: &Scenario, seed: u64, json: bool, jobs: usize) -> String {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        let results = run_many_jobs(scenario, protocol, seed, jobs);
        let m = mean_group_metrics(&results);
        rows.push((protocol, m));
    }
    if json {
        let v: Vec<_> = rows
            .iter()
            .map(|(p, m)| {
                serde_json::json!({
                    "protocol": p.name(),
                    "delivery_rate": m.delivery_rate,
                    "avg_contention_phases": m.avg_contention_phases,
                    "avg_completion_time": m.avg_completion_time,
                })
            })
            .collect();
        serde_json::to_string_pretty(&v).expect("json serializes")
    } else {
        let mut t = Table::new(["protocol", "delivery", "phases", "completion", "reliable"]);
        for (p, m) in rows {
            t.row([
                p.name().to_string(),
                format!("{:.3}", m.delivery_rate),
                format!("{:.2}", m.avg_contention_phases),
                format!("{:.1}", m.avg_completion_time),
                if p.is_reliable() { "yes" } else { "no" }.to_string(),
            ]);
        }
        t.render()
    }
}

/// Artifacts from one traced run, ready to write out.
#[derive(Debug, Clone)]
pub struct TraceExport {
    /// The event log, one JSON object per line.
    pub jsonl: String,
    /// Manifest + metrics registry derived from the trace, pretty JSON.
    pub metrics_json: String,
    /// One-line human summary for stderr.
    pub summary: String,
}

/// Executes a single traced run and renders its export artifacts.
pub fn export_trace(protocol: ProtocolKind, scenario: &Scenario, seed: u64) -> TraceExport {
    let (result, trace) = run_one_traced(scenario, protocol, seed);
    let metrics = collect_metrics(trace.events(), &result.messages);
    let mut doc = serde_json::Map::new();
    doc.insert("manifest", serde_json::to_value(&result.manifest));
    doc.insert("metrics", serde_json::to_value(&metrics));
    let summary = format!(
        "{} seed {}: {} events, {} messages, {} batches in {} slots ({} us)",
        protocol.name(),
        seed,
        trace.events().len(),
        result.messages.len(),
        metrics.counter("batches"),
        scenario.sim_slots,
        result.manifest.wall_clock.total_us(),
    );
    TraceExport {
        jsonl: trace.to_jsonl(),
        metrics_json: serde_json::Value::Object(doc).pretty(),
        summary,
    }
}

/// Artifacts from one profiled run, ready to write out.
#[derive(Debug, Clone)]
pub struct ProfExport {
    /// Hot-path attribution report (phase timers, airtime ledger, FSM
    /// dwell totals), pretty JSON.
    pub profile_json: String,
    /// The same data as a Prometheus text-exposition snapshot.
    pub prom_text: String,
    /// Human-readable tables: phase attribution, airtime, dwell.
    pub human: String,
    /// One-line summary for stderr.
    pub summary: String,
}

/// Executes one profiled + traced run and renders its attribution
/// artifacts.
///
/// The run is traced so the airtime ledger can be joined with dwell
/// times derived from the event log; trace-recording cost is therefore
/// included in the phase attribution (dominated by the Resolve phase).
pub fn export_profile(protocol: ProtocolKind, scenario: &Scenario, seed: u64) -> ProfExport {
    let (result, report, trace) = run_one_profiled_traced(scenario, protocol, seed);
    let dwell = collect_dwell(trace.events(), scenario.n_nodes);
    let mut registry = collect_metrics(trace.events(), &result.messages);
    registry.merge(&dwell.to_registry());
    let air = result.airtime;

    let mut doc = serde_json::Map::new();
    doc.insert("protocol", serde_json::to_value(&protocol.name()));
    doc.insert("seed", serde_json::to_value(&seed));
    doc.insert("slots", serde_json::to_value(&scenario.sim_slots));
    doc.insert("profile", serde_json::to_value(&report));
    doc.insert("airtime", serde_json::to_value(&air));
    doc.insert("dwell", serde_json::to_value(&dwell.network_totals()));
    let profile_json = serde_json::Value::Object(doc).pretty();

    let mut prom_text = render_profile(&report, "rmm_engine");
    prom_text.push_str(&render_registry(&registry, "rmm"));

    let share = |ns: u64| format!("{:.1}%", 100.0 * ns as f64 / report.total_ns.max(1) as f64);
    let mut phases = Table::new(["phase", "ns", "calls", "share"]);
    for p in &report.phases {
        phases.row([
            p.name.clone(),
            p.ns.to_string(),
            p.calls.to_string(),
            share(p.ns),
        ]);
    }
    let frac = |slots: u64| format!("{:.3}", slots as f64 / air.total_slots.max(1) as f64);
    let mut airtime = Table::new(["airtime", "slots", "fraction"]);
    airtime.row([
        "idle".to_string(),
        air.idle_slots.to_string(),
        frac(air.idle_slots),
    ]);
    airtime.row([
        "data (success)".to_string(),
        air.data_slots.to_string(),
        frac(air.data_slots),
    ]);
    airtime.row([
        "control".to_string(),
        air.control_slots.to_string(),
        frac(air.control_slots),
    ]);
    airtime.row([
        "collision".to_string(),
        air.collision_slots.to_string(),
        frac(air.collision_slots),
    ]);
    airtime.row([
        "total".to_string(),
        air.total_slots.to_string(),
        "1.000".to_string(),
    ]);
    let totals = dwell.network_totals();
    let mut dw = Table::new(["dwell (network)", "slots"]);
    dw.row([
        "contention".to_string(),
        totals.contention_slots.to_string(),
    ]);
    dw.row(["batch service".to_string(), totals.batch_slots.to_string()]);
    dw.row(["ack wait".to_string(), totals.ack_wait_slots.to_string()]);
    dw.row([
        "backoff drawn".to_string(),
        totals.backoff_slots.to_string(),
    ]);
    let human = format!("{}\n{}\n{}", phases.render(), airtime.render(), dw.render());

    let hottest = report.phases.iter().max_by_key(|p| p.ns);
    let summary = format!(
        "{} seed {}: {} slots profiled in {} us; hottest phase {} ({}); \
         airtime {} data / {} control / {} collision",
        protocol.name(),
        seed,
        scenario.sim_slots,
        report.total_ns / 1_000,
        hottest.map_or("-", |p| p.name.as_str()),
        hottest.map_or_else(|| "0.0%".to_string(), |p| share(p.ns)),
        frac(air.data_slots),
        frac(air.control_slots),
        frac(air.collision_slots),
    );
    ProfExport {
        profile_json,
        prom_text,
        human,
        summary,
    }
}

/// Traced-run metrics for every protocol on one scenario, as a pretty
/// JSON array of `{protocol, metrics}` objects (for `compare
/// --metrics-out`).
pub fn compare_metrics_json(scenario: &Scenario, seed: u64) -> String {
    let rows: Vec<serde_json::Value> = ProtocolKind::ALL
        .into_iter()
        .map(|p| {
            let (result, trace) = run_one_traced(scenario, p, seed);
            let metrics = collect_metrics(trace.events(), &result.messages);
            serde_json::json!({
                "protocol": p.name(),
                "metrics": serde_json::to_value(&metrics),
            })
        })
        .collect();
    serde_json::Value::Array(rows).pretty()
}

/// The deliberately fragile "canary" configuration: the service timeout
/// and both retry budgets are effectively unbounded and the contention
/// window may grow six orders of magnitude, so a schedule that kills a
/// receiver drives its sender into ever-longer silent backoff until the
/// liveness watchdog trips. `rmm chaos --canary` must find that stall
/// and shrink it — it is the harness's own end-to-end test.
pub fn canary_scenario() -> Scenario {
    let mut s = Scenario {
        n_nodes: 12,
        sim_slots: 12_000,
        n_runs: 1,
        msg_rate: 2e-3,
        stall_window: Some(2_000),
        ..Scenario::default()
    };
    s.timing.timeout = 1_000_000;
    s.timing.retry_limit = u32::MAX;
    s.timing.dest_retry_limit = u32::MAX;
    s.timing.cw_max = 1 << 20;
    s
}

/// Artifacts from one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The campaign outcome (shrunk repro included when a run failed).
    pub outcome: ChaosOutcome,
    /// Rendered table or JSON.
    pub rendered: String,
}

/// Runs a chaos campaign per the parsed `chaos` flags and renders the
/// outcome.
pub fn run_chaos_campaign(
    scenario: &Scenario,
    protocol: Option<ProtocolKind>,
    iters: u64,
    budget_secs: Option<u64>,
    seed: u64,
    json: bool,
) -> ChaosReport {
    let cfg = ChaosConfig {
        base: scenario.clone(),
        protocols: protocol.map_or_else(|| ProtocolKind::ALL.to_vec(), |p| vec![p]),
        iters,
        seed,
        budget: budget_secs.map(Duration::from_secs),
        max_shrink_checks: 128,
    };
    let outcome = run_chaos(&cfg);
    let rendered = if json {
        serde_json::to_string_pretty(&outcome).expect("outcome serializes")
    } else {
        render_chaos(&outcome)
    };
    ChaosReport { outcome, rendered }
}

fn render_chaos(outcome: &ChaosOutcome) -> String {
    let Some(repro) = &outcome.failure else {
        return format!(
            "chaos: {} schedules checked, every invariant held\n",
            outcome.iterations
        );
    };
    let mut t = Table::new(["field", "value"]);
    t.row(["protocol".to_string(), repro.protocol.name().to_string()]);
    t.row(["seed".to_string(), repro.seed.to_string()]);
    t.row(["iterations".to_string(), outcome.iterations.to_string()]);
    t.row(["violations".to_string(), format!("{:?}", repro.violations)]);
    t.row([
        "schedule events".to_string(),
        format!(
            "{} -> {} ({} shrink checks)",
            outcome.events_before, outcome.events_after, outcome.shrink_checks
        ),
    ]);
    t.row(["faults".to_string(), repro.scenario.faults.spec()]);
    t.row(["churn".to_string(), repro.scenario.churn.spec()]);
    t.row([
        "burst".to_string(),
        repro
            .scenario
            .burst
            .map_or_else(|| "-".to_string(), |b| format!("{},{}", b.p, b.r)),
    ]);
    let mut s = t.render();
    s.push('\n');
    for d in &repro.detail {
        s.push_str("  ");
        s.push_str(d);
        s.push('\n');
    }
    s
}

/// Pretty JSON for writing a repro to disk.
pub fn repro_json(repro: &ChaosRepro) -> String {
    serde_json::to_string_pretty(repro).expect("repro serializes")
}

/// Replays a stored [`ChaosRepro`] file; `Ok` when the recorded
/// violation kinds reproduce exactly.
pub fn replay_repro(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let repro: ChaosRepro = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let found = repro.replay()?;
    let mut s = format!(
        "{path}: reproduced {:?} ({} violations)\n",
        repro.violations,
        found.len()
    );
    for v in &found {
        s.push_str("  ");
        s.push_str(&v.detail);
        s.push('\n');
    }
    Ok(s)
}

/// The default scenario as a pretty JSON template.
pub fn config_template() -> String {
    serde_json::to_string_pretty(&Scenario::default()).expect("scenario serializes")
}

/// Usage text.
pub const USAGE: &str = "\
rmm — reliable 802.11 multicast MAC simulator (BMMM / LAMM, ICPP 2002)

usage:
  rmm run --protocol <802.11|tg|bsma|bmw|bmmm|lamm|leader|uncoord> [options]
  rmm compare [options]
  rmm trace --protocol <name> [options]   # one traced run, JSONL events
  rmm prof --protocol <name> [options]    # one profiled run: phase timers,
                                          # airtime ledger, FSM dwell
  rmm chaos [options]     # randomized fault/churn/burst schedules checked
                          # against invariants, failures shrunk to a repro
  rmm serve [--addr H:P] [--jobs N] [--max-conns N] [--queue-cap N]
            [--cache f.jsonl]   # long-lived daemon: JSONL requests over TCP,
                                # streamed traces, content-addressed cache
  rmm submit run --protocol <name> [--seed N] [--trace] [--profile]
             [--local] [--addr H:P] [scenario overrides]
  rmm submit soak [--requests N] [--conns N] [--trace-every N]
             [--expect-cached] [--addr H:P] [overrides]
                          # concurrent campaign, byte-diffed vs the serial
                          # oracle; --expect-cached also requires zero
                          # engine runs (checked via the metrics counters)
  rmm submit metrics|shutdown [--addr H:P]
  rmm config              # print a scenario JSON template

options:
  --config <file.json>    load a Scenario (JSON); flags below override it
  --nodes N  --slots N  --rate X  --timeout N  --runs N
  --threshold X  --fer X  --seed N  --json
  --faults <spec>         inject node faults, e.g. crash:5@1000;deaf:3@200..800;reboot:2@100..600
  --churn <spec>          group membership churn, e.g. leave:3@500;join:3@900
  --burst-fer p,r         Gilbert-Elliott burst-error channel (G->B prob p, B->G prob r)
  --stall-window N        liveness watchdog: report senders with no tx for N slots
  --trace-out <file>      write the traced run's events as JSON Lines
                          (run/trace; trace prints to stdout by default)
  --metrics-out <file>    write trace-derived counters/histograms as JSON
  --profile-out <file>    write a profiled run's attribution report as JSON
                          (run/prof): engine phase timers, airtime ledger,
                          per-station FSM dwell totals
  --prom-out <file>       write a Prometheus text-exposition snapshot (prof)
  --jobs N                worker threads for the run sweep (run/compare;
                          0 = one per core; results identical at any N)
  --manifest <file>       record completed runs for later --resume (run)
  --resume                reuse completed runs from --manifest (run)
  --iters N               chaos: max schedules to try (default 64)
  --budget-secs N         chaos: wall-clock budget; stops early when spent
  --canary                chaos: unbounded-retry preset that must stall —
                          the harness's own end-to-end check
  --out <file>            chaos: write the shrunk repro JSON when a run fails
  --repro <file>          chaos: replay a stored repro instead of campaigning
  (chaos exits 1 when a violation is found or a replay drifts)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_protocol_names() {
        assert_eq!(parse_protocol("LAMM"), Some(ProtocolKind::Lamm));
        assert_eq!(parse_protocol("bmmm"), Some(ProtocolKind::Bmmm));
        assert_eq!(parse_protocol("802.11"), Some(ProtocolKind::Ieee80211));
        assert_eq!(parse_protocol("kk"), Some(ProtocolKind::LeaderBased));
        assert_eq!(parse_protocol("nope"), None);
        // Delegates to ProtocolKind::parse, so every display name
        // round-trips — including the BMMM-U ablation's.
        for p in ProtocolKind::EVERY {
            assert_eq!(parse_protocol(p.name()), Some(p));
        }
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        assert_eq!(
            parse_args(args("serve")),
            Ok(Command::Serve {
                addr: "127.0.0.1:4860".into(),
                jobs: 0,
                max_conns: 64,
                queue_cap: 1024,
                cache: None,
            })
        );
        assert_eq!(
            parse_args(args(
                "serve --addr 0.0.0.0:9000 --jobs 2 --max-conns 8 --queue-cap 32 --cache c.jsonl"
            )),
            Ok(Command::Serve {
                addr: "0.0.0.0:9000".into(),
                jobs: 2,
                max_conns: 8,
                queue_cap: 32,
                cache: Some("c.jsonl".into()),
            })
        );
    }

    #[test]
    fn explicit_zero_counts_are_rejected_with_a_friendly_error() {
        for cmdline in [
            "serve --jobs 0",
            "serve --max-conns 0",
            "serve --queue-cap 0",
            "run --protocol bmmm --jobs 0",
            "compare --jobs 0",
            "submit soak --conns 0",
            "submit soak --requests 0",
        ] {
            match parse_args(args(cmdline)) {
                Err(CliError::BadValue(msg)) => {
                    assert!(
                        msg.contains("at least 1") && msg.contains("omit the flag"),
                        "`{cmdline}` should explain the rejection, got: {msg}"
                    );
                }
                other => panic!("`{cmdline}` should be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_submit_actions() {
        let cmd = parse_args(args(
            "submit run --protocol lamm --seed 9 --trace --local --nodes 20 --addr h:1",
        ));
        assert_eq!(
            cmd,
            Ok(Command::Submit {
                addr: "h:1".into(),
                action: SubmitAction::Run {
                    protocol: ProtocolKind::Lamm,
                    scenario: Scenario {
                        n_nodes: 20,
                        ..Scenario::default()
                    },
                    seed: 9,
                    trace: true,
                    profile: false,
                    local: true,
                },
            })
        );
        let cmd = parse_args(args(
            "submit soak --requests 100 --conns 4 --trace-every 10 --expect-cached",
        ));
        assert_eq!(
            cmd,
            Ok(Command::Submit {
                addr: "127.0.0.1:4860".into(),
                action: SubmitAction::Soak {
                    requests: 100,
                    conns: 4,
                    scenario: Scenario::default(),
                    seed: 0,
                    trace_every: 10,
                    expect_cached: true,
                },
            })
        );
        assert_eq!(
            parse_args(args("submit metrics")),
            Ok(Command::Submit {
                addr: "127.0.0.1:4860".into(),
                action: SubmitAction::Metrics,
            })
        );
        assert_eq!(
            parse_args(args("submit shutdown --addr x:2")),
            Ok(Command::Submit {
                addr: "x:2".into(),
                action: SubmitAction::Shutdown,
            })
        );
        assert_eq!(
            parse_args(args("submit run")),
            Err(CliError::MissingProtocol)
        );
        assert!(matches!(
            parse_args(args("submit dance")),
            Err(CliError::Unknown(_))
        ));
        assert!(matches!(
            parse_args(args("submit")),
            Err(CliError::BadValue(_))
        ));
    }

    #[test]
    fn parse_run_with_overrides() {
        let cmd = parse_args(args(
            "run --protocol lamm --nodes 50 --slots 2000 --runs 3 --seed 42 --json",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                protocol,
                scenario,
                seed,
                json,
                trace_out,
                metrics_out,
                profile_out,
                sweep,
            } => {
                assert_eq!(protocol, ProtocolKind::Lamm);
                assert_eq!(scenario.n_nodes, 50);
                assert_eq!(scenario.sim_slots, 2000);
                assert_eq!(scenario.n_runs, 3);
                assert_eq!(seed, 42);
                assert!(json);
                assert_eq!(trace_out, None);
                assert_eq!(metrics_out, None);
                assert_eq!(profile_out, None);
                assert_eq!(sweep, SweepOpts::default());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_trace_with_exports() {
        let cmd = parse_args(args(
            "trace --protocol bmmm --seed 7 --trace-out t.jsonl --metrics-out m.json",
        ))
        .unwrap();
        match cmd {
            Command::Trace {
                protocol,
                seed,
                trace_out,
                metrics_out,
                ..
            } => {
                assert_eq!(protocol, ProtocolKind::Bmmm);
                assert_eq!(seed, 7);
                assert_eq!(trace_out.as_deref(), Some("t.jsonl"));
                assert_eq!(metrics_out.as_deref(), Some("m.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_and_trace_require_protocol() {
        assert_eq!(
            parse_args(args("run --nodes 50")),
            Err(CliError::MissingProtocol)
        );
        assert_eq!(
            parse_args(args("trace --seed 3")),
            Err(CliError::MissingProtocol)
        );
        assert_eq!(
            parse_args(args("prof --seed 3")),
            Err(CliError::MissingProtocol)
        );
    }

    #[test]
    fn parse_prof_flags() {
        let cmd = parse_args(args(
            "prof --protocol bmmm --seed 9 --profile-out p.json --prom-out p.prom",
        ))
        .unwrap();
        match cmd {
            Command::Prof {
                protocol,
                seed,
                json,
                profile_out,
                prom_out,
                ..
            } => {
                assert_eq!(protocol, ProtocolKind::Bmmm);
                assert_eq!(seed, 9);
                assert!(!json);
                assert_eq!(profile_out.as_deref(), Some("p.json"));
                assert_eq!(prom_out.as_deref(), Some("p.prom"));
            }
            other => panic!("{other:?}"),
        }
        // run also takes --profile-out; prof is a single run, so sweep
        // and trace flags are rejected there.
        assert!(matches!(
            parse_args(args("run --protocol bmw --profile-out p.json")),
            Ok(Command::Run {
                profile_out: Some(_),
                ..
            })
        ));
        assert!(matches!(
            parse_args(args("prof --protocol bmmm --jobs 2")),
            Err(CliError::Unknown(_))
        ));
        assert!(matches!(
            parse_args(args("prof --protocol bmmm --trace-out t.jsonl")),
            Err(CliError::Unknown(_))
        ));
        assert!(matches!(
            parse_args(args("trace --protocol bmmm --prom-out p.prom")),
            Err(CliError::Unknown(_))
        ));
    }

    #[test]
    fn export_profile_produces_parseable_artifacts() {
        let scenario = Scenario {
            n_nodes: 25,
            sim_slots: 1_200,
            n_runs: 1,
            ..Scenario::default()
        };
        let prof = export_profile(ProtocolKind::Bmmm, &scenario, 5);
        let v: serde_json::Value = serde_json::from_str(&prof.profile_json).unwrap();
        assert_eq!(v["protocol"].as_str(), Some("BMMM"));
        assert_eq!(v["seed"].as_u64(), Some(5));
        assert_eq!(v["airtime"]["total_slots"].as_u64(), Some(1_200));
        assert!(v["profile"]["total_ns"].as_u64().unwrap() > 0);
        assert!(v["dwell"]["contention_slots"].as_u64().is_some());
        assert!(prof
            .prom_text
            .contains("rmm_engine_phase_ns{phase=\"fsm_dispatch\"}"));
        assert!(prof.prom_text.contains("# TYPE rmm_tx_frames counter"));
        assert!(prof.prom_text.contains("rmm_dwell_contention_slots"));
        assert!(prof.human.contains("fsm_dispatch"));
        assert!(prof.human.contains("collision"));
        assert!(prof.summary.contains("BMMM seed 5"));
    }

    #[test]
    fn compare_rejects_trace_out_and_trace_rejects_json() {
        assert_eq!(
            parse_args(args("compare --trace-out t.jsonl")),
            Err(CliError::Unknown("--trace-out".into()))
        );
        assert_eq!(
            parse_args(args("trace --protocol bmmm --json")),
            Err(CliError::Unknown("--json".into()))
        );
        assert!(matches!(
            parse_args(args("compare --seed 5 --metrics-out m.json")),
            Ok(Command::Compare { seed: 5, .. })
        ));
    }

    #[test]
    fn parse_fault_flags() {
        let cmd = parse_args(args(
            "run --protocol bmmm --faults crash:5@1000;deaf:3@200..800 \
             --burst-fer 0.05,0.25 --stall-window 500",
        ))
        .unwrap();
        match cmd {
            Command::Run { scenario, .. } => {
                assert_eq!(scenario.faults.faults.len(), 2);
                assert_eq!(scenario.faults.spec(), "crash:5@1000;deaf:3@200..800");
                let burst = scenario.burst.unwrap();
                assert_eq!(burst.p, 0.05);
                assert_eq!(burst.r, 0.25);
                assert_eq!(scenario.stall_window, Some(500));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_args(args("run --protocol bmmm --faults bogus:1@2")),
            Err(CliError::BadValue(_))
        ));
        assert!(matches!(
            parse_args(args("run --protocol bmmm --burst-fer 2.0,0.5")),
            Err(CliError::BadValue(_))
        ));
    }

    #[test]
    fn parse_chaos_flags() {
        let cmd = parse_args(args(
            "chaos --iters 10 --budget-secs 5 --protocol bmw --seed 9 --out r.json",
        ))
        .unwrap();
        match cmd {
            Command::Chaos {
                protocol,
                iters,
                budget_secs,
                seed,
                out,
                repro,
                ..
            } => {
                assert_eq!(protocol, Some(ProtocolKind::Bmw));
                assert_eq!(iters, 10);
                assert_eq!(budget_secs, Some(5));
                assert_eq!(seed, 9);
                assert_eq!(out.as_deref(), Some("r.json"));
                assert_eq!(repro, None);
            }
            other => panic!("{other:?}"),
        }
        // chaos needs no --protocol: it rotates through all eight.
        assert!(matches!(
            parse_args(args("chaos")),
            Ok(Command::Chaos {
                protocol: None,
                iters: 64,
                ..
            })
        ));
        // --canary presets the fragile scenario and defaults to BMW.
        match parse_args(args("chaos --canary")).unwrap() {
            Command::Chaos {
                scenario, protocol, ..
            } => {
                assert_eq!(scenario, canary_scenario());
                assert_eq!(protocol, Some(ProtocolKind::Bmw));
            }
            other => panic!("{other:?}"),
        }
        // chaos-only flags are rejected elsewhere.
        assert!(matches!(
            parse_args(args("run --protocol bmw --iters 5")),
            Err(CliError::Unknown(_))
        ));
        assert!(matches!(
            parse_args(args("trace --protocol bmw --canary")),
            Err(CliError::Unknown(_))
        ));
    }

    #[test]
    fn parse_churn_flag_and_plan_validation() {
        match parse_args(args("run --protocol bmmm --churn leave:3@500;join:3@900")).unwrap() {
            Command::Run { scenario, .. } => {
                assert_eq!(scenario.churn.spec(), "leave:3@500;join:3@900");
            }
            other => panic!("{other:?}"),
        }
        // Malformed specs and plans naming out-of-range stations are
        // rejected at parse time — the engine would panic mid-run
        // otherwise.
        assert!(matches!(
            parse_args(args("run --protocol bmmm --churn bogus:1@2")),
            Err(CliError::BadValue(_))
        ));
        assert!(matches!(
            parse_args(args("run --protocol bmmm --nodes 4 --churn leave:9@100")),
            Err(CliError::BadValue(_))
        ));
        assert!(matches!(
            parse_args(args("run --protocol bmmm --nodes 4 --faults crash:9@100")),
            Err(CliError::BadValue(_))
        ));
    }

    #[test]
    fn canary_campaign_finds_shrinks_and_replays_a_stall() {
        use rmm::workload::ViolationKind;
        let report = run_chaos_campaign(
            &canary_scenario(),
            Some(ProtocolKind::Bmw),
            16,
            None,
            51_866,
            false,
        );
        let failure = report.outcome.failure.as_ref().expect("canary must fail");
        assert!(
            failure.violations.contains(&ViolationKind::Stall),
            "{:?}",
            failure.violations
        );
        assert!(
            report.outcome.events_after <= 5,
            "shrunk to {} events",
            report.outcome.events_after
        );
        assert!(report.outcome.events_after <= report.outcome.events_before);
        failure
            .replay()
            .expect("shrunk repro replays to the same failure");
        assert!(report.rendered.contains("Stall"));
        let back: ChaosRepro = serde_json::from_str(&repro_json(failure)).unwrap();
        assert_eq!(&back, failure);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(matches!(
            parse_args(args("run --protocol bmmm --frobnicate")),
            Err(CliError::Unknown(_))
        ));
    }

    #[test]
    fn compare_and_config_and_help() {
        assert!(matches!(
            parse_args(args("compare --runs 2")),
            Ok(Command::Compare { .. })
        ));
        assert_eq!(parse_args(args("config")), Ok(Command::Config));
        assert_eq!(parse_args(args("help")), Ok(Command::Help));
        assert_eq!(parse_args(Vec::new()), Ok(Command::Help));
    }

    #[test]
    fn config_template_roundtrips() {
        let template = config_template();
        let parsed: Scenario = serde_json::from_str(&template).unwrap();
        assert_eq!(parsed, Scenario::default());
    }

    #[test]
    fn config_file_loads_and_flags_override() {
        let dir = std::env::temp_dir().join("rmm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.json");
        let s = Scenario {
            n_nodes: 33,
            msg_rate: 1e-3,
            ..Scenario::default()
        };
        std::fs::write(&path, serde_json::to_string(&s).unwrap()).unwrap();
        let cmd = parse_args(args(&format!(
            "run --protocol bmw --config {} --nodes 44",
            path.display()
        )))
        .unwrap();
        match cmd {
            Command::Run { scenario, .. } => {
                assert_eq!(scenario.n_nodes, 44, "flag overrides config");
                assert_eq!(scenario.msg_rate, 1e-3, "config field survives");
            }
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_run_produces_metrics() {
        let scenario = Scenario {
            n_nodes: 30,
            sim_slots: 1_500,
            n_runs: 1,
            ..Scenario::default()
        };
        let opts = SweepOpts::default();
        let text = render_run(ProtocolKind::Bmmm, &scenario, 0, false, &opts).unwrap();
        assert!(text.contains("delivery rate"));
        assert!(text.contains("BMMM"));
        let json = render_run(ProtocolKind::Bmmm, &scenario, 0, true, &opts).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["protocol"], "BMMM");
        assert!(v["delivery_rate"]["mean"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn parse_sweep_flags() {
        let cmd = parse_args(args(
            "run --protocol bmmm --runs 2 --jobs 4 --manifest m.jsonl --resume",
        ))
        .unwrap();
        match cmd {
            Command::Run { sweep, .. } => {
                assert_eq!(sweep.jobs, 4);
                assert_eq!(sweep.manifest.as_deref(), Some("m.jsonl"));
                assert!(sweep.resume);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_args(args("compare --jobs 2")),
            Ok(Command::Compare { jobs: 2, .. })
        ));
        // --resume without --manifest has nothing to resume from.
        assert!(matches!(
            parse_args(args("run --protocol bmmm --resume")),
            Err(CliError::BadValue(_))
        ));
        // trace is a single run; sweep flags make no sense there.
        assert!(matches!(
            parse_args(args("trace --protocol bmmm --jobs 2")),
            Err(CliError::Unknown(_))
        ));
        assert!(matches!(
            parse_args(args("compare --manifest m.jsonl")),
            Err(CliError::Unknown(_))
        ));
    }

    #[test]
    fn run_output_is_identical_at_any_jobs_and_resumes_from_manifest() {
        let scenario = Scenario {
            n_nodes: 25,
            sim_slots: 1_200,
            n_runs: 4,
            ..Scenario::default()
        };
        let serial =
            render_run(ProtocolKind::Bmw, &scenario, 3, true, &SweepOpts::default()).unwrap();
        let parallel = render_run(
            ProtocolKind::Bmw,
            &scenario,
            3,
            true,
            &SweepOpts {
                jobs: 4,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(serial, parallel, "output must not depend on --jobs");

        let dir = std::env::temp_dir().join("rmm_cli_sweep_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("run.manifest.jsonl").display().to_string();
        let with_manifest = render_run(
            ProtocolKind::Bmw,
            &scenario,
            3,
            true,
            &SweepOpts {
                jobs: 2,
                manifest: Some(manifest.clone()),
                resume: false,
            },
        )
        .unwrap();
        assert_eq!(serial, with_manifest);
        // Resume with everything already recorded: identical output again.
        let resumed = render_run(
            ProtocolKind::Bmw,
            &scenario,
            3,
            true,
            &SweepOpts {
                jobs: 2,
                manifest: Some(manifest),
                resume: true,
            },
        )
        .unwrap();
        assert_eq!(serial, resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_trace_produces_parseable_artifacts() {
        let scenario = Scenario {
            n_nodes: 25,
            sim_slots: 1_200,
            n_runs: 1,
            ..Scenario::default()
        };
        let export = export_trace(ProtocolKind::Bmmm, &scenario, 5);
        let trace = rmm::sim::Trace::from_jsonl(&export.jsonl).unwrap();
        assert!(!trace.events().is_empty());
        let v: serde_json::Value = serde_json::from_str(&export.metrics_json).unwrap();
        assert_eq!(v["manifest"]["seed"].as_u64(), Some(5));
        assert_eq!(v["manifest"]["traced"].as_bool(), Some(true));
        assert!(!v["metrics"]["counters"].is_null());
        assert!(export.summary.contains("BMMM seed 5"));
    }

    #[test]
    fn bad_config_reports_error() {
        let err = parse_args(args("run --protocol bmmm --config /nonexistent/x.json"));
        assert!(matches!(err, Err(CliError::BadConfig(_))));
    }
}
