//! # rmm — Reliable MAC Layer Multicast for IEEE 802.11
//!
//! A from-scratch reproduction of *"Reliable MAC Layer Multicast in IEEE
//! 802.11 Wireless Networks"* (Min-Te Sun, Lifei Huang, Anish Arora,
//! Ten-Hwang Lai — ICPP 2002): the **BMMM** (Batch Mode Multicast MAC)
//! and **LAMM** (Location Aware Multicast MAC) protocols, the baselines
//! they are evaluated against, and the slotted wireless LAN simulator,
//! geometry engine, analytical models and experiment harness needed to
//! regenerate every table and figure of the paper.
//!
//! This crate is the facade: it re-exports the public API of the
//! workspace crates under stable module names.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `rmm-geom` | cover angles, arc unions, cover sets, `MCS`/`UPDATE` |
//! | [`sim`] | `rmm-sim` | slotted engine, disk channel, collisions, DS capture |
//! | [`mac`] | `rmm-mac` | BMMM, LAMM, BMW, BSMA, Tang–Gerla, 802.11, DCF |
//! | [`workload`] | `rmm-workload` | placement, traffic mix, parallel runner |
//! | [`fleet`] | `rmm-fleet` | parallel sweep pool, resumable manifest, deterministic merge |
//! | [`serve`] | `rmm-serve` | long-lived TCP daemon, streamed traces, content-addressed cache |
//! | [`stats`] | `rmm-stats` | delivery rate / contention / completion metrics |
//! | [`analysis`] | `rmm-analysis` | Section 6 closed forms (Table 1, Figure 5) |
//!
//! ## Quickstart
//!
//! ```
//! use rmm::prelude::*;
//!
//! // The paper's Table 2 scenario, shortened for a doctest.
//! let scenario = Scenario { n_nodes: 50, sim_slots: 2_000, n_runs: 1, ..Scenario::default() };
//! let bmmm = run_one(&scenario, ProtocolKind::Bmmm, 7);
//! let bmw = run_one(&scenario, ProtocolKind::Bmw, 7);
//!
//! // BMMM consolidates contention phases (the paper's headline claim).
//! assert!(
//!     bmmm.group_metrics.avg_contention_phases < bmw.group_metrics.avg_contention_phases
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Computational geometry: cover angles, cover sets, `MCS`, `UPDATE`.
pub mod geom {
    pub use rmm_geom::*;
}

/// The slotted wireless LAN simulator.
pub mod sim {
    pub use rmm_sim::*;
}

/// The MAC protocol suite.
pub mod mac {
    pub use rmm_mac::*;
}

/// Scenarios, traffic and the parallel runner.
pub mod workload {
    pub use rmm_workload::*;
}

/// Parallel sweep orchestration: worker pool, resumable manifest,
/// deterministic (input-order) result merge.
pub mod fleet {
    pub use rmm_fleet::*;
}

/// The simulator as a long-lived service: JSONL-over-TCP requests,
/// streamed traces, content-addressed result cache.
pub mod serve {
    pub use rmm_serve::*;
}

/// Metrics and statistics.
pub mod stats {
    pub use rmm_stats::*;
}

/// The paper's analytical models.
pub mod analysis {
    pub use rmm_analysis::*;
}

/// Route discovery over the multicast MAC (the motivating workload).
pub mod route {
    pub use rmm_route::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use rmm_geom::{covers_disk, min_cover_set, update_uncovered, Point};
    pub use rmm_mac::{MacNode, MacTiming, Outcome, ProtocolKind, SentRecord, TrafficKind};
    pub use rmm_sim::{Capture, Engine, Frame, FrameKind, MsgId, NodeId, Slot, Topology};
    pub use rmm_stats::{MessageMetric, RunMetrics, Summary};
    pub use rmm_workload::{run_many, run_one, RunResult, Scenario};
}
