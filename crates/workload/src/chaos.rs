//! Chaos harness: seeded fault + churn + burst schedules, an invariant
//! checker over the resulting runs, and a greedy shrinker that reduces a
//! failing schedule to a minimal replayable repro.
//!
//! The harness closes the loop the individual robustness features opened:
//! crash/reboot faults ([`rmm_sim::FaultPlan`]), membership churn
//! ([`ChurnPlan`](crate::churn::ChurnPlan)), and the burst-error channel
//! are composed into randomized schedules, every schedule is simulated
//! under a protocol, and the run is checked against invariants that must
//! hold *no matter what the schedule does*:
//!
//! * **Stall** — no sender trips the liveness watchdog (bounded retry
//!   budgets guarantee forward progress even against dead receivers),
//! * **Termination** — every message whose timeout window fits in the
//!   run reaches a final outcome; outcome slots are sane,
//! * **RetryBudget** — no consecutive-retry streak exceeds
//!   `timing.retry_limit`; no give-up spends more than
//!   `timing.dest_retry_limit` tries; give-up lists stay consistent,
//! * **Membership** — senders only originate, and receiver lists only
//!   name, stations that were group members at the arrival slot,
//! * **AirtimePartition** — the airtime ledger partitions the run
//!   exactly and agrees with the channel's busy counter,
//! * **Determinism** — the event-horizon fast path and the naive
//!   stepper produce byte-identical results and traces.
//!
//! When a schedule fails, [`shrink`] greedily drops fault events, churn
//! nodes, and the burst model, and narrows fault windows, re-checking
//! after each candidate until no single reduction still reproduces one
//! of the original violation kinds. The result is a [`ChaosRepro`]: a
//! self-contained JSON artifact that replays to the same violation set.

use crate::churn::ChurnPlan;
use crate::observe::PhaseTimings;
use crate::runner::{run_one_forensic, RunResult};
use crate::scenario::Scenario;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_mac::{MacTiming, Outcome, ProtocolKind, SentRecord};
use rmm_sim::{FaultPlan, GilbertElliott, MsgId, NodeId, Slot, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Dedicated seed stream for schedule generation ("chaos").
const CHAOS_SEED: u64 = 0x0063_6861_6f73;

/// The invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A sender tripped the liveness watchdog.
    Stall,
    /// A message failed to reach a final outcome in its window, or an
    /// outcome slot is outside the run.
    Termination,
    /// A retry or give-up exceeded its configured budget.
    RetryBudget,
    /// A message was originated by or addressed to a non-member.
    Membership,
    /// The airtime ledger does not partition the run exactly.
    AirtimePartition,
    /// Fast-path and naive stepping diverged.
    Determinism,
}

/// One checked-invariant failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics (node, message, slot...).
    pub detail: String,
}

impl Violation {
    fn new(kind: ViolationKind, detail: impl Into<String>) -> Self {
        Violation {
            kind,
            detail: detail.into(),
        }
    }
}

/// The sorted, deduplicated set of kinds in `violations`.
fn kinds_of(violations: &[Violation]) -> Vec<ViolationKind> {
    let mut kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
    kinds.sort_unstable();
    kinds.dedup();
    kinds
}

/// One randomized chaos schedule: the fault, churn, and burst-error
/// configuration layered onto a base scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// Scheduled node faults (crash / deaf / mute / reboot).
    pub faults: FaultPlan,
    /// Scheduled membership churn.
    pub churn: ChurnPlan,
    /// Burst-error channel, when the schedule enables it.
    pub burst: Option<GilbertElliott>,
}

impl ChaosSchedule {
    /// Generates a valid schedule for a network of `n_nodes` over
    /// `sim_slots`, deterministically from `seed`: up to three faulted
    /// stations (one fault each, so same-kind windows never overlap), up
    /// to two churning stations, and sometimes a burst channel. Node 0
    /// is spared everywhere so at least one station stays healthy.
    pub fn generate(n_nodes: usize, sim_slots: Slot, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ CHAOS_SEED);
        let span = sim_slots.max(8);
        let pool = n_nodes.saturating_sub(1);
        let n_faults = rng.random_range(0..=3usize.min(pool));
        let mut victims: Vec<u32> = Vec::new();
        while victims.len() < n_faults {
            let v = rng.random_range(1..n_nodes) as u32;
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        victims.sort_unstable();
        let mut faults = FaultPlan::new();
        for v in victims {
            let from = rng.random_range(0..span * 3 / 4);
            let until = from + rng.random_range(1..=span / 4);
            faults = match rng.random_range(0..4u32) {
                0 => faults.crash(NodeId(v), from),
                1 => faults.deaf(NodeId(v), from, until),
                2 => faults.mute(NodeId(v), from, until),
                _ => faults.reboot(NodeId(v), from, until),
            };
        }
        let churners = rng.random_range(0..=2usize.min(pool));
        let churn = if churners > 0 {
            ChurnPlan::random(n_nodes, churners, sim_slots, rng.random::<u64>())
        } else {
            ChurnPlan::new()
        };
        let burst = rng
            .random_bool(0.3)
            .then(|| GilbertElliott::new(0.05, 0.25));
        ChaosSchedule {
            faults,
            churn,
            burst,
        }
    }

    /// Number of discrete events in the schedule — the quantity the
    /// shrinker minimizes.
    pub fn event_count(&self) -> usize {
        self.faults.faults.len() + self.churn.events.len() + usize::from(self.burst.is_some())
    }

    /// The base scenario with this schedule layered on.
    pub fn apply(&self, base: &Scenario) -> Scenario {
        let mut s = base.clone();
        s.faults = self.faults.clone();
        s.churn = self.churn.clone();
        s.burst = self.burst;
        s
    }
}

/// Runs `scenario` under `protocol` with `seed` — once on the fast path,
/// once on the naive reference stepper — and checks every chaos
/// invariant. Empty means the run was clean.
pub fn check_invariants(scenario: &Scenario, protocol: ProtocolKind, seed: u64) -> Vec<Violation> {
    let (fast, fast_trace, records) = run_one_forensic(scenario, protocol, seed, true);
    let (naive, naive_trace, _) = run_one_forensic(scenario, protocol, seed, false);
    let mut out = Vec::new();
    if fast_trace.events() != naive_trace.events() {
        let idx = fast_trace
            .events()
            .iter()
            .zip(naive_trace.events())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fast_trace.events().len().min(naive_trace.events().len()));
        out.push(Violation::new(
            ViolationKind::Determinism,
            format!("fast and naive traces diverge at event {idx}"),
        ));
    }
    if canonical(fast.clone()) != canonical(naive) {
        out.push(Violation::new(
            ViolationKind::Determinism,
            "fast and naive RunResults are not byte-identical",
        ));
    }
    check_stall(&fast, &mut out);
    check_termination(
        scenario.sim_slots,
        scenario.timing.timeout,
        &records,
        &mut out,
    );
    check_membership(&scenario.churn, &records, &mut out);
    check_retry_budget(&scenario.timing, fast_trace.events(), &records, &mut out);
    check_airtime(scenario.sim_slots, &fast, &mut out);
    out
}

/// Serializes a result with the (nondeterministic) wall-clock phase
/// timings zeroed, so string equality means byte-identical simulation
/// output.
fn canonical(mut r: RunResult) -> String {
    r.manifest.wall_clock = PhaseTimings::default();
    serde_json::to_string(&r).expect("RunResult serializes")
}

fn check_stall(result: &RunResult, out: &mut Vec<Violation>) {
    for s in &result.stalls {
        out.push(Violation::new(
            ViolationKind::Stall,
            format!(
                "node {} made no progress on {} for {} slots (detected at slot {})",
                s.node.0, s.msg, s.window, s.detected_at
            ),
        ));
    }
}

fn check_termination(
    sim_slots: Slot,
    timeout: Slot,
    records: &[SentRecord],
    out: &mut Vec<Violation>,
) {
    for rec in records {
        match rec.outcome {
            Outcome::Pending => {
                if rec.arrival.saturating_add(timeout) <= sim_slots {
                    out.push(Violation::new(
                        ViolationKind::Termination,
                        format!(
                            "{} arrived at slot {} and its {timeout}-slot window closed \
                             in-run, but it never reached a final outcome",
                            rec.msg, rec.arrival
                        ),
                    ));
                }
            }
            Outcome::Completed(at) | Outcome::TimedOut(at) | Outcome::Failed(at) => {
                if at < rec.arrival || at > sim_slots {
                    out.push(Violation::new(
                        ViolationKind::Termination,
                        format!(
                            "{} resolved at slot {at}, outside [{}, {sim_slots}]",
                            rec.msg, rec.arrival
                        ),
                    ));
                }
            }
        }
    }
}

fn check_membership(churn: &ChurnPlan, records: &[SentRecord], out: &mut Vec<Violation>) {
    for rec in records {
        if !churn.member_at(rec.msg.src, rec.arrival) {
            out.push(Violation::new(
                ViolationKind::Membership,
                format!(
                    "{} originated at slot {} while its sender was out of the group",
                    rec.msg, rec.arrival
                ),
            ));
        }
        for r in &rec.intended {
            if !churn.member_at(*r, rec.arrival) {
                out.push(Violation::new(
                    ViolationKind::Membership,
                    format!(
                        "{} (arrival slot {}) addresses node {}, not a member at that slot",
                        rec.msg, rec.arrival, r.0
                    ),
                ));
            }
        }
    }
}

fn check_retry_budget(
    timing: &MacTiming,
    events: &[TraceEvent],
    records: &[SentRecord],
    out: &mut Vec<Violation>,
) {
    // A `Retry` event marks a recontention *without* forward progress; a
    // `ContentionStart` with no paired `Retry` is a fresh (reset) window
    // and clears the streak. The node-level ceiling caps consecutive
    // no-progress retries at `retry_limit`.
    let mut streaks: HashMap<(NodeId, MsgId), u32> = HashMap::new();
    let mut pending: HashSet<(NodeId, MsgId)> = HashSet::new();
    for ev in events {
        match ev {
            TraceEvent::Retry {
                node, msg, slot, ..
            } => {
                let streak = streaks.entry((*node, *msg)).or_insert(0);
                *streak += 1;
                if *streak > timing.retry_limit {
                    out.push(Violation::new(
                        ViolationKind::RetryBudget,
                        format!(
                            "node {} hit {streak} consecutive retries on {msg} at slot \
                             {slot} (retry_limit {})",
                            node.0, timing.retry_limit
                        ),
                    ));
                }
                pending.insert((*node, *msg));
            }
            TraceEvent::ContentionStart { node, msg, .. } if !pending.remove(&(*node, *msg)) => {
                streaks.insert((*node, *msg), 0);
            }
            TraceEvent::GiveUp {
                node,
                msg,
                dst,
                after_retries,
                slot,
            } if *after_retries > timing.dest_retry_limit => {
                out.push(Violation::new(
                    ViolationKind::RetryBudget,
                    format!(
                        "node {} gave up on {} for {msg} at slot {slot} after \
                         {after_retries} tries (dest_retry_limit {})",
                        node.0, dst.0, timing.dest_retry_limit
                    ),
                ));
            }
            _ => {}
        }
    }
    for rec in records {
        let mut seen: Vec<NodeId> = Vec::new();
        for g in &rec.gave_up {
            if !rec.intended.contains(g) {
                out.push(Violation::new(
                    ViolationKind::RetryBudget,
                    format!("{} gave up on {}, which it never addressed", rec.msg, g.0),
                ));
            }
            if seen.contains(g) {
                out.push(Violation::new(
                    ViolationKind::RetryBudget,
                    format!("{} gave up on {} twice", rec.msg, g.0),
                ));
            }
            seen.push(*g);
        }
    }
}

fn check_airtime(sim_slots: Slot, result: &RunResult, out: &mut Vec<Violation>) {
    let a = &result.airtime;
    let sum = a.idle_slots + a.data_slots + a.control_slots + a.collision_slots;
    if sum != sim_slots {
        out.push(Violation::new(
            ViolationKind::AirtimePartition,
            format!(
                "idle {} + data {} + control {} + collision {} = {sum} ≠ {sim_slots} slots",
                a.idle_slots, a.data_slots, a.control_slots, a.collision_slots
            ),
        ));
    }
    let from_ledger = if sim_slots == 0 {
        0.0
    } else {
        a.busy_slots() as f64 / sim_slots as f64
    };
    if result.utilization.to_bits() != from_ledger.to_bits() {
        out.push(Violation::new(
            ViolationKind::AirtimePartition,
            format!(
                "channel busy fraction {} disagrees with ledger {}",
                result.utilization, from_ledger
            ),
        ));
    }
}

/// A self-contained, replayable failure artifact: the exact scenario
/// (schedule already applied), protocol, and seed, plus the violation
/// kinds the run produced. Serializes to JSON for the on-disk corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosRepro {
    /// Protocol the failing run used.
    pub protocol: ProtocolKind,
    /// Seed of the failing run.
    pub seed: u64,
    /// The full failing scenario, schedule included.
    pub scenario: Scenario,
    /// Sorted, deduplicated violation kinds the run produced.
    pub violations: Vec<ViolationKind>,
    /// Human-readable violation details (informational; replay compares
    /// kinds only).
    pub detail: Vec<String>,
}

impl ChaosRepro {
    /// Re-runs the repro and verifies it produces exactly the recorded
    /// violation kinds. Returns the fresh violations on success.
    pub fn replay(&self) -> Result<Vec<Violation>, String> {
        let found = check_invariants(&self.scenario, self.protocol, self.seed);
        let kinds = kinds_of(&found);
        if kinds == self.violations {
            Ok(found)
        } else {
            Err(format!(
                "repro drifted: recorded {:?}, replay produced {:?}",
                self.violations, kinds
            ))
        }
    }
}

/// Greedily shrinks a failing `schedule`: repeatedly tries dropping one
/// fault event, dropping one station's churn events, clearing the burst
/// model, or halving one fault window, keeping any reduction whose run
/// still produces at least one of `original` violation kinds. Stops at
/// a fixpoint or after `max_checks` re-runs. Returns the shrunk
/// schedule and the number of check runs spent.
pub fn shrink(
    base: &Scenario,
    schedule: &ChaosSchedule,
    protocol: ProtocolKind,
    seed: u64,
    original: &[ViolationKind],
    max_checks: usize,
) -> (ChaosSchedule, usize) {
    let still_fails = |cand: &ChaosSchedule| {
        let kinds = kinds_of(&check_invariants(&cand.apply(base), protocol, seed));
        kinds.iter().any(|k| original.contains(k))
    };
    let mut current = schedule.clone();
    let mut checks = 0usize;
    loop {
        let mut reduced = false;
        for cand in reductions(&current) {
            if checks >= max_checks {
                return (current, checks);
            }
            checks += 1;
            if still_fails(&cand) {
                current = cand;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (current, checks);
        }
    }
}

/// Every single-step reduction of `schedule`, strongest first: whole
/// events before window narrowing.
fn reductions(schedule: &ChaosSchedule) -> Vec<ChaosSchedule> {
    let mut out = Vec::new();
    for i in 0..schedule.faults.faults.len() {
        let mut cand = schedule.clone();
        cand.faults.faults.remove(i);
        out.push(cand);
    }
    let mut churn_nodes: Vec<NodeId> = schedule.churn.events.iter().map(|e| e.node).collect();
    churn_nodes.sort_unstable_by_key(|n| n.0);
    churn_nodes.dedup();
    for node in churn_nodes {
        let mut cand = schedule.clone();
        cand.churn.events.retain(|e| e.node != node);
        out.push(cand);
    }
    if schedule.burst.is_some() {
        let mut cand = schedule.clone();
        cand.burst = None;
        out.push(cand);
    }
    for (i, f) in schedule.faults.faults.iter().enumerate() {
        if let Some(until) = f.until {
            let halved = f.from + ((until - f.from) / 2).max(1);
            if halved < until {
                let mut cand = schedule.clone();
                cand.faults.faults[i].until = Some(halved);
                out.push(cand);
            }
        }
    }
    out
}

/// Configuration for a chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Base scenario every schedule is layered onto. Its `faults`,
    /// `churn`, and `burst` fields are overwritten per iteration; set
    /// `stall_window` here to arm the liveness invariant.
    pub base: Scenario,
    /// Protocols to rotate through (iteration `i` uses `i % len`).
    pub protocols: Vec<ProtocolKind>,
    /// Maximum iterations.
    pub iters: u64,
    /// Master seed; iteration `i` uses `seed + i` for both the schedule
    /// and the run.
    pub seed: u64,
    /// Optional wall-clock budget; the campaign stops early when spent.
    pub budget: Option<Duration>,
    /// Cap on shrinker re-runs once a failure is found.
    pub max_shrink_checks: usize,
}

/// The result of a chaos campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosOutcome {
    /// Iterations actually executed.
    pub iterations: u64,
    /// The first failure found, already shrunk — `None` means every
    /// checked run was clean.
    pub failure: Option<ChaosRepro>,
    /// Schedule event count when the failure was found.
    pub events_before: usize,
    /// Schedule event count after shrinking.
    pub events_after: usize,
    /// Check runs the shrinker spent.
    pub shrink_checks: usize,
}

/// Runs a chaos campaign: generate a schedule, simulate, check the
/// invariants, and on the first failure shrink it and return the repro.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    assert!(
        !cfg.protocols.is_empty(),
        "chaos needs at least one protocol"
    );
    let started = Instant::now();
    let mut iterations = 0u64;
    for i in 0..cfg.iters {
        if let Some(budget) = cfg.budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        let seed = cfg.seed.wrapping_add(i);
        let protocol = cfg.protocols[(i % cfg.protocols.len() as u64) as usize];
        let schedule = ChaosSchedule::generate(cfg.base.n_nodes, cfg.base.sim_slots, seed);
        let scenario = schedule.apply(&cfg.base);
        iterations += 1;
        let violations = check_invariants(&scenario, protocol, seed);
        if violations.is_empty() {
            continue;
        }
        let kinds = kinds_of(&violations);
        let events_before = schedule.event_count();
        let (shrunk, shrink_checks) = shrink(
            &cfg.base,
            &schedule,
            protocol,
            seed,
            &kinds,
            cfg.max_shrink_checks,
        );
        let scenario = shrunk.apply(&cfg.base);
        let final_violations = check_invariants(&scenario, protocol, seed);
        return ChaosOutcome {
            iterations,
            events_before,
            events_after: shrunk.event_count(),
            shrink_checks,
            failure: Some(ChaosRepro {
                protocol,
                seed,
                scenario,
                violations: kinds_of(&final_violations),
                detail: final_violations.into_iter().map(|v| v.detail).collect(),
            }),
        };
    }
    ChaosOutcome {
        iterations,
        failure: None,
        events_before: 0,
        events_after: 0,
        shrink_checks: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmm_mac::TrafficKind;

    #[test]
    fn generated_schedules_are_deterministic_and_valid() {
        for seed in 0..32 {
            let a = ChaosSchedule::generate(12, 2_000, seed);
            let b = ChaosSchedule::generate(12, 2_000, seed);
            assert_eq!(a, b);
            a.faults
                .validate(12)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            a.churn
                .validate(12)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                a.faults.faults.iter().all(|f| f.node.0 != 0),
                "seed {seed}: node 0 must be spared"
            );
        }
        // Degenerate networks produce empty (still valid) schedules.
        let tiny = ChaosSchedule::generate(1, 100, 7);
        assert_eq!(tiny.event_count(), usize::from(tiny.burst.is_some()));
    }

    #[test]
    fn healthy_run_passes_every_invariant() {
        let scenario = Scenario {
            n_nodes: 12,
            sim_slots: 1_000,
            n_runs: 1,
            msg_rate: 2e-3,
            ..Scenario::default()
        }
        .with_stall_window(400);
        let violations = check_invariants(&scenario, ProtocolKind::Bmmm, 3);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn retry_streaks_reset_on_forward_progress() {
        let timing = MacTiming {
            retry_limit: 2,
            ..Default::default()
        };
        let node = NodeId(0);
        let msg = MsgId::new(node, 0);
        let retry = |slot| TraceEvent::Retry {
            slot,
            node,
            msg,
            round: 0,
        };
        let cs = |slot| TraceEvent::ContentionStart {
            slot,
            node,
            msg,
            attempts: 1,
            backoff_slots: 3,
        };
        // Two retries, a fresh (reset) contention, two more retries:
        // never three in a row, so no violation.
        let ok = [
            retry(1),
            cs(1),
            retry(5),
            cs(5),
            cs(9),
            retry(12),
            cs(12),
            retry(15),
            cs(15),
        ];
        let mut out = Vec::new();
        check_retry_budget(&timing, &ok, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
        // Three consecutive retries breach retry_limit = 2.
        let bad = [retry(1), cs(1), retry(5), cs(5), retry(9), cs(9)];
        let mut out = Vec::new();
        check_retry_budget(&timing, &bad, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, ViolationKind::RetryBudget);
        // An over-budget give-up is caught too.
        let giveup = [TraceEvent::GiveUp {
            slot: 3,
            node,
            msg,
            dst: NodeId(1),
            after_retries: timing.dest_retry_limit + 1,
        }];
        let mut out = Vec::new();
        check_retry_budget(&timing, &giveup, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    fn record(src: u32, arrival: Slot, intended: Vec<NodeId>, outcome: Outcome) -> SentRecord {
        SentRecord {
            msg: MsgId::new(NodeId(src), 0),
            kind: TrafficKind::Multicast,
            intended,
            arrival,
            started: Some(arrival),
            outcome,
            contention_phases: 1,
            data_tx: 1,
            control_tx: 0,
            acked: Vec::new(),
            assumed_covered: Vec::new(),
            gave_up: Vec::new(),
        }
    }

    #[test]
    fn membership_checker_flags_non_member_traffic() {
        let churn = ChurnPlan::new().leave(NodeId(1), 100).leave(NodeId(2), 50);
        let records = [
            // Fine: addressed while everyone concerned was a member.
            record(0, 10, vec![NodeId(1)], Outcome::Completed(20)),
            // Sender 2 left at 50 but originates at 60.
            record(2, 60, vec![NodeId(0)], Outcome::Completed(70)),
            // Node 1 left at 100 but is addressed at 150.
            record(0, 150, vec![NodeId(1)], Outcome::Completed(160)),
        ];
        let mut out = Vec::new();
        check_membership(&churn, &records, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|v| v.kind == ViolationKind::Membership));
    }

    #[test]
    fn termination_checker_flags_unresolved_windows() {
        let records = [
            // Window closed in-run but still Pending: violation.
            record(0, 100, vec![NodeId(1)], Outcome::Pending),
            // Window extends past the run end: Pending is legitimate.
            record(0, 950, vec![NodeId(1)], Outcome::Pending),
            // Outcome slot before arrival: violation.
            record(0, 500, vec![NodeId(1)], Outcome::Completed(499)),
        ];
        let mut out = Vec::new();
        check_termination(1_000, 100, &records, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|v| v.kind == ViolationKind::Termination));
    }

    #[test]
    fn airtime_checker_flags_a_corrupted_partition() {
        let scenario = Scenario {
            n_nodes: 10,
            sim_slots: 500,
            n_runs: 1,
            msg_rate: 2e-3,
            ..Scenario::default()
        };
        let mut result = crate::runner::run_one(&scenario, ProtocolKind::Ieee80211, 1);
        let mut out = Vec::new();
        check_airtime(scenario.sim_slots, &result, &mut out);
        assert!(out.is_empty(), "{out:?}");
        result.airtime.idle_slots += 1;
        let mut out = Vec::new();
        check_airtime(scenario.sim_slots, &result, &mut out);
        assert!(!out.is_empty());
        assert!(out
            .iter()
            .all(|v| v.kind == ViolationKind::AirtimePartition));
    }

    #[test]
    fn repro_serializes_and_round_trips() {
        let repro = ChaosRepro {
            protocol: ProtocolKind::Bmw,
            seed: 42,
            scenario: Scenario {
                n_nodes: 8,
                sim_slots: 600,
                n_runs: 1,
                ..Scenario::default()
            }
            .with_faults(FaultPlan::new().reboot(NodeId(3), 50, 400))
            .with_churn(ChurnPlan::new().leave(NodeId(2), 100)),
            violations: vec![ViolationKind::Stall],
            detail: vec!["node 1 made no progress".into()],
        };
        let json = serde_json::to_string(&repro).expect("repro serializes");
        let back: ChaosRepro = serde_json::from_str(&json).expect("repro parses");
        assert_eq!(back, repro);
    }

    #[test]
    fn shrinker_reductions_stay_valid() {
        let schedule = ChaosSchedule {
            faults: FaultPlan::new()
                .crash(NodeId(1), 100)
                .reboot(NodeId(2), 50, 900)
                .deaf(NodeId(3), 10, 500),
            churn: ChurnPlan::new().leave(NodeId(4), 200).join(NodeId(4), 700),
            burst: Some(GilbertElliott::new(0.05, 0.25)),
        };
        let cands = reductions(&schedule);
        // 3 fault drops + 1 churn-node drop + 1 burst clear + 2 window
        // halvings (the crash has no window).
        assert_eq!(cands.len(), 7);
        for cand in &cands {
            assert!(cand.event_count() <= schedule.event_count());
            cand.faults.validate(10).expect("reduced fault plan valid");
            cand.churn.validate(10).expect("reduced churn plan valid");
        }
        // Every candidate is a strict structural reduction: fewer events
        // or a narrower window.
        assert!(cands.iter().all(|c| c != &schedule));
    }
}
