//! Node mobility and periodic beaconing.
//!
//! The paper's network model learns neighborhoods from periodic beacons
//! ("the beacon containing the station MAC address is broadcast
//! periodically by each station to announce its presence"), and LAMM
//! additionally piggybacks GPS positions on those beacons. With static
//! nodes the beacon abstraction is invisible; with mobility it matters:
//! stations act on the neighbor set and positions as of the **last
//! beacon exchange**, which lags the ground truth. This module provides
//! the classic random-waypoint model and the beacon-refresh plumbing the
//! mobile runner uses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_geom::Point;
use rmm_sim::Topology;
use serde::{Deserialize, Serialize};

/// Mobility configuration for [`RandomWaypoint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Minimum node speed in unit-square lengths per slot.
    pub speed_min: f64,
    /// Maximum node speed in unit-square lengths per slot.
    pub speed_max: f64,
    /// Slots between ground-truth topology updates (simulation epochs).
    pub update_period: u64,
    /// Slots between beacon exchanges — how often stations refresh their
    /// neighbor tables and advertised positions. Staleness is
    /// `beacon_period − update_period` in the worst case.
    pub beacon_period: u64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        // With a 50 µs slot, 10⁻⁵ units/slot over a 300 m square is
        // ≈ 60 m/s... units are abstract; these defaults give visible
        // but not absurd motion over a 10 000-slot run (total ≈ 0.1).
        MobilityConfig {
            speed_min: 0.0,
            speed_max: 2e-5,
            update_period: 100,
            beacon_period: 500,
        }
    }
}

/// Random-waypoint mobility: each node walks toward a uniformly random
/// destination at a uniformly random speed, then picks a new one.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    positions: Vec<Point>,
    targets: Vec<Point>,
    speeds: Vec<f64>,
    config: MobilityConfig,
    rng: SmallRng,
}

impl RandomWaypoint {
    /// Starts the model from `initial` positions.
    pub fn new(initial: Vec<Point>, config: MobilityConfig, seed: u64) -> Self {
        assert!(config.speed_min >= 0.0 && config.speed_max >= config.speed_min);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d6f_7665);
        let n = initial.len();
        let targets: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let speeds: Vec<f64> = (0..n)
            .map(|_| {
                if config.speed_max > config.speed_min {
                    rng.random_range(config.speed_min..=config.speed_max)
                } else {
                    config.speed_min
                }
            })
            .collect();
        RandomWaypoint {
            positions: initial,
            targets,
            speeds,
            config,
            rng,
        }
    }

    /// Current ground-truth positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Advances all nodes by `dt` slots of motion.
    pub fn step(&mut self, dt: u64) {
        let dt = dt as f64;
        for i in 0..self.positions.len() {
            let mut remaining = self.speeds[i] * dt;
            while remaining > 0.0 {
                let p = self.positions[i];
                let t = self.targets[i];
                let d = p.dist(&t);
                if d <= remaining {
                    // Arrived: hop to the waypoint, draw a new one.
                    self.positions[i] = t;
                    remaining -= d;
                    self.targets[i] = Point::new(
                        self.rng.random_range(0.0..1.0),
                        self.rng.random_range(0.0..1.0),
                    );
                    let (lo, hi) = (self.config.speed_min, self.config.speed_max);
                    self.speeds[i] = if hi > lo {
                        self.rng.random_range(lo..=hi)
                    } else {
                        lo
                    };
                    if self.speeds[i] == 0.0 {
                        break;
                    }
                } else {
                    let frac = remaining / d;
                    self.positions[i] =
                        Point::new(p.x + (t.x - p.x) * frac, p.y + (t.y - p.y) * frac);
                    remaining = 0.0;
                }
            }
        }
    }

    /// Builds the ground-truth topology for the current positions.
    pub fn topology(&self, radius: f64) -> Topology {
        Topology::new(self.positions.clone(), radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::uniform_square;

    fn initial(n: usize) -> Vec<Point> {
        uniform_square(n, 0.2, 3).positions().to_vec()
    }

    fn config(vmax: f64) -> MobilityConfig {
        MobilityConfig {
            speed_min: 0.0,
            speed_max: vmax,
            ..Default::default()
        }
    }

    #[test]
    fn zero_speed_means_no_motion() {
        let init = initial(20);
        let mut m = RandomWaypoint::new(init.clone(), config(0.0), 1);
        m.step(10_000);
        assert_eq!(m.positions(), &init[..]);
    }

    #[test]
    fn nodes_stay_in_unit_square() {
        let mut m = RandomWaypoint::new(initial(30), config(1e-3), 2);
        for _ in 0..200 {
            m.step(100);
            for p in m.positions() {
                assert!((0.0..=1.0).contains(&p.x), "x = {}", p.x);
                assert!((0.0..=1.0).contains(&p.y), "y = {}", p.y);
            }
        }
    }

    #[test]
    fn displacement_is_bounded_by_speed() {
        let init = initial(25);
        let mut m = RandomWaypoint::new(init.clone(), config(1e-4), 5);
        m.step(1_000);
        for (a, b) in init.iter().zip(m.positions()) {
            // Waypoint turns only shorten net displacement.
            assert!(a.dist(b) <= 1e-4 * 1_000.0 + 1e-9);
        }
    }

    #[test]
    fn motion_actually_happens() {
        let init = initial(25);
        let mut m = RandomWaypoint::new(init.clone(), config(1e-4), 5);
        m.step(2_000);
        let moved = init
            .iter()
            .zip(m.positions())
            .filter(|(a, b)| a.dist(b) > 1e-4)
            .count();
        assert!(moved > 15, "only {moved} nodes moved");
    }

    #[test]
    fn stepping_is_deterministic_per_seed() {
        let mut a = RandomWaypoint::new(initial(10), config(1e-4), 7);
        let mut b = RandomWaypoint::new(initial(10), config(1e-4), 7);
        a.step(500);
        b.step(500);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn topology_tracks_motion() {
        let mut m = RandomWaypoint::new(initial(40), config(5e-4), 9);
        let before = m.topology(0.2).mean_degree();
        m.step(5_000);
        let after = m.topology(0.2).mean_degree();
        // Degrees change as nodes move (value itself is random).
        assert!((before - after).abs() > 1e-9 || before == after);
        assert_eq!(m.topology(0.2).len(), 40);
    }
}
