//! Run observability: provenance manifests, per-phase wall-clock
//! timings, and metrics derived from a protocol event trace.

use crate::scenario::Scenario;
use rmm_mac::ProtocolKind;
use rmm_sim::{FrameKind, NodeId, Slot, TraceEvent};
use rmm_stats::{Histogram, MetricsRegistry};
use serde::{Deserialize, Serialize};

/// Wall-clock spent in each phase of one run, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Topology sampling, station construction, engine setup.
    pub setup_us: u64,
    /// The slot loop (including traffic generation).
    pub simulate_us: u64,
    /// Record draining and metric assembly.
    pub collect_us: u64,
}

impl PhaseTimings {
    /// Total wall-clock across all phases.
    pub fn total_us(&self) -> u64 {
        self.setup_us + self.simulate_us + self.collect_us
    }
}

/// Provenance for one run: everything needed to reproduce it, plus how
/// long it took. Attached to every [`RunResult`](crate::RunResult).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunManifest {
    /// The full scenario the run executed.
    pub scenario: Scenario,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Seed that produced the run.
    pub seed: u64,
    /// Slots simulated (the scenario's `sim_slots`).
    pub slot_budget: Slot,
    /// Whether event tracing was enabled for the run.
    pub traced: bool,
    /// Wall-clock per runner phase.
    pub wall_clock: PhaseTimings,
}

/// Derives counters and histograms from a run's event trace and its
/// per-message records.
///
/// Counters: `tx_frames`, `rx_ok`, `collisions`, `contention_starts`,
/// `contention_wins`, `retries`, `nav_defers`, `polls_rts`, `polls_rak`,
/// `acks_missed`, `batches`, `cover_sets`, `give_ups`.
///
/// Histograms: `contention_phases_per_msg`, `batch_len`, `idle_gap`
/// (slots between consecutive transmissions anywhere in the network),
/// `ack_coverage_per_round` (fraction of the polled batch that ACKed).
pub fn collect_metrics(
    events: &[TraceEvent],
    messages: &[rmm_stats::MessageMetric],
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let mut intervals: Vec<(Slot, Slot)> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::TxStart { slot, slots, .. } => {
                reg.inc("tx_frames");
                intervals.push((*slot, slot + Slot::from(*slots)));
            }
            TraceEvent::RxOk { .. } => reg.inc("rx_ok"),
            TraceEvent::Collision { .. } => reg.inc("collisions"),
            TraceEvent::ContentionStart { .. } => reg.inc("contention_starts"),
            TraceEvent::ContentionEnd { .. } => reg.inc("contention_wins"),
            TraceEvent::Retry { .. } => reg.inc("retries"),
            TraceEvent::NavDefer { .. } => reg.inc("nav_defers"),
            TraceEvent::PollSent { kind, .. } => {
                reg.inc(if *kind == FrameKind::Rak {
                    "polls_rak"
                } else {
                    "polls_rts"
                });
            }
            TraceEvent::AckMissed { .. } => reg.inc("acks_missed"),
            TraceEvent::BatchStart { batch, .. } => {
                reg.inc("batches");
                reg.histogram_mut("batch_len", 0.0, 32.0, 32)
                    .record(batch.len() as f64);
            }
            TraceEvent::BatchEnd { batch, acked, .. } => {
                if !batch.is_empty() {
                    reg.histogram_mut("ack_coverage_per_round", 0.0, 1.1, 11)
                        .record(acked.len() as f64 / batch.len() as f64);
                }
            }
            TraceEvent::CoverSetComputed { .. } => reg.inc("cover_sets"),
            TraceEvent::GiveUp { .. } => reg.inc("give_ups"),
        }
    }
    // Medium-idle gaps between consecutive transmissions, network-wide.
    intervals.sort_unstable();
    let mut busy_until = None;
    for &(s, e) in &intervals {
        if let Some(until) = busy_until {
            if s > until {
                reg.histogram_mut("idle_gap", 0.0, 16.0, 16)
                    .record((s - until) as f64);
            }
        }
        busy_until = Some(busy_until.map_or(e, |u: Slot| u.max(e)));
    }
    for m in messages {
        reg.histogram_mut("contention_phases_per_msg", 0.0, 16.0, 16)
            .record(f64::from(m.contention_phases));
    }
    reg
}

/// Per-station totals of slots spent in each FSM dwell state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StationDwell {
    /// Slots spent contending for the medium (ContentionStart →
    /// ContentionEnd), including DIFS waits and backoff countdowns.
    pub contention_slots: u64,
    /// Slots spent inside poll trains / batch service (BatchStart →
    /// BatchEnd).
    pub batch_slots: u64,
    /// Slots spent waiting for an ACK after a RAK poll (PollSent(RAK) →
    /// the ACK's arrival, or the AckMissed verdict).
    pub ack_wait_slots: u64,
    /// Backoff slots drawn across all contention attempts.
    pub backoff_slots: u64,
}

/// Per-station FSM dwell-time attribution derived from an event trace:
/// where each sender's slots went while serving messages. Makes
/// busy-network slowness attributable — e.g. BMW's repeated contention
/// phases show up as contention dwell, BMMM's serialized RAK/ACK trains
/// as ack-wait dwell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DwellReport {
    /// Totals per station, indexed by `NodeId`.
    pub stations: Vec<StationDwell>,
    /// Distribution of single contention-episode lengths (slots),
    /// network-wide.
    pub contention: Histogram,
    /// Distribution of single batch/poll-train lengths (slots).
    pub batch: Histogram,
    /// Distribution of single RAK→ACK waits (slots).
    pub ack_wait: Histogram,
    /// Distribution of per-attempt backoff draws (slots).
    pub backoff: Histogram,
}

impl DwellReport {
    /// Network-wide totals, summed over stations.
    pub fn network_totals(&self) -> StationDwell {
        let mut sum = StationDwell::default();
        for s in &self.stations {
            sum.contention_slots += s.contention_slots;
            sum.batch_slots += s.batch_slots;
            sum.ack_wait_slots += s.ack_wait_slots;
            sum.backoff_slots += s.backoff_slots;
        }
        sum
    }

    /// Exports the report as a metrics registry: `dwell_*_slots`
    /// counters for the network totals plus the four episode-length
    /// histograms, ready for Prometheus rendering or exact cross-run
    /// merging.
    pub fn to_registry(&self) -> MetricsRegistry {
        fn put(reg: &mut MetricsRegistry, name: &str, h: &Histogram) {
            let n = h.bins().len();
            reg.histogram_mut(name, h.bin_lo(0), h.bin_lo(n), n)
                .merge(h);
        }
        let mut reg = MetricsRegistry::new();
        let t = self.network_totals();
        reg.add("dwell_contention_slots", t.contention_slots);
        reg.add("dwell_batch_slots", t.batch_slots);
        reg.add("dwell_ack_wait_slots", t.ack_wait_slots);
        reg.add("dwell_backoff_slots", t.backoff_slots);
        put(&mut reg, "dwell_contention", &self.contention);
        put(&mut reg, "dwell_batch", &self.batch);
        put(&mut reg, "dwell_ack_wait", &self.ack_wait);
        put(&mut reg, "dwell_backoff", &self.backoff);
        reg
    }
}

/// Derives per-station FSM dwell times from a run's event trace.
///
/// Episodes are matched per station: a `ContentionStart` opens a
/// contention episode closed by the next `ContentionEnd` of the same
/// station; `BatchStart`/`BatchEnd` likewise; a RAK `PollSent` opens an
/// ack-wait closed by the ACK's `RxOk` at the poller (from the polled
/// target) or by `AckMissed`. Unclosed episodes at trace end are
/// dropped (their dwell is unknowable).
pub fn collect_dwell(events: &[TraceEvent], n_nodes: usize) -> DwellReport {
    let mut report = DwellReport {
        stations: vec![StationDwell::default(); n_nodes],
        contention: Histogram::new(0.0, 64.0, 32),
        batch: Histogram::new(0.0, 128.0, 32),
        ack_wait: Histogram::new(0.0, 32.0, 16),
        backoff: Histogram::new(0.0, 16.0, 16),
    };
    let mut contention_open: Vec<Option<Slot>> = vec![None; n_nodes];
    let mut batch_open: Vec<Option<Slot>> = vec![None; n_nodes];
    // At most one outstanding RAK per poller in every protocol here.
    let mut rak_open: Vec<Option<(Slot, NodeId)>> = vec![None; n_nodes];
    let close = |open: &mut Option<Slot>, end: Slot| open.take().map(|s| end.saturating_sub(s));
    for ev in events {
        match ev {
            TraceEvent::ContentionStart {
                slot,
                node,
                backoff_slots,
                ..
            } if node.index() < n_nodes => {
                contention_open[node.index()] = Some(*slot);
                report.stations[node.index()].backoff_slots += u64::from(*backoff_slots);
                report.backoff.record(f64::from(*backoff_slots));
            }
            TraceEvent::ContentionEnd { slot, node, .. } if node.index() < n_nodes => {
                if let Some(d) = close(&mut contention_open[node.index()], *slot) {
                    report.stations[node.index()].contention_slots += d;
                    report.contention.record(d as f64);
                }
            }
            TraceEvent::BatchStart { slot, node, .. } if node.index() < n_nodes => {
                batch_open[node.index()] = Some(*slot);
            }
            TraceEvent::BatchEnd { slot, node, .. } if node.index() < n_nodes => {
                if let Some(d) = close(&mut batch_open[node.index()], *slot) {
                    report.stations[node.index()].batch_slots += d;
                    report.batch.record(d as f64);
                }
            }
            TraceEvent::PollSent {
                slot,
                node,
                kind: FrameKind::Rak,
                target,
                ..
            } if node.index() < n_nodes => {
                rak_open[node.index()] = Some((*slot, *target));
            }
            TraceEvent::RxOk {
                slot,
                node,
                from,
                kind: FrameKind::Ack,
                ..
            } if node.index() < n_nodes => {
                if let Some((start, target)) = rak_open[node.index()] {
                    if target == *from {
                        rak_open[node.index()] = None;
                        let d = slot.saturating_sub(start);
                        report.stations[node.index()].ack_wait_slots += d;
                        report.ack_wait.record(d as f64);
                    }
                }
            }
            TraceEvent::AckMissed {
                slot, node, target, ..
            } if node.index() < n_nodes => {
                if let Some((start, polled)) = rak_open[node.index()] {
                    if polled == *target {
                        rak_open[node.index()] = None;
                        let d = slot.saturating_sub(start);
                        report.stations[node.index()].ack_wait_slots += d;
                        report.ack_wait.record(d as f64);
                    }
                }
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmm_sim::{MsgId, NodeId};

    fn msg() -> MsgId {
        MsgId::new(NodeId(0), 0)
    }

    #[test]
    fn counters_cover_every_event_kind() {
        let m = msg();
        let events = vec![
            TraceEvent::TxStart {
                slot: 0,
                node: NodeId(0),
                kind: FrameKind::Rts,
                dest: Some(NodeId(1)),
                msg: m,
                slots: 1,
            },
            TraceEvent::RxOk {
                slot: 1,
                node: NodeId(1),
                from: NodeId(0),
                kind: FrameKind::Rts,
                captured: false,
            },
            TraceEvent::ContentionStart {
                slot: 0,
                node: NodeId(0),
                msg: m,
                attempts: 1,
                backoff_slots: 3,
            },
            TraceEvent::ContentionEnd {
                slot: 4,
                node: NodeId(0),
                msg: m,
                attempts: 1,
            },
            TraceEvent::PollSent {
                slot: 4,
                node: NodeId(0),
                msg: m,
                kind: FrameKind::Rts,
                target: NodeId(1),
            },
            TraceEvent::PollSent {
                slot: 9,
                node: NodeId(0),
                msg: m,
                kind: FrameKind::Rak,
                target: NodeId(1),
            },
            TraceEvent::BatchStart {
                slot: 4,
                node: NodeId(0),
                msg: m,
                round: 1,
                batch: vec![NodeId(1), NodeId(2)],
            },
            TraceEvent::BatchEnd {
                slot: 12,
                node: NodeId(0),
                msg: m,
                round: 1,
                batch: vec![NodeId(1), NodeId(2)],
                acked: vec![NodeId(1)],
            },
            TraceEvent::AckMissed {
                slot: 12,
                node: NodeId(0),
                msg: m,
                target: NodeId(2),
            },
            TraceEvent::GiveUp {
                slot: 40,
                node: NodeId(0),
                msg: m,
                dst: NodeId(2),
                after_retries: 7,
            },
        ];
        let reg = collect_metrics(&events, &[]);
        assert_eq!(reg.counter("tx_frames"), 1);
        assert_eq!(reg.counter("rx_ok"), 1);
        assert_eq!(reg.counter("contention_starts"), 1);
        assert_eq!(reg.counter("contention_wins"), 1);
        assert_eq!(reg.counter("polls_rts"), 1);
        assert_eq!(reg.counter("polls_rak"), 1);
        assert_eq!(reg.counter("batches"), 1);
        assert_eq!(reg.counter("acks_missed"), 1);
        assert_eq!(reg.counter("give_ups"), 1);
        assert_eq!(reg.histogram("batch_len").unwrap().count(), 1);
        let cov = reg.histogram("ack_coverage_per_round").unwrap();
        assert_eq!(cov.count(), 1);
        // 1 of 2 receivers ACKed → coverage 0.5 lands in bin [0.5, 0.6).
        assert_eq!(cov.bins()[5], 1);
    }

    #[test]
    fn dwell_matches_episodes() {
        let m = msg();
        let events = vec![
            TraceEvent::ContentionStart {
                slot: 10,
                node: NodeId(0),
                msg: m,
                attempts: 1,
                backoff_slots: 3,
            },
            TraceEvent::ContentionEnd {
                slot: 17,
                node: NodeId(0),
                msg: m,
                attempts: 1,
            },
            TraceEvent::BatchStart {
                slot: 17,
                node: NodeId(0),
                msg: m,
                round: 1,
                batch: vec![NodeId(1)],
            },
            TraceEvent::PollSent {
                slot: 25,
                node: NodeId(0),
                msg: m,
                kind: FrameKind::Rak,
                target: NodeId(1),
            },
            TraceEvent::RxOk {
                slot: 27,
                node: NodeId(0),
                from: NodeId(1),
                kind: FrameKind::Ack,
                captured: false,
            },
            TraceEvent::BatchEnd {
                slot: 28,
                node: NodeId(0),
                msg: m,
                round: 1,
                batch: vec![NodeId(1)],
                acked: vec![NodeId(1)],
            },
            // A RAK whose ACK never comes, closed by the miss verdict.
            TraceEvent::PollSent {
                slot: 30,
                node: NodeId(2),
                msg: m,
                kind: FrameKind::Rak,
                target: NodeId(1),
            },
            TraceEvent::AckMissed {
                slot: 34,
                node: NodeId(2),
                msg: m,
                target: NodeId(1),
            },
        ];
        let d = collect_dwell(&events, 3);
        assert_eq!(d.stations[0].contention_slots, 7);
        assert_eq!(d.stations[0].backoff_slots, 3);
        assert_eq!(d.stations[0].batch_slots, 11);
        assert_eq!(d.stations[0].ack_wait_slots, 2);
        assert_eq!(d.stations[2].ack_wait_slots, 4);
        assert_eq!(d.stations[1], StationDwell::default());
        assert_eq!(d.contention.count(), 1);
        assert_eq!(d.batch.count(), 1);
        assert_eq!(d.ack_wait.count(), 2);
        assert_eq!(d.backoff.count(), 1);
        let totals = d.network_totals();
        assert_eq!(totals.ack_wait_slots, 6);
        assert_eq!(totals.contention_slots, 7);
        let reg = d.to_registry();
        assert_eq!(reg.counter("dwell_ack_wait_slots"), 6);
        assert_eq!(reg.counter("dwell_contention_slots"), 7);
        assert_eq!(reg.histogram("dwell_ack_wait").unwrap().count(), 2);
        assert_eq!(reg.histogram("dwell_backoff").unwrap().count(), 1);
    }

    #[test]
    fn dwell_drops_unclosed_episodes() {
        let m = msg();
        let events = vec![
            TraceEvent::ContentionStart {
                slot: 5,
                node: NodeId(0),
                msg: m,
                attempts: 1,
                backoff_slots: 2,
            },
            TraceEvent::PollSent {
                slot: 9,
                node: NodeId(0),
                msg: m,
                kind: FrameKind::Rak,
                target: NodeId(1),
            },
            // An ACK from somebody we did not poll must not close the wait.
            TraceEvent::RxOk {
                slot: 11,
                node: NodeId(0),
                from: NodeId(2),
                kind: FrameKind::Ack,
                captured: false,
            },
        ];
        let d = collect_dwell(&events, 2);
        assert_eq!(d.stations[0].contention_slots, 0);
        assert_eq!(d.stations[0].ack_wait_slots, 0);
        // The backoff draw is still counted: it happened at start.
        assert_eq!(d.stations[0].backoff_slots, 2);
        assert_eq!(d.contention.count(), 0);
        assert_eq!(d.ack_wait.count(), 0);
    }

    #[test]
    fn idle_gaps_merge_overlapping_transmissions() {
        let m = msg();
        let tx = |slot: Slot, slots: u32| TraceEvent::TxStart {
            slot,
            node: NodeId(0),
            kind: FrameKind::Data,
            dest: None,
            msg: m,
            slots,
        };
        // [0,10) with [2,3) nested inside, then [12,14): one gap of 2.
        let events = vec![tx(0, 10), tx(2, 1), tx(12, 2)];
        let reg = collect_metrics(&events, &[]);
        let h = reg.histogram("idle_gap").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.bins()[2], 1);
    }
}
