//! Run observability: provenance manifests, per-phase wall-clock
//! timings, and metrics derived from a protocol event trace.

use crate::scenario::Scenario;
use rmm_mac::ProtocolKind;
use rmm_sim::{FrameKind, Slot, TraceEvent};
use rmm_stats::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Wall-clock spent in each phase of one run, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Topology sampling, station construction, engine setup.
    pub setup_us: u64,
    /// The slot loop (including traffic generation).
    pub simulate_us: u64,
    /// Record draining and metric assembly.
    pub collect_us: u64,
}

impl PhaseTimings {
    /// Total wall-clock across all phases.
    pub fn total_us(&self) -> u64 {
        self.setup_us + self.simulate_us + self.collect_us
    }
}

/// Provenance for one run: everything needed to reproduce it, plus how
/// long it took. Attached to every [`RunResult`](crate::RunResult).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunManifest {
    /// The full scenario the run executed.
    pub scenario: Scenario,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Seed that produced the run.
    pub seed: u64,
    /// Slots simulated (the scenario's `sim_slots`).
    pub slot_budget: Slot,
    /// Whether event tracing was enabled for the run.
    pub traced: bool,
    /// Wall-clock per runner phase.
    pub wall_clock: PhaseTimings,
}

/// Derives counters and histograms from a run's event trace and its
/// per-message records.
///
/// Counters: `tx_frames`, `rx_ok`, `collisions`, `contention_starts`,
/// `contention_wins`, `retries`, `nav_defers`, `polls_rts`, `polls_rak`,
/// `acks_missed`, `batches`, `cover_sets`, `give_ups`.
///
/// Histograms: `contention_phases_per_msg`, `batch_len`, `idle_gap`
/// (slots between consecutive transmissions anywhere in the network),
/// `ack_coverage_per_round` (fraction of the polled batch that ACKed).
pub fn collect_metrics(
    events: &[TraceEvent],
    messages: &[rmm_stats::MessageMetric],
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let mut intervals: Vec<(Slot, Slot)> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::TxStart { slot, slots, .. } => {
                reg.inc("tx_frames");
                intervals.push((*slot, slot + Slot::from(*slots)));
            }
            TraceEvent::RxOk { .. } => reg.inc("rx_ok"),
            TraceEvent::Collision { .. } => reg.inc("collisions"),
            TraceEvent::ContentionStart { .. } => reg.inc("contention_starts"),
            TraceEvent::ContentionEnd { .. } => reg.inc("contention_wins"),
            TraceEvent::Retry { .. } => reg.inc("retries"),
            TraceEvent::NavDefer { .. } => reg.inc("nav_defers"),
            TraceEvent::PollSent { kind, .. } => {
                reg.inc(if *kind == FrameKind::Rak {
                    "polls_rak"
                } else {
                    "polls_rts"
                });
            }
            TraceEvent::AckMissed { .. } => reg.inc("acks_missed"),
            TraceEvent::BatchStart { batch, .. } => {
                reg.inc("batches");
                reg.histogram_mut("batch_len", 0.0, 32.0, 32)
                    .record(batch.len() as f64);
            }
            TraceEvent::BatchEnd { batch, acked, .. } => {
                if !batch.is_empty() {
                    reg.histogram_mut("ack_coverage_per_round", 0.0, 1.1, 11)
                        .record(acked.len() as f64 / batch.len() as f64);
                }
            }
            TraceEvent::CoverSetComputed { .. } => reg.inc("cover_sets"),
            TraceEvent::GiveUp { .. } => reg.inc("give_ups"),
        }
    }
    // Medium-idle gaps between consecutive transmissions, network-wide.
    intervals.sort_unstable();
    let mut busy_until = None;
    for &(s, e) in &intervals {
        if let Some(until) = busy_until {
            if s > until {
                reg.histogram_mut("idle_gap", 0.0, 16.0, 16)
                    .record((s - until) as f64);
            }
        }
        busy_until = Some(busy_until.map_or(e, |u: Slot| u.max(e)));
    }
    for m in messages {
        reg.histogram_mut("contention_phases_per_msg", 0.0, 16.0, 16)
            .record(f64::from(m.contention_phases));
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmm_sim::{MsgId, NodeId};

    fn msg() -> MsgId {
        MsgId::new(NodeId(0), 0)
    }

    #[test]
    fn counters_cover_every_event_kind() {
        let m = msg();
        let events = vec![
            TraceEvent::TxStart {
                slot: 0,
                node: NodeId(0),
                kind: FrameKind::Rts,
                dest: Some(NodeId(1)),
                msg: m,
                slots: 1,
            },
            TraceEvent::RxOk {
                slot: 1,
                node: NodeId(1),
                from: NodeId(0),
                kind: FrameKind::Rts,
                captured: false,
            },
            TraceEvent::ContentionStart {
                slot: 0,
                node: NodeId(0),
                msg: m,
                attempts: 1,
                backoff_slots: 3,
            },
            TraceEvent::ContentionEnd {
                slot: 4,
                node: NodeId(0),
                msg: m,
                attempts: 1,
            },
            TraceEvent::PollSent {
                slot: 4,
                node: NodeId(0),
                msg: m,
                kind: FrameKind::Rts,
                target: NodeId(1),
            },
            TraceEvent::PollSent {
                slot: 9,
                node: NodeId(0),
                msg: m,
                kind: FrameKind::Rak,
                target: NodeId(1),
            },
            TraceEvent::BatchStart {
                slot: 4,
                node: NodeId(0),
                msg: m,
                round: 1,
                batch: vec![NodeId(1), NodeId(2)],
            },
            TraceEvent::BatchEnd {
                slot: 12,
                node: NodeId(0),
                msg: m,
                round: 1,
                batch: vec![NodeId(1), NodeId(2)],
                acked: vec![NodeId(1)],
            },
            TraceEvent::AckMissed {
                slot: 12,
                node: NodeId(0),
                msg: m,
                target: NodeId(2),
            },
            TraceEvent::GiveUp {
                slot: 40,
                node: NodeId(0),
                msg: m,
                dst: NodeId(2),
                after_retries: 7,
            },
        ];
        let reg = collect_metrics(&events, &[]);
        assert_eq!(reg.counter("tx_frames"), 1);
        assert_eq!(reg.counter("rx_ok"), 1);
        assert_eq!(reg.counter("contention_starts"), 1);
        assert_eq!(reg.counter("contention_wins"), 1);
        assert_eq!(reg.counter("polls_rts"), 1);
        assert_eq!(reg.counter("polls_rak"), 1);
        assert_eq!(reg.counter("batches"), 1);
        assert_eq!(reg.counter("acks_missed"), 1);
        assert_eq!(reg.counter("give_ups"), 1);
        assert_eq!(reg.histogram("batch_len").unwrap().count(), 1);
        let cov = reg.histogram("ack_coverage_per_round").unwrap();
        assert_eq!(cov.count(), 1);
        // 1 of 2 receivers ACKed → coverage 0.5 lands in bin [0.5, 0.6).
        assert_eq!(cov.bins()[5], 1);
    }

    #[test]
    fn idle_gaps_merge_overlapping_transmissions() {
        let m = msg();
        let tx = |slot: Slot, slots: u32| TraceEvent::TxStart {
            slot,
            node: NodeId(0),
            kind: FrameKind::Data,
            dest: None,
            msg: m,
            slots,
        };
        // [0,10) with [2,3) nested inside, then [12,14): one gap of 2.
        let events = vec![tx(0, 10), tx(2, 1), tx(12, 2)];
        let reg = collect_metrics(&events, &[]);
        let h = reg.histogram("idle_gap").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.bins()[2], 1);
    }
}
