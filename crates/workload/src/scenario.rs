//! Scenario configuration (the paper's Table 2, as a struct).

use crate::churn::ChurnPlan;
use crate::traffic::TrafficMix;
use rmm_mac::MacTiming;
use rmm_sim::{Capture, FaultPlan, GilbertElliott};
use serde::{Deserialize, Serialize};

/// A complete simulation scenario. [`Scenario::default`] is the paper's
/// Table 2 configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of stations (paper: 100).
    pub n_nodes: usize,
    /// Transmission radius in the unit square (paper: 0.2).
    pub radius: f64,
    /// Run length in slots (paper: 10 000).
    pub sim_slots: u64,
    /// Message generation rate per node per slot (paper: 5·10⁻⁴).
    pub msg_rate: f64,
    /// Unicast / multicast / broadcast mix (paper: 0.2 / 0.4 / 0.4).
    pub mix: TrafficMix,
    /// Reliability threshold for the success criterion (paper: 0.9).
    pub reliability_threshold: f64,
    /// Capture model (paper: DS capture per Zorzi–Rao).
    pub capture: Capture,
    /// Independent frame error rate (non-collision transmission errors;
    /// folded into the analysis' `q`). Paper default: collisions only.
    pub fer: f64,
    /// Standard deviation of the Gaussian error applied to the positions
    /// stations advertise in beacons (GPS inaccuracy). Only LAMM reads
    /// positions; the channel always uses ground truth.
    pub position_noise: f64,
    /// MAC timing (includes the 100-slot timeout and 5-slot data time).
    pub timing: MacTiming,
    /// Number of independent runs to average (paper: 100).
    pub n_runs: usize,
    /// Scheduled node faults (crash / deaf / TX-mute). Empty by default;
    /// an empty plan leaves the run bit-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Gilbert–Elliott burst-error channel, applied per receiver on its
    /// own RNG stream. `None` keeps the i.i.d. `fer` model only.
    pub burst: Option<GilbertElliott>,
    /// Liveness watchdog period in slots: every multiple of this window
    /// the runner checks each sender for forward progress and files a
    /// [`StallReport`](crate::StallReport) for wedged ones. `None`
    /// disables the watchdog.
    pub stall_window: Option<u64>,
    /// Scheduled group-membership churn (leave / rejoin). Empty by
    /// default; an empty plan leaves the run bit-identical to a
    /// churn-free build.
    pub churn: ChurnPlan,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            n_nodes: 100,
            radius: 0.2,
            sim_slots: 10_000,
            msg_rate: 5e-4,
            mix: TrafficMix::default(),
            reliability_threshold: 0.9,
            capture: Capture::ZorziRao,
            fer: 0.0,
            position_noise: 0.0,
            timing: MacTiming::default(),
            n_runs: 100,
            faults: FaultPlan::new(),
            burst: None,
            stall_window: None,
            churn: ChurnPlan::new(),
        }
    }
}

impl Scenario {
    /// Scenario with a different timeout (Figure 7's sweep axis).
    pub fn with_timeout(mut self, timeout: u64) -> Self {
        self.timing.timeout = timeout;
        self
    }

    /// Scenario with a different node count (density sweeps).
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.n_nodes = n;
        self
    }

    /// Scenario with a different message rate (load sweeps).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.msg_rate = rate;
        self
    }

    /// Scenario with a different reliability threshold (Figure 8).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.reliability_threshold = threshold;
        self
    }

    /// Scenario with a different frame error rate.
    pub fn with_fer(mut self, fer: f64) -> Self {
        self.fer = fer;
        self
    }

    /// Scenario with Gaussian beacon-position noise (std deviation).
    pub fn with_position_noise(mut self, sigma: f64) -> Self {
        self.position_noise = sigma;
        self
    }

    /// Scenario with a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Scenario with a Gilbert–Elliott burst-error channel.
    pub fn with_burst(mut self, model: GilbertElliott) -> Self {
        self.burst = Some(model);
        self
    }

    /// Scenario with the liveness watchdog enabled at the given period.
    pub fn with_stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// Scenario with a group-membership churn plan.
    pub fn with_churn(mut self, churn: ChurnPlan) -> Self {
        self.churn = churn;
        self
    }
}

/// Fingerprint of the [`Scenario`] *serialization shape*.
///
/// A probe scenario with every optional subsystem populated (all four
/// fault kinds, churn, burst channel, watchdog, position noise — so
/// every nested shape appears in the JSON) is serialized and its
/// structure hashed: key names, nesting, and enum tags, with numbers
/// and booleans reduced to their JSON type so value changes don't
/// matter. Sweep manifests and the serve result cache stamp this into
/// their headers ([`rmm_fleet::ManifestHeader::schema`]); adding,
/// renaming, or moving a `Scenario` field therefore invalidates cached
/// entries even when the stored options string would still parse —
/// stale digests self-invalidate instead of silently resurrecting.
pub fn scenario_schema_hash() -> u32 {
    let probe = Scenario::default()
        .with_faults(
            rmm_sim::FaultPlan::parse("crash:0@1;deaf:1@1..2;mute:2@1..2;reboot:3@1..2")
                .expect("probe fault plan parses"),
        )
        .with_churn(ChurnPlan::parse("leave:0@1;join:0@2").expect("probe churn plan parses"))
        .with_burst(GilbertElliott::new(0.1, 0.9))
        .with_stall_window(1)
        .with_position_noise(0.1);
    let mut h = rmm_fleet::Fnv1a::new();
    walk_shape(&serde_json::to_value(&probe), &mut h);
    let h = h.finish();
    (h >> 32) as u32 ^ h as u32
}

/// Feeds a JSON value's structure (not its numeric/boolean content)
/// into the hasher. Strings keep their content: on the fixed probe they
/// are enum tags and spec strings, which are part of the shape.
fn walk_shape(v: &serde_json::Value, h: &mut rmm_fleet::Fnv1a) {
    use serde_json::Value;
    match v {
        Value::Null => h.write_str("null"),
        Value::Bool(_) => h.write_str("bool"),
        Value::Number(_) => h.write_str("num"),
        Value::String(s) => {
            h.write_str("str");
            h.write_str(s);
        }
        Value::Array(items) => {
            h.write_str("[");
            for item in items {
                walk_shape(item, h);
            }
            h.write_str("]");
        }
        Value::Object(map) => {
            h.write_str("{");
            for (k, val) in map.iter() {
                h.write_str(k);
                walk_shape(val, h);
            }
            h.write_str("}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let s = Scenario::default();
        assert_eq!(s.n_nodes, 100);
        assert_eq!(s.radius, 0.2);
        assert_eq!(s.sim_slots, 10_000);
        assert_eq!(s.msg_rate, 5e-4);
        assert_eq!(s.timing.timeout, 100);
        assert_eq!(s.timing.data_slots, 5);
        assert_eq!(s.reliability_threshold, 0.9);
        assert_eq!(s.mix.unicast, 0.2);
        assert_eq!(s.mix.multicast, 0.4);
        assert_eq!(s.mix.broadcast, 0.4);
        assert_eq!(s.n_runs, 100);
        assert_eq!(s.capture, Capture::ZorziRao);
        assert!(s.faults.is_empty());
        assert!(s.burst.is_none());
        assert!(s.stall_window.is_none());
        assert!(s.churn.is_empty());
    }

    #[test]
    fn builders_update_fields() {
        let s = Scenario::default()
            .with_timeout(300)
            .with_nodes(150)
            .with_rate(1e-3)
            .with_threshold(0.5);
        assert_eq!(s.timing.timeout, 300);
        assert_eq!(s.n_nodes, 150);
        assert_eq!(s.msg_rate, 1e-3);
        assert_eq!(s.reliability_threshold, 0.5);
    }

    #[test]
    fn scenario_serializes() {
        let s = Scenario::default();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // With the fault machinery configured, too.
        let s = Scenario::default()
            .with_faults(FaultPlan::parse("crash:5@1000;deaf:3@200..800").unwrap())
            .with_burst(GilbertElliott::new(0.05, 0.25))
            .with_stall_window(500)
            .with_churn(ChurnPlan::parse("leave:3@500;join:3@900").unwrap());
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn schema_hash_is_stable_and_shape_sensitive() {
        // Deterministic across calls (it goes into persistent headers).
        assert_eq!(scenario_schema_hash(), scenario_schema_hash());
        // The walk sees key names and nesting, not numeric values.
        let shape = |v: &serde_json::Value| {
            let mut h = rmm_fleet::Fnv1a::new();
            walk_shape(v, &mut h);
            h.finish()
        };
        let a: serde_json::Value = serde_json::from_str("{\"n\":1,\"r\":[2,3]}").unwrap();
        let same_shape: serde_json::Value = serde_json::from_str("{\"n\":9,\"r\":[7,8]}").unwrap();
        let renamed: serde_json::Value = serde_json::from_str("{\"m\":1,\"r\":[2,3]}").unwrap();
        let nested: serde_json::Value =
            serde_json::from_str("{\"n\":{\"x\":1},\"r\":[2,3]}").unwrap();
        assert_eq!(shape(&a), shape(&same_shape));
        assert_ne!(shape(&a), shape(&renamed));
        assert_ne!(shape(&a), shape(&nested));
    }
}
