//! Traffic generation: Bernoulli per-node arrivals with the paper's
//! unicast / multicast / broadcast mix.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_mac::TrafficKind;
use rmm_sim::{NodeId, Slot, Topology};
use serde::{Deserialize, Serialize};

/// Message-type mix (must sum to ≤ 1; the remainder generates nothing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Fraction of unicast messages (paper: 0.2).
    pub unicast: f64,
    /// Fraction of multicast messages (paper: 0.4).
    pub multicast: f64,
    /// Fraction of broadcast messages (paper: 0.4).
    pub broadcast: f64,
}

impl Default for TrafficMix {
    fn default() -> Self {
        TrafficMix {
            unicast: 0.2,
            multicast: 0.4,
            broadcast: 0.4,
        }
    }
}

impl TrafficMix {
    /// Draws a message kind from the mix.
    pub fn draw(&self, rng: &mut SmallRng) -> TrafficKind {
        let x: f64 = rng.random::<f64>() * (self.unicast + self.multicast + self.broadcast);
        if x < self.unicast {
            TrafficKind::Unicast
        } else if x < self.unicast + self.multicast {
            TrafficKind::Multicast
        } else {
            TrafficKind::Broadcast
        }
    }
}

/// Per-slot Bernoulli arrival generator.
///
/// Each slot, each station generates a message with probability `rate`
/// (paper: 5·10⁻⁴ per node per slot). Receiver selection, per the paper's
/// model (the request "indicates the set of neighbors required to reach
/// all the members of the intended multicast group"):
///
/// * unicast → one uniformly-chosen neighbor,
/// * multicast → a uniformly-sized random subset of the neighbors
///   (size drawn from `1..=degree`),
/// * broadcast → all neighbors.
///
/// Stations with no neighbors generate no traffic.
#[derive(Debug)]
pub struct TrafficGen {
    rate: f64,
    mix: TrafficMix,
    rng: SmallRng,
}

/// One generated arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Originating station.
    pub node: NodeId,
    /// Traffic class.
    pub kind: TrafficKind,
    /// Intended receivers.
    pub receivers: Vec<NodeId>,
}

impl TrafficGen {
    /// Creates a generator.
    pub fn new(rate: f64, mix: TrafficMix, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        TrafficGen {
            rate,
            mix,
            rng: SmallRng::seed_from_u64(seed ^ 0xa5a5_5a5a_dead_beef),
        }
    }

    /// Generates this slot's arrivals across all stations.
    pub fn tick(&mut self, topo: &Topology, _now: Slot, out: &mut Vec<Arrival>) {
        out.clear();
        for i in 0..topo.len() {
            if self.rng.random::<f64>() >= self.rate {
                continue;
            }
            let node = NodeId(i as u32);
            let neighbors = topo.neighbors(node);
            if neighbors.is_empty() {
                continue;
            }
            let kind = self.mix.draw(&mut self.rng);
            let receivers = match kind {
                TrafficKind::Unicast => {
                    vec![neighbors[self.rng.random_range(0..neighbors.len())]]
                }
                TrafficKind::Broadcast => neighbors.to_vec(),
                TrafficKind::Multicast => {
                    let size = self.rng.random_range(1..=neighbors.len());
                    // Partial Fisher–Yates over a scratch copy.
                    let mut pool = neighbors.to_vec();
                    for j in 0..size {
                        let k = self.rng.random_range(j..pool.len());
                        pool.swap(j, k);
                    }
                    pool.truncate(size);
                    pool
                }
            };
            out.push(Arrival {
                node,
                kind,
                receivers,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::uniform_square;

    #[test]
    fn mix_draw_respects_ratios() {
        let mix = TrafficMix::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            match mix.draw(&mut rng) {
                TrafficKind::Unicast => counts[0] += 1,
                TrafficKind::Multicast => counts[1] += 1,
                TrafficKind::Broadcast => counts[2] += 1,
            }
        }
        let total = 30_000.0;
        assert!((counts[0] as f64 / total - 0.2).abs() < 0.02);
        assert!((counts[1] as f64 / total - 0.4).abs() < 0.02);
        assert!((counts[2] as f64 / total - 0.4).abs() < 0.02);
    }

    #[test]
    fn arrival_rate_matches_configuration() {
        let topo = uniform_square(100, 0.2, 3);
        let mut gen = TrafficGen::new(0.01, TrafficMix::default(), 5);
        let mut out = Vec::new();
        let mut total = 0usize;
        let slots = 2_000;
        for t in 0..slots {
            gen.tick(&topo, t, &mut out);
            total += out.len();
        }
        // Expect ≈ rate · nodes · slots (isolated nodes generate none; at
        // this density nearly all nodes have neighbors).
        let expect = 0.01 * 100.0 * slots as f64;
        assert!(
            (total as f64) > expect * 0.85 && (total as f64) < expect * 1.15,
            "total {total}, expected ≈ {expect}"
        );
    }

    #[test]
    fn receivers_are_always_neighbors() {
        let topo = uniform_square(60, 0.2, 9);
        let mut gen = TrafficGen::new(0.05, TrafficMix::default(), 9);
        let mut out = Vec::new();
        for t in 0..500 {
            gen.tick(&topo, t, &mut out);
            for a in &out {
                assert!(!a.receivers.is_empty());
                for r in &a.receivers {
                    assert!(
                        topo.neighbors(a.node).contains(r),
                        "{r} not a neighbor of {}",
                        a.node
                    );
                }
                // No duplicates.
                let mut rs = a.receivers.clone();
                rs.sort();
                rs.dedup();
                assert_eq!(rs.len(), a.receivers.len());
            }
        }
    }

    #[test]
    fn unicast_has_one_receiver_broadcast_has_all() {
        let topo = uniform_square(60, 0.2, 10);
        let mut gen = TrafficGen::new(0.05, TrafficMix::default(), 10);
        let mut out = Vec::new();
        let mut seen_unicast = false;
        let mut seen_broadcast = false;
        for t in 0..2_000 {
            gen.tick(&topo, t, &mut out);
            for a in &out {
                match a.kind {
                    TrafficKind::Unicast => {
                        assert_eq!(a.receivers.len(), 1);
                        seen_unicast = true;
                    }
                    TrafficKind::Broadcast => {
                        assert_eq!(a.receivers.len(), topo.neighbors(a.node).len());
                        seen_broadcast = true;
                    }
                    TrafficKind::Multicast => {
                        assert!(a.receivers.len() <= topo.neighbors(a.node).len());
                    }
                }
            }
        }
        assert!(seen_unicast && seen_broadcast);
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let topo = uniform_square(50, 0.2, 2);
        let mut gen = TrafficGen::new(0.0, TrafficMix::default(), 2);
        let mut out = Vec::new();
        for t in 0..100 {
            gen.tick(&topo, t, &mut out);
            assert!(out.is_empty());
        }
    }
}
