//! Seeded group-membership churn: join/leave/rejoin schedules per
//! station, applied at slot boundaries.
//!
//! Membership is *logical*, layered above the radio: a station that has
//! left the group keeps its radio on (it still decodes frames, still
//! defers to the NAV), but the traffic generator stops addressing
//! messages to it and stops originating messages from it — the plan
//! rewrites each arrival's receiver list at its arrival slot. Like the
//! fault plan, a [`ChurnPlan`] is a pure function of `(node, slot)`: it
//! draws no randomness at simulation time, the filtering happens *after*
//! the traffic generator's RNG draws, and an empty plan leaves the run
//! bit-identical to a churn-free build.
//!
//! Every station starts as a group member; events toggle membership, so
//! a node's first event is always a `leave` and events alternate
//! leave/join from there ([`ChurnPlan::validate`] enforces this).
//!
//! Delivery metrics are split by **membership epoch** — the intervals
//! between consecutive churn events — so reachable-delivery accounting
//! stays honest while the group composition moves under the senders.

use crate::traffic::Arrival;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_sim::{NodeId, Slot, SpecError};
use rmm_stats::{MessageMetric, RunMetrics};
use serde::{Deserialize, Serialize};

/// The direction of one membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The node leaves the multicast group at `at`.
    Leave,
    /// The node (re)joins the multicast group at `at`.
    Join,
}

impl ChurnKind {
    fn tag(self) -> &'static str {
        match self {
            ChurnKind::Leave => "leave",
            ChurnKind::Join => "join",
        }
    }
}

/// One scheduled membership change: `node` is a member up to (for
/// `Leave`) or from (for `Join`) slot `at`, inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// The station whose membership changes.
    pub node: NodeId,
    /// What happens.
    pub kind: ChurnKind,
    /// First slot at which the new membership state holds.
    pub at: Slot,
}

impl ChurnEvent {
    fn entry_spec(&self) -> String {
        format!("{}:{}@{}", self.kind.tag(), self.node.0, self.at)
    }
}

/// A deterministic schedule of membership changes, applied by the
/// workload runner at arrival slots.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// The scheduled membership changes.
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan (everyone is a member throughout).
    pub fn new() -> Self {
        ChurnPlan::default()
    }

    /// Whether the plan schedules no membership changes at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a leave of `node` effective at slot `at`.
    pub fn leave(mut self, node: NodeId, at: Slot) -> Self {
        self.events.push(ChurnEvent {
            node,
            kind: ChurnKind::Leave,
            at,
        });
        self
    }

    /// Adds a (re)join of `node` effective at slot `at`.
    pub fn join(mut self, node: NodeId, at: Slot) -> Self {
        self.events.push(ChurnEvent {
            node,
            kind: ChurnKind::Join,
            at,
        });
        self
    }

    /// Whether `node` is a group member at `slot`. Every node starts as
    /// a member; the latest event at or before `slot` decides.
    pub fn member_at(&self, node: NodeId, slot: Slot) -> bool {
        let mut best: Option<(Slot, ChurnKind)> = None;
        for e in &self.events {
            if e.node == node && e.at <= slot && best.is_none_or(|(at, _)| e.at >= at) {
                best = Some((e.at, e.kind));
            }
        }
        !matches!(best, Some((_, ChurnKind::Leave)))
    }

    /// Whether `node` is a member for the whole window `[from, to)` —
    /// the membership analogue of an unimpaired fault window, used to
    /// decide whether a receiver counts as reachable for a message.
    pub fn member_during(&self, node: NodeId, from: Slot, to: Slot) -> bool {
        if to <= from {
            return true;
        }
        self.member_at(node, from)
            && !self
                .events
                .iter()
                .any(|e| e.node == node && e.kind == ChurnKind::Leave && e.at > from && e.at < to)
    }

    /// The sorted, deduplicated slots at which any membership changes —
    /// the epoch boundaries. `n` boundaries divide a run into `n + 1`
    /// epochs.
    pub fn epoch_boundaries(&self) -> Vec<Slot> {
        let mut bounds: Vec<Slot> = self.events.iter().map(|e| e.at).collect();
        bounds.sort_unstable();
        bounds.dedup();
        bounds
    }

    /// The membership epoch `slot` falls in (epoch 0 runs from slot 0 to
    /// the first boundary).
    pub fn epoch_of(&self, slot: Slot) -> usize {
        self.epoch_boundaries().partition_point(|&b| b <= slot)
    }

    /// Drops arrivals the plan forbids at `now`: a non-member neither
    /// originates messages nor appears in any receiver list, and an
    /// arrival whose receiver list empties out is dropped whole. Called
    /// *after* the traffic generator's draws for the slot, so the RNG
    /// stream is untouched and an empty plan changes nothing.
    pub fn filter_arrivals(&self, now: Slot, arrivals: &mut Vec<Arrival>) {
        if self.is_empty() {
            return;
        }
        arrivals.retain_mut(|a| {
            if !self.member_at(a.node, now) {
                return false;
            }
            a.receivers.retain(|r| self.member_at(*r, now));
            !a.receivers.is_empty()
        });
    }

    /// Splits group-delivery metrics by membership epoch: every group
    /// message is bucketed by the epoch its arrival falls in. Empty when
    /// the plan is empty (no epochs to split by).
    pub fn epoch_metrics(&self, messages: &[MessageMetric], threshold: f64) -> Vec<EpochMetrics> {
        if self.is_empty() {
            return Vec::new();
        }
        let bounds = self.epoch_boundaries();
        let mut out = Vec::with_capacity(bounds.len() + 1);
        for epoch in 0..=bounds.len() {
            let from = if epoch == 0 { 0 } else { bounds[epoch - 1] };
            let until = bounds.get(epoch).copied();
            let in_epoch: Vec<MessageMetric> = messages
                .iter()
                .filter(|m| m.is_group && m.arrival >= from && until.is_none_or(|u| m.arrival < u))
                .cloned()
                .collect();
            out.push(EpochMetrics {
                epoch,
                from,
                until,
                group_metrics: RunMetrics::compute(&in_epoch, threshold),
            });
        }
        out
    }

    /// Validates the plan against a network of `n_nodes` stations: node
    /// ids in range, at most one event per node per slot, and each
    /// node's events alternating starting from `leave` (everyone starts
    /// as a member, so a join-first or leave-while-out schedule is a
    /// typo).
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        for e in &self.events {
            if e.node.index() >= n_nodes {
                return Err(format!(
                    "churn event `{}` names node {} but the network has {} nodes (ids 0..={})",
                    e.entry_spec(),
                    e.node.0,
                    n_nodes,
                    n_nodes.saturating_sub(1)
                ));
            }
        }
        let mut nodes: Vec<NodeId> = self.events.iter().map(|e| e.node).collect();
        nodes.sort_unstable_by_key(|n| n.0);
        nodes.dedup();
        for node in nodes {
            let mut evs: Vec<&ChurnEvent> = self.events.iter().filter(|e| e.node == node).collect();
            evs.sort_by_key(|e| e.at);
            let mut member = true;
            let mut prev_at: Option<Slot> = None;
            for e in evs {
                if prev_at == Some(e.at) {
                    return Err(format!(
                        "node {} has two churn events at slot {}",
                        node.0, e.at
                    ));
                }
                prev_at = Some(e.at);
                match (member, e.kind) {
                    (true, ChurnKind::Leave) => member = false,
                    (false, ChurnKind::Join) => member = true,
                    (true, ChurnKind::Join) => {
                        return Err(format!(
                            "`{}` joins node {} which is already a member (every node starts in the group)",
                            e.entry_spec(),
                            node.0
                        ));
                    }
                    (false, ChurnKind::Leave) => {
                        return Err(format!(
                            "`{}` leaves node {} which has already left",
                            e.entry_spec(),
                            node.0
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// A seeded random churn schedule: `churners` distinct nodes drawn
    /// from `1..n_nodes` (node 0 is spared, mirroring
    /// [`rmm_sim::FaultPlan::random_crashes`]) each get one or two
    /// leave→rejoin cycles inside `(0, sim_slots)`. The same seed always
    /// yields the same — always valid — schedule.
    pub fn random(n_nodes: usize, churners: usize, sim_slots: Slot, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0063_6875_726e); // "churn"
        let pool = n_nodes.saturating_sub(1);
        let churners = churners.min(pool);
        let mut victims: Vec<u32> = Vec::new();
        while victims.len() < churners {
            let v = rng.random_range(1..n_nodes) as u32;
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        victims.sort_unstable();
        let mut plan = ChurnPlan::new();
        let span = sim_slots.max(4);
        for v in victims {
            let cycles = rng.random_range(1..=2u32);
            // Draw 2·cycles distinct slots and alternate leave/join over
            // them in order, which is valid by construction.
            let mut slots: Vec<Slot> = Vec::new();
            while slots.len() < 2 * cycles as usize {
                let s = rng.random_range(1..span);
                if !slots.contains(&s) {
                    slots.push(s);
                }
            }
            slots.sort_unstable();
            for (i, s) in slots.into_iter().enumerate() {
                plan = if i % 2 == 0 {
                    plan.leave(NodeId(v), s)
                } else {
                    plan.join(NodeId(v), s)
                };
            }
        }
        plan
    }

    /// Parses a semicolon-separated churn spec, e.g.
    /// `leave:3@500;join:3@900`. Each entry is `leave:node@slot` or
    /// `join:node@slot`. Errors carry the byte span of the offending
    /// token, like [`rmm_sim::FaultPlan::parse`].
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let mut plan = ChurnPlan::new();
        for raw in spec.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind_s, rest) = entry.split_once(':').ok_or_else(|| {
                SpecError::at(
                    spec,
                    entry,
                    format!("churn entry `{entry}` missing `kind:`"),
                )
            })?;
            let kind = match kind_s {
                "leave" => ChurnKind::Leave,
                "join" => ChurnKind::Join,
                other => {
                    return Err(SpecError::at(
                        spec,
                        kind_s,
                        format!("unknown churn kind `{other}` (expected leave or join)"),
                    ))
                }
            };
            let (node_s, at_s) = rest.split_once('@').ok_or_else(|| {
                SpecError::at(
                    spec,
                    entry,
                    format!("churn entry `{entry}` missing `@slot`"),
                )
            })?;
            let node: u32 = node_s
                .parse()
                .map_err(|_| SpecError::at(spec, node_s, format!("bad node id `{node_s}`")))?;
            let at: Slot = at_s
                .parse()
                .map_err(|_| SpecError::at(spec, at_s, format!("bad slot `{at_s}`")))?;
            plan.events.push(ChurnEvent {
                node: NodeId(node),
                kind,
                at,
            });
        }
        Ok(plan)
    }

    /// Renders the plan back into the [`ChurnPlan::parse`] spec syntax.
    pub fn spec(&self) -> String {
        self.events
            .iter()
            .map(ChurnEvent::entry_spec)
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// Group-delivery metrics over the messages arriving within one
/// membership epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Epoch index (0 = from slot 0 to the first churn event).
    pub epoch: usize,
    /// First slot of the epoch.
    pub from: Slot,
    /// One past the last slot (`None` = runs to the end of the
    /// simulation).
    pub until: Option<Slot>,
    /// Aggregates over group messages arriving in the epoch.
    pub group_metrics: RunMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmm_mac::TrafficKind;

    #[test]
    fn membership_toggles_and_defaults_to_member() {
        let plan = ChurnPlan::new()
            .leave(NodeId(3), 500)
            .join(NodeId(3), 900)
            .leave(NodeId(5), 200);
        assert!(plan.member_at(NodeId(3), 0));
        assert!(plan.member_at(NodeId(3), 499));
        assert!(!plan.member_at(NodeId(3), 500));
        assert!(!plan.member_at(NodeId(3), 899));
        assert!(plan.member_at(NodeId(3), 900));
        assert!(!plan.member_at(NodeId(5), 10_000));
        // Untouched nodes are members forever.
        assert!(plan.member_at(NodeId(0), 123_456));
        assert!(plan.validate(10).is_ok());
    }

    #[test]
    fn member_during_requires_whole_window() {
        let plan = ChurnPlan::new().leave(NodeId(3), 500).join(NodeId(3), 900);
        assert!(plan.member_during(NodeId(3), 0, 500));
        assert!(!plan.member_during(NodeId(3), 0, 501));
        assert!(!plan.member_during(NodeId(3), 499, 600));
        assert!(
            !plan.member_during(NodeId(3), 600, 700),
            "out the whole time"
        );
        assert!(plan.member_during(NodeId(3), 900, 2_000));
        // A leave *inside* the window spoils it even if the node is back
        // by the end.
        assert!(!plan.member_during(NodeId(3), 400, 1_000));
        // Degenerate window is vacuously fine.
        assert!(plan.member_during(NodeId(3), 600, 600));
    }

    #[test]
    fn epochs_partition_the_run() {
        let plan = ChurnPlan::new()
            .leave(NodeId(1), 300)
            .leave(NodeId(2), 700)
            .join(NodeId(1), 700);
        assert_eq!(plan.epoch_boundaries(), vec![300, 700]);
        assert_eq!(plan.epoch_of(0), 0);
        assert_eq!(plan.epoch_of(299), 0);
        assert_eq!(plan.epoch_of(300), 1);
        assert_eq!(plan.epoch_of(700), 2);
        assert_eq!(plan.epoch_of(10_000), 2);
        assert_eq!(ChurnPlan::new().epoch_of(5), 0);
    }

    #[test]
    fn filter_drops_non_member_senders_and_receivers() {
        let plan = ChurnPlan::new().leave(NodeId(1), 100).leave(NodeId(2), 100);
        let mk = || {
            vec![
                Arrival {
                    node: NodeId(1),
                    kind: TrafficKind::Multicast,
                    receivers: vec![NodeId(0), NodeId(3)],
                },
                Arrival {
                    node: NodeId(0),
                    kind: TrafficKind::Multicast,
                    receivers: vec![NodeId(1), NodeId(3)],
                },
                Arrival {
                    node: NodeId(3),
                    kind: TrafficKind::Unicast,
                    receivers: vec![NodeId(2)],
                },
            ]
        };
        // Before the boundary nothing is filtered.
        let mut arrivals = mk();
        plan.filter_arrivals(99, &mut arrivals);
        assert_eq!(arrivals.len(), 3);
        // After it: node 1's own arrival dies, node 0's loses receiver 1,
        // and node 3's unicast to the departed node 2 empties out.
        let mut arrivals = mk();
        plan.filter_arrivals(100, &mut arrivals);
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].node, NodeId(0));
        assert_eq!(arrivals[0].receivers, vec![NodeId(3)]);
        // An empty plan never touches the list.
        let mut arrivals = mk();
        ChurnPlan::new().filter_arrivals(100, &mut arrivals);
        assert_eq!(arrivals.len(), 3);
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        // Join-first: the node is already a member.
        let err = ChurnPlan::new()
            .join(NodeId(1), 50)
            .validate(10)
            .unwrap_err();
        assert!(err.contains("already a member"), "{err}");
        // Double leave.
        let err = ChurnPlan::new()
            .leave(NodeId(1), 50)
            .leave(NodeId(1), 90)
            .validate(10)
            .unwrap_err();
        assert!(err.contains("already left"), "{err}");
        // Two events in one slot.
        let err = ChurnPlan::new()
            .leave(NodeId(1), 50)
            .join(NodeId(1), 50)
            .validate(10)
            .unwrap_err();
        assert!(err.contains("two churn events"), "{err}");
        // Out-of-range node.
        let err = ChurnPlan::new()
            .leave(NodeId(12), 50)
            .validate(10)
            .unwrap_err();
        assert!(err.contains("node 12"), "{err}");
        // A proper leave→join→leave chain is fine.
        assert!(ChurnPlan::new()
            .leave(NodeId(1), 50)
            .join(NodeId(1), 90)
            .leave(NodeId(1), 200)
            .validate(10)
            .is_ok());
    }

    #[test]
    fn spec_round_trips_with_spans_on_errors() {
        let plan = ChurnPlan::parse("leave:3@500; join:3@900;leave:5@200").unwrap();
        assert_eq!(plan.spec(), "leave:3@500;join:3@900;leave:5@200");
        assert_eq!(ChurnPlan::parse(&plan.spec()).unwrap(), plan);
        assert!(ChurnPlan::parse("").unwrap().is_empty());
        let spec = "leave:3@500;hop:4@100";
        let err = ChurnPlan::parse(spec).unwrap_err();
        assert_eq!(&spec[err.offset..err.offset + err.len], "hop");
        let spec = "leave:3@zzz";
        let err = ChurnPlan::parse(spec).unwrap_err();
        assert_eq!(&spec[err.offset..err.offset + err.len], "zzz");
    }

    #[test]
    fn random_schedules_are_deterministic_and_valid() {
        let a = ChurnPlan::random(20, 5, 10_000, 42);
        let b = ChurnPlan::random(20, 5, 10_000, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate(20).is_ok(), "{:?}", a.validate(20));
        assert!(a.events.iter().all(|e| e.node.0 != 0), "node 0 is spared");
        let c = ChurnPlan::random(20, 5, 10_000, 43);
        assert_ne!(a, c);
        // More churners than candidates clamps.
        assert!(ChurnPlan::random(3, 10, 1_000, 1).validate(3).is_ok());
    }

    #[test]
    fn epoch_metrics_bucket_by_arrival() {
        let plan = ChurnPlan::new().leave(NodeId(1), 100).join(NodeId(1), 200);
        let msg = |arrival: Slot, delivered: usize| MessageMetric {
            is_group: true,
            intended: 2,
            delivered,
            reachable: 2,
            delivered_reachable: delivered,
            completed: true,
            timed_out: false,
            contention_phases: 1,
            completion_time: Some(10),
            arrival,
        };
        let messages = vec![msg(0, 2), msg(50, 2), msg(150, 1), msg(250, 2)];
        let epochs = plan.epoch_metrics(&messages, 0.9);
        assert_eq!(epochs.len(), 3);
        assert_eq!(
            epochs
                .iter()
                .map(|e| e.group_metrics.messages)
                .collect::<Vec<_>>(),
            vec![2, 1, 1]
        );
        assert_eq!(epochs[0].from, 0);
        assert_eq!(epochs[0].until, Some(100));
        assert_eq!(epochs[2].until, None);
        assert!(epochs[1].group_metrics.delivery_rate < 1.0);
        // Empty plan ⇒ no split at all.
        assert!(ChurnPlan::new().epoch_metrics(&messages, 0.9).is_empty());
    }
}
