//! Station placement.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_geom::Point;
use rmm_sim::Topology;

/// Places `n` stations uniformly at random in the unit square and builds
/// the topology with shared transmission `radius` — the paper's setup
/// ("we randomly placed 100 nodes in a unit square").
pub fn uniform_square(n: usize, radius: f64, seed: u64) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    Topology::new(pts, radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_per_seed() {
        let a = uniform_square(50, 0.2, 7);
        let b = uniform_square(50, 0.2, 7);
        for i in 0..50 {
            assert_eq!(a.positions()[i], b.positions()[i]);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_square(50, 0.2, 7);
        let b = uniform_square(50, 0.2, 8);
        let same = (0..50)
            .filter(|&i| a.positions()[i] == b.positions()[i])
            .count();
        assert!(same < 5);
    }

    #[test]
    fn all_points_in_unit_square() {
        let t = uniform_square(200, 0.2, 3);
        for p in t.positions() {
            assert!((0.0..1.0).contains(&p.x));
            assert!((0.0..1.0).contains(&p.y));
        }
    }

    #[test]
    fn density_matches_theory_roughly() {
        // Expected degree ≈ n·πr² (ignoring border effects): for n = 100,
        // r = 0.2 that's ~12.6; border effects pull it to ~10.
        let t = uniform_square(100, 0.2, 11);
        let d = t.mean_degree();
        assert!((6.0..14.0).contains(&d), "mean degree {d}");
    }
}
