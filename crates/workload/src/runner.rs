//! The simulation runner: one seeded run, and parallel sweeps across
//! seeds (the paper averages 100 runs per data point).

use crate::churn::EpochMetrics;
use crate::mobility::{MobilityConfig, RandomWaypoint};
use crate::observe::{PhaseTimings, RunManifest};
use crate::placement::uniform_square;
use crate::scenario::Scenario;
use crate::traffic::TrafficGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_geom::Point;
use rmm_mac::{FrameKindCounts, MacNode, Outcome, ProtocolKind, SentRecord};
use rmm_sim::{AirtimeBreakdown, Engine, MsgId, NodeId, Slot, Trace};
use rmm_stats::{MessageMetric, ProfileReport, RunMetrics};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Dedicated seed stream for the burst-error channel ("burst").
const BURST_SEED: u64 = 0x0062_7572_7374;

/// Gaussian sample via Box–Muller (keeps the dependency set small).
fn gaussian(rng: &mut SmallRng, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One liveness-watchdog finding: a sender that sat on an active message
/// for a whole watchdog window without putting a single frame on the
/// air. A healthy MAC always either transmits or times the message out,
/// so a stall indicates a wedged protocol state machine (or a retry
/// policy with no bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallReport {
    /// The wedged sender.
    pub node: NodeId,
    /// The message it is stuck on.
    pub msg: MsgId,
    /// When the message arrived at the MAC.
    pub arrival: Slot,
    /// When its service began.
    pub started: Slot,
    /// The sender's last transmission of any kind, if it ever sent one.
    pub last_tx: Option<Slot>,
    /// The watchdog check that caught it.
    pub detected_at: Slot,
    /// The configured watchdog window (slots).
    pub window: u64,
}

/// Files a [`StallReport`] for every node holding an active message that
/// has not transmitted for at least `window` slots. Read-only: safe to
/// call between engine steps without perturbing the run. Each `(node,
/// msg)` pair is reported at most once. Nodes whose injected faults
/// currently block transmission are skipped: a crashed or muted sender
/// is *known* impaired, not a wedged protocol.
fn check_stalls(
    engine: &Engine,
    nodes: &[MacNode],
    now: Slot,
    window: u64,
    stalls: &mut Vec<StallReport>,
) {
    for node in nodes {
        let id = node.core().id;
        if engine.faults().blocks_tx(id, now) {
            continue;
        }
        let Some((msg, arrival, started)) = node.active_msg() else {
            continue;
        };
        let last_tx = engine.last_tx(id);
        let progress = last_tx.map_or(started, |l| l.max(started));
        if now.saturating_sub(progress) >= window
            && !stalls.iter().any(|s| s.node == id && s.msg == msg)
        {
            stalls.push(StallReport {
                node: id,
                msg,
                arrival,
                started,
                last_tx,
                detected_at: now,
                window,
            });
        }
    }
}

/// Assembles ground-truth per-message delivery metrics from the senders'
/// records and the receivers' ledgers. Only messages whose full timeout
/// window fits inside the run are counted, so late arrivals don't read
/// as spurious failures. Receivers impaired by the fault plan — or out
/// of the group per the churn plan — at any point in the message's
/// service window count as unreachable, feeding the
/// reachable-vs-faulted metric split.
fn collect_messages(nodes: &[MacNode], scenario: &Scenario) -> Vec<MessageMetric> {
    let cutoff = scenario.sim_slots.saturating_sub(scenario.timing.timeout);
    let mut messages = Vec::new();
    for node in nodes {
        for rec in node.records() {
            if rec.arrival > cutoff {
                continue;
            }
            let window_end = rec.arrival.saturating_add(scenario.timing.timeout);
            let (mut delivered, mut reachable, mut delivered_reachable) = (0, 0, 0);
            for r in &rec.intended {
                let got = nodes[r.index()].received().contains(&rec.msg);
                delivered += usize::from(got);
                if !scenario.faults.impaired_during(*r, rec.arrival, window_end)
                    && scenario.churn.member_during(*r, rec.arrival, window_end)
                {
                    reachable += 1;
                    delivered_reachable += usize::from(got);
                }
            }
            messages.push(MessageMetric {
                is_group: rec.is_group(),
                intended: rec.intended.len(),
                delivered,
                reachable,
                delivered_reachable,
                completed: rec.outcome.is_completed(),
                timed_out: matches!(rec.outcome, Outcome::TimedOut(_)),
                contention_phases: rec.contention_phases,
                completion_time: rec.completion_time(),
                arrival: rec.arrival,
            });
        }
    }
    messages
}

/// The result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Seed that produced the run.
    pub seed: u64,
    /// Mean number of neighbors in the sampled topology (density axis).
    pub mean_degree: f64,
    /// Aggregates over multicast + broadcast messages.
    pub group_metrics: RunMetrics,
    /// Aggregates over unicast messages.
    pub unicast_metrics: RunMetrics,
    /// Per-message records (population already cut to messages whose full
    /// timeout window fit in the run).
    pub messages: Vec<MessageMetric>,
    /// Total collision events observed at receivers.
    pub collisions: u64,
    /// Frames transmitted during the run, by kind.
    pub frames: FrameKindCounts,
    /// Fraction of slots with at least one transmission on the air
    /// somewhere in the network.
    pub utilization: f64,
    /// Exact per-slot channel airtime classification (idle / data /
    /// control / collision) from the channel's ledger.
    pub airtime: AirtimeBreakdown,
    /// Liveness-watchdog findings (empty unless `scenario.stall_window`
    /// is set and some sender made no forward progress for a window).
    pub stalls: Vec<StallReport>,
    /// Group-delivery metrics split by membership epoch (empty unless
    /// `scenario.churn` schedules membership changes).
    pub churn_epochs: Vec<EpochMetrics>,
    /// Run provenance: scenario, protocol, seed, and wall-clock phases.
    pub manifest: RunManifest,
}

/// Executes one seeded run of `scenario` under `protocol`, using the
/// engine's event-horizon fast path (bit-exact with naive stepping; see
/// [`run_one_naive`]).
pub fn run_one(scenario: &Scenario, protocol: ProtocolKind, seed: u64) -> RunResult {
    run_one_impl(scenario, protocol, seed, false, true, false, false).0
}

/// [`run_one`] with naive slot-by-slot stepping. Reference
/// implementation for the differential determinism suite; produces a
/// byte-identical result (modulo wall-clock provenance).
pub fn run_one_naive(scenario: &Scenario, protocol: ProtocolKind, seed: u64) -> RunResult {
    run_one_impl(scenario, protocol, seed, false, false, false, false).0
}

/// [`run_one`] with event tracing enabled: returns the result together
/// with the full protocol event trace. Tracing only *records* — the
/// simulation is slot-for-slot identical to the untraced run.
pub fn run_one_traced(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
) -> (RunResult, Trace) {
    let (result, trace, _, _) = run_one_impl(scenario, protocol, seed, true, true, false, false);
    (result, trace.expect("tracing was enabled"))
}

/// [`run_one_traced`] with naive slot-by-slot stepping (the reference
/// for differential testing).
pub fn run_one_traced_naive(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
) -> (RunResult, Trace) {
    let (result, trace, _, _) = run_one_impl(scenario, protocol, seed, true, false, false, false);
    (result, trace.expect("tracing was enabled"))
}

/// [`run_one`] with engine phase-timer profiling enabled: returns the
/// result together with the per-phase cost attribution. Profiling is a
/// pure observer — the result is byte-identical (modulo wall-clock
/// provenance) to the unprofiled run; the differential suite checks
/// this across every protocol.
pub fn run_one_profiled(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
) -> (RunResult, ProfileReport) {
    let (result, _, profile, _) = run_one_impl(scenario, protocol, seed, false, true, true, false);
    (result, profile.expect("profiling was enabled"))
}

/// [`run_one_profiled`] with event tracing also enabled, for reports
/// that want phase timers, the airtime ledger, and trace-derived dwell
/// histograms from one single run. The timer attribution includes the
/// (small) cost of trace recording itself.
pub fn run_one_profiled_traced(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
) -> (RunResult, ProfileReport, Trace) {
    let (result, trace, profile, _) =
        run_one_impl(scenario, protocol, seed, true, true, true, false);
    (
        result,
        profile.expect("profiling was enabled"),
        trace.expect("tracing was enabled"),
    )
}

/// One run with everything an invariant checker needs below the metric
/// aggregation: the result, the full protocol event trace, and every
/// sender's raw service records (`record.msg.src` identifies the
/// sender). `fast` selects the event-horizon fast path or the naive
/// reference stepper — the chaos harness runs both and diffs them.
pub fn run_one_forensic(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
    fast: bool,
) -> (RunResult, Trace, Vec<SentRecord>) {
    let (result, trace, _, records) =
        run_one_impl(scenario, protocol, seed, true, fast, false, true);
    (result, trace.expect("tracing was enabled"), records)
}

fn run_one_impl(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
    traced: bool,
    fast: bool,
    profiled: bool,
    forensic: bool,
) -> (
    RunResult,
    Option<Trace>,
    Option<ProfileReport>,
    Vec<SentRecord>,
) {
    let t_setup = Instant::now();
    let topo = uniform_square(scenario.n_nodes, scenario.radius, seed);
    let mean_degree = topo.mean_degree();
    let mut nodes = if scenario.position_noise > 0.0 {
        // Stations advertise noisy GPS positions in their beacons; the
        // channel keeps using the true geometry.
        let mut noise_rng = SmallRng::seed_from_u64(seed ^ 0x006e_6f69_7365);
        let advertised: Vec<Point> = topo
            .positions()
            .iter()
            .map(|p| {
                p.offset(
                    gaussian(&mut noise_rng, scenario.position_noise),
                    gaussian(&mut noise_rng, scenario.position_noise),
                )
            })
            .collect();
        MacNode::build_network_with_positions(
            &topo,
            Arc::new(advertised),
            protocol,
            scenario.timing,
            seed,
        )
    } else {
        MacNode::build_network(&topo, protocol, scenario.timing, seed)
    };
    let mut engine = Engine::new(topo.clone(), scenario.capture, seed.wrapping_add(0x5eed));
    if scenario.fer > 0.0 {
        engine.set_fer(scenario.fer);
    }
    if !scenario.faults.is_empty() {
        engine.set_faults(scenario.faults.clone());
    }
    if let Some(model) = scenario.burst {
        engine.set_burst(model, seed ^ BURST_SEED);
    }
    if traced {
        engine.enable_trace();
    }
    if profiled {
        engine.enable_profiling();
    }
    let mut traffic = TrafficGen::new(scenario.msg_rate, scenario.mix, seed);
    let mut arrivals = Vec::new();
    let mut stalls = Vec::new();
    let setup_us = t_setup.elapsed().as_micros() as u64;

    let t_simulate = Instant::now();
    // The traffic stream is drawn per slot either way (stream identity);
    // the fast path only wakes the engine for slots with arrivals and
    // lets `advance_to` fast-forward the dead air in between.
    for t in 0..scenario.sim_slots {
        traffic.tick(engine.topology(), t, &mut arrivals);
        // Membership churn rewrites the arrival list *after* the traffic
        // draws, so the RNG stream is identical with or without a plan.
        scenario.churn.filter_arrivals(t, &mut arrivals);
        if fast {
            if !arrivals.is_empty() {
                engine.advance_to(&mut nodes, t);
                for a in &arrivals {
                    nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
                    // The enqueue perturbs the station from outside the
                    // engine: force its next on_slot past any stale hint.
                    engine.wake(a.node);
                }
            }
        } else {
            for a in &arrivals {
                nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
            }
        }
        // The watchdog inspects the network at multiples of its window,
        // before slot `t` is simulated (the fast path catches the engine
        // up first; chunked `advance_to` is bit-exact, so enabling the
        // watchdog never changes the run itself).
        if let Some(w) = scenario.stall_window {
            if t > 0 && t % w == 0 {
                if fast {
                    engine.advance_to(&mut nodes, t);
                }
                check_stalls(&engine, &nodes, t, w, &mut stalls);
            }
        }
        if !fast {
            engine.step(&mut nodes);
        }
    }
    if fast {
        engine.advance_to(&mut nodes, scenario.sim_slots);
    }
    for node in &mut nodes {
        node.drain_unfinished(scenario.sim_slots);
    }
    let simulate_us = t_simulate.elapsed().as_micros() as u64;

    let t_collect = Instant::now();
    let messages = collect_messages(&nodes, scenario);
    let group: Vec<MessageMetric> = messages.iter().filter(|m| m.is_group).cloned().collect();
    let unicast: Vec<MessageMetric> = messages.iter().filter(|m| !m.is_group).cloned().collect();
    let mut frames = FrameKindCounts::default();
    for node in &nodes {
        frames.add(&node.counters().sent_by_kind);
    }
    let records = if forensic {
        nodes
            .iter()
            .flat_map(|n| n.records().iter().cloned())
            .collect()
    } else {
        Vec::new()
    };
    let churn_epochs = scenario
        .churn
        .epoch_metrics(&messages, scenario.reliability_threshold);
    let collect_us = t_collect.elapsed().as_micros() as u64;
    let result = RunResult {
        seed,
        mean_degree,
        group_metrics: RunMetrics::compute(&group, scenario.reliability_threshold),
        unicast_metrics: RunMetrics::compute(&unicast, scenario.reliability_threshold),
        messages,
        collisions: engine.channel().collisions_total,
        utilization: engine.channel().busy_slots as f64 / scenario.sim_slots as f64,
        airtime: engine.channel().ledger().breakdown(scenario.sim_slots),
        frames,
        stalls,
        churn_epochs,
        manifest: RunManifest {
            scenario: scenario.clone(),
            protocol,
            seed,
            slot_budget: scenario.sim_slots,
            traced,
            wall_clock: PhaseTimings {
                setup_us,
                simulate_us,
                collect_us,
            },
        },
    };
    let profile = engine.take_profile();
    (result, engine.take_trace(), profile, records)
}

/// Executes one seeded run with random-waypoint mobility and periodic
/// beaconing. Ground truth moves every `mobility.update_period` slots;
/// stations refresh their neighbor tables and advertised positions only
/// every `mobility.beacon_period` slots, so they act on *stale* beacon
/// state in between — the realistic failure mode for neighbor-list-based
/// multicast.
pub fn run_mobile(
    scenario: &Scenario,
    protocol: ProtocolKind,
    mobility: MobilityConfig,
    seed: u64,
) -> RunResult {
    run_mobile_impl(scenario, protocol, mobility, seed, true)
}

/// [`run_mobile`] with naive slot-by-slot stepping (the reference for
/// differential testing).
pub fn run_mobile_naive(
    scenario: &Scenario,
    protocol: ProtocolKind,
    mobility: MobilityConfig,
    seed: u64,
) -> RunResult {
    run_mobile_impl(scenario, protocol, mobility, seed, false)
}

fn run_mobile_impl(
    scenario: &Scenario,
    protocol: ProtocolKind,
    mobility: MobilityConfig,
    seed: u64,
    fast: bool,
) -> RunResult {
    let t_setup = Instant::now();
    let initial = uniform_square(scenario.n_nodes, scenario.radius, seed);
    let mut waypoint = RandomWaypoint::new(initial.positions().to_vec(), mobility, seed);
    let mut true_topo = waypoint.topology(scenario.radius);
    let mean_degree = true_topo.mean_degree();
    let mut beacon_topo = true_topo.clone();
    let advertised = Arc::new(beacon_topo.positions().to_vec());
    let mut nodes = MacNode::build_network_with_positions(
        &beacon_topo,
        advertised,
        protocol,
        scenario.timing,
        seed,
    );
    let mut engine = Engine::new(
        true_topo.clone(),
        scenario.capture,
        seed.wrapping_add(0x5eed),
    );
    if scenario.fer > 0.0 {
        engine.set_fer(scenario.fer);
    }
    if !scenario.faults.is_empty() {
        engine.set_faults(scenario.faults.clone());
    }
    if let Some(model) = scenario.burst {
        engine.set_burst(model, seed ^ BURST_SEED);
    }
    let mut traffic = TrafficGen::new(scenario.msg_rate, scenario.mix, seed);
    let mut arrivals = Vec::new();
    let mut stalls = Vec::new();
    let setup_us = t_setup.elapsed().as_micros() as u64;

    let t_simulate = Instant::now();
    for t in 0..scenario.sim_slots {
        if t > 0 && t % mobility.update_period == 0 {
            // External events must land at their exact slot: catch the
            // engine up before mutating the world it simulates.
            if fast {
                engine.advance_to(&mut nodes, t);
            }
            waypoint.step(mobility.update_period);
            true_topo = waypoint.topology(scenario.radius);
            engine.set_topology(true_topo.clone());
        }
        if t > 0 && t % mobility.beacon_period == 0 {
            if fast {
                engine.advance_to(&mut nodes, t);
            }
            beacon_topo = true_topo.clone();
            let advertised = Arc::new(beacon_topo.positions().to_vec());
            for (i, node) in nodes.iter_mut().enumerate() {
                node.refresh_neighbors(&beacon_topo, Arc::clone(&advertised));
                // The refresh mutates stations outside the engine:
                // invalidate their cached wakeup hints.
                if fast {
                    engine.wake(NodeId(i as u32));
                }
            }
        }
        // Requests are addressed to the neighbors the sender *believes*
        // it has — the beacon view, not the ground truth.
        traffic.tick(&beacon_topo, t, &mut arrivals);
        scenario.churn.filter_arrivals(t, &mut arrivals);
        if fast && !arrivals.is_empty() {
            engine.advance_to(&mut nodes, t);
        }
        for a in &arrivals {
            nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
            if fast {
                engine.wake(a.node);
            }
        }
        if let Some(w) = scenario.stall_window {
            if t > 0 && t % w == 0 {
                if fast {
                    engine.advance_to(&mut nodes, t);
                }
                check_stalls(&engine, &nodes, t, w, &mut stalls);
            }
        }
        if !fast {
            engine.step(&mut nodes);
        }
    }
    if fast {
        engine.advance_to(&mut nodes, scenario.sim_slots);
    }
    for node in &mut nodes {
        node.drain_unfinished(scenario.sim_slots);
    }
    let simulate_us = t_simulate.elapsed().as_micros() as u64;

    let t_collect = Instant::now();
    let messages = collect_messages(&nodes, scenario);
    let group: Vec<MessageMetric> = messages.iter().filter(|m| m.is_group).cloned().collect();
    let unicast: Vec<MessageMetric> = messages.iter().filter(|m| !m.is_group).cloned().collect();
    let mut frames = FrameKindCounts::default();
    for node in &nodes {
        frames.add(&node.counters().sent_by_kind);
    }
    let churn_epochs = scenario
        .churn
        .epoch_metrics(&messages, scenario.reliability_threshold);
    let collect_us = t_collect.elapsed().as_micros() as u64;
    RunResult {
        seed,
        mean_degree,
        group_metrics: RunMetrics::compute(&group, scenario.reliability_threshold),
        unicast_metrics: RunMetrics::compute(&unicast, scenario.reliability_threshold),
        messages,
        collisions: engine.channel().collisions_total,
        utilization: engine.channel().busy_slots as f64 / scenario.sim_slots as f64,
        airtime: engine.channel().ledger().breakdown(scenario.sim_slots),
        frames,
        stalls,
        churn_epochs,
        manifest: RunManifest {
            scenario: scenario.clone(),
            protocol,
            seed,
            slot_budget: scenario.sim_slots,
            traced: false,
            wall_clock: PhaseTimings {
                setup_us,
                simulate_us,
                collect_us,
            },
        },
    }
}

/// Executes `scenario.n_runs` seeded runs in parallel (one OS thread per
/// available core) and returns them ordered by seed.
pub fn run_many(scenario: &Scenario, protocol: ProtocolKind) -> Vec<RunResult> {
    run_many_seeded(scenario, protocol, 0)
}

/// [`run_many`] with a seed offset, for experiments that must not share
/// topologies across sweep points.
pub fn run_many_seeded(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed_base: u64,
) -> Vec<RunResult> {
    run_many_jobs(scenario, protocol, seed_base, 0)
}

/// [`run_many_seeded`] with an explicit worker count (`0` = one per
/// available core). Each run derives all randomness from its own seed,
/// and the fleet pool merges results back in seed order, so the output
/// is identical at any worker count.
pub fn run_many_jobs(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed_base: u64,
    workers: usize,
) -> Vec<RunResult> {
    let seeds: Vec<u64> = (0..scenario.n_runs as u64).map(|s| s + seed_base).collect();
    let workers = rmm_fleet::resolve_workers(workers, seeds.len());
    rmm_fleet::run_parallel(workers, &seeds, |_w, &seed| {
        run_one(scenario, protocol, seed)
    })
}

/// Means of the headline per-run metrics across `results` (delivery rate,
/// contention phases, completion time), over group traffic. Internally a
/// seed-keyed partial merge with a canonical-order finalize, so the same
/// set of runs yields the bit-identical mean regardless of the order the
/// slice happens to be in.
pub fn mean_group_metrics(results: &[RunResult]) -> RunMetrics {
    let mut merge = rmm_stats::RunMetricsMerge::new();
    for r in results {
        merge.absorb(r.seed, r.group_metrics);
    }
    merge.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario {
            n_nodes: 40,
            sim_slots: 2_000,
            n_runs: 3,
            msg_rate: 1e-3,
            ..Scenario::default()
        }
    }

    #[test]
    fn watchdog_flags_a_silent_sender_and_skips_fault_blocked_nodes() {
        use rmm_mac::MacTiming;
        use rmm_sim::{Capture, FaultPlan, Topology};

        // Two nodes in range; node 0 multicasts to node 1 with an
        // effectively infinite service timeout, so the message is still
        // active long after its last transmission.
        let build = |faults: FaultPlan| {
            let topo = Topology::new(vec![Point::new(0.4, 0.5), Point::new(0.6, 0.5)], 0.3);
            let timing = MacTiming {
                timeout: 1_000_000,
                retry_limit: u32::MAX,
                dest_retry_limit: u32::MAX,
                ..Default::default()
            };
            let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmw, timing, 9);
            let mut engine = Engine::new(topo, Capture::ZorziRao, 9);
            engine.set_faults(faults);
            nodes[0].enqueue(rmm_mac::TrafficKind::Multicast, vec![NodeId(1)], 0);
            engine.run(&mut nodes, 50);
            (engine, nodes)
        };

        let (engine, nodes) = build(FaultPlan::new().crash(NodeId(1), 0));
        let last = engine.last_tx(NodeId(0)).expect("sender transmitted");
        let mut stalls = Vec::new();
        // Inside the window: quiet.
        check_stalls(&engine, &nodes, last + 10, 200, &mut stalls);
        assert!(stalls.is_empty(), "{stalls:?}");
        // A full window with no transmission: reported, exactly once.
        check_stalls(&engine, &nodes, last + 200, 200, &mut stalls);
        assert_eq!(stalls.len(), 1, "{stalls:?}");
        assert_eq!(stalls[0].node, NodeId(0));
        assert_eq!(stalls[0].last_tx, Some(last));
        check_stalls(&engine, &nodes, last + 400, 200, &mut stalls);
        assert_eq!(stalls.len(), 1, "same (node, msg) reported twice");

        // The same silence from a TX-muted sender is expected impairment,
        // not a wedged FSM: never reported.
        let (engine, nodes) = build(
            FaultPlan::new()
                .mute(NodeId(0), 0, 1_000_000)
                .crash(NodeId(1), 0),
        );
        assert_eq!(engine.last_tx(NodeId(0)), None);
        let mut stalls = Vec::new();
        check_stalls(&engine, &nodes, 10_000, 200, &mut stalls);
        assert!(stalls.is_empty(), "{stalls:?}");
    }

    #[test]
    fn run_one_is_deterministic() {
        let s = small();
        let a = run_one(&s, ProtocolKind::Bmmm, 5);
        let b = run_one(&s, ProtocolKind::Bmmm, 5);
        assert_eq!(a.messages.len(), b.messages.len());
        assert_eq!(a.collisions, b.collisions);
        assert_eq!(a.group_metrics.delivery_rate, b.group_metrics.delivery_rate);
    }

    #[test]
    fn different_seeds_give_different_runs() {
        let s = small();
        let a = run_one(&s, ProtocolKind::Bmmm, 5);
        let b = run_one(&s, ProtocolKind::Bmmm, 6);
        assert!(a.mean_degree != b.mean_degree || a.messages.len() != b.messages.len());
    }

    #[test]
    fn run_many_matches_run_one() {
        let s = small();
        let many = run_many(&s, ProtocolKind::Ieee80211);
        assert_eq!(many.len(), 3);
        let lone = run_one(&s, ProtocolKind::Ieee80211, 1);
        assert_eq!(many[1].messages.len(), lone.messages.len());
        assert_eq!(
            many[1].group_metrics.delivery_rate,
            lone.group_metrics.delivery_rate
        );
        assert_eq!(many[1].seed, 1);
    }

    #[test]
    fn traffic_actually_flows() {
        let s = small();
        let r = run_one(&s, ProtocolKind::Bmmm, 2);
        assert!(
            r.group_metrics.messages > 10,
            "only {} messages",
            r.group_metrics.messages
        );
        assert!(r.unicast_metrics.messages > 0);
        assert!(r.group_metrics.delivery_rate > 0.0);
    }

    #[test]
    fn mean_group_metrics_averages() {
        let s = small();
        let results = run_many(&s, ProtocolKind::Bmmm);
        let mean = mean_group_metrics(&results);
        let manual: f64 = results
            .iter()
            .map(|r| r.group_metrics.delivery_rate)
            .sum::<f64>()
            / results.len() as f64;
        assert!((mean.delivery_rate - manual).abs() < 1e-12);
    }

    #[test]
    fn run_many_jobs_is_worker_count_invariant() {
        let s = Scenario {
            n_runs: 5,
            ..small()
        };
        let serial = run_many_jobs(&s, ProtocolKind::Bmmm, 100, 1);
        let serial_mean = mean_group_metrics(&serial);
        for workers in [2, 8] {
            let par = run_many_jobs(&s, ProtocolKind::Bmmm, 100, workers);
            assert_eq!(par.len(), serial.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.collisions, b.collisions);
                assert_eq!(a.frames, b.frames);
                assert_eq!(
                    a.group_metrics.delivery_rate.to_bits(),
                    b.group_metrics.delivery_rate.to_bits(),
                    "workers = {workers}"
                );
                assert_eq!(
                    a.group_metrics.avg_completion_time.to_bits(),
                    b.group_metrics.avg_completion_time.to_bits()
                );
            }
            let par_mean = mean_group_metrics(&par);
            assert_eq!(
                serial_mean.delivery_rate.to_bits(),
                par_mean.delivery_rate.to_bits()
            );
        }
    }

    #[test]
    fn mean_group_metrics_is_order_independent() {
        let s = small();
        let mut results = run_many(&s, ProtocolKind::Bmw);
        let forward = mean_group_metrics(&results);
        results.reverse();
        let backward = mean_group_metrics(&results);
        assert_eq!(
            forward.delivery_rate.to_bits(),
            backward.delivery_rate.to_bits()
        );
        assert_eq!(
            forward.avg_contention_phases.to_bits(),
            backward.avg_contention_phases.to_bits()
        );
        assert_eq!(forward.messages, backward.messages);
    }

    #[test]
    fn merged_run_registries_are_order_independent() {
        let s = small();
        let results = run_many(&s, ProtocolKind::Bmmm);
        let regs: Vec<rmm_stats::MetricsRegistry> = results
            .iter()
            .map(|r| crate::observe::collect_metrics(&[], &r.messages))
            .collect();
        let mut forward = rmm_stats::MetricsRegistry::new();
        for reg in &regs {
            forward.merge(reg);
        }
        let mut backward = rmm_stats::MetricsRegistry::new();
        for reg in regs.iter().rev() {
            backward.merge(reg);
        }
        assert_eq!(
            serde_json::to_string(&forward).unwrap(),
            serde_json::to_string(&backward).unwrap()
        );
    }
}
