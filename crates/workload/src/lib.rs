//! Scenario construction, traffic generation, and the simulation runner.
//!
//! Reproduces the paper's experimental setup (Section 7, Table 2):
//! 100 stations placed uniformly at random in a unit square with
//! transmission radius 0.2; Bernoulli message arrivals at
//! 5·10⁻⁴ msgs/node/slot with a 0.2 / 0.4 / 0.4 unicast / multicast /
//! broadcast mix; 10 000-slot runs; 100-slot service timeout; 90%
//! reliability threshold; results averaged over 100 seeds.
//!
//! ```
//! use rmm_workload::{Scenario, run_one};
//! use rmm_mac::ProtocolKind;
//!
//! let scenario = Scenario { sim_slots: 2_000, n_runs: 1, ..Scenario::default() };
//! let result = run_one(&scenario, ProtocolKind::Bmmm, 7);
//! assert!(result.group_metrics.messages > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod churn;
pub mod mobility;
pub mod observe;
pub mod placement;
pub mod runner;
pub mod scenario;
pub mod traffic;

pub use chaos::{
    check_invariants, run_chaos, shrink, ChaosConfig, ChaosOutcome, ChaosRepro, ChaosSchedule,
    Violation, ViolationKind,
};
pub use churn::{ChurnEvent, ChurnKind, ChurnPlan, EpochMetrics};
pub use mobility::{MobilityConfig, RandomWaypoint};
pub use observe::{
    collect_dwell, collect_metrics, DwellReport, PhaseTimings, RunManifest, StationDwell,
};
pub use placement::uniform_square;
pub use runner::{
    mean_group_metrics, run_many, run_many_jobs, run_many_seeded, run_mobile, run_mobile_naive,
    run_one, run_one_forensic, run_one_naive, run_one_profiled, run_one_profiled_traced,
    run_one_traced, run_one_traced_naive, RunResult, StallReport,
};
pub use scenario::{scenario_schema_hash, Scenario};
pub use traffic::{TrafficGen, TrafficMix};
