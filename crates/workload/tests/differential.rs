//! Differential determinism suite for the event-horizon fast path.
//!
//! [`run_one`] steps the engine with `Engine::advance_to`, which
//! fast-forwards through dead air using `Station::next_wakeup` hints;
//! [`run_one_naive`] steps every slot. The two must be **bit-exact**:
//! identical `RunResult`s (modulo wall-clock provenance), identical
//! trace event streams, and identical `MetricsRegistry` output — for
//! every protocol kind, across seeds, in both calm and saturated
//! networks, and under mobility.

use rmm_mac::ProtocolKind;
use rmm_sim::{FaultPlan, GilbertElliott, NodeId, Trace, TraceEvent};
use rmm_workload::{
    collect_metrics, run_mobile, run_mobile_naive, run_one, run_one_profiled,
    run_one_profiled_traced, run_one_traced, run_one_traced_naive, ChurnPlan, MobilityConfig,
    PhaseTimings, RunResult, Scenario,
};

const SEEDS: [u64; 5] = [1, 2, 3, 5, 8];

const ALL_PROTOCOLS: [ProtocolKind; 8] = [
    ProtocolKind::Ieee80211,
    ProtocolKind::TangGerla,
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
    ProtocolKind::LeaderBased,
    ProtocolKind::BmmmUncoordinated,
];

/// Serializes a result with the (nondeterministic) wall-clock phase
/// timings zeroed, so equality means byte-identical simulation output.
fn canonical(mut r: RunResult) -> String {
    r.manifest.wall_clock = PhaseTimings::default();
    serde_json::to_string(&r).expect("RunResult serializes")
}

fn assert_bit_exact(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
    label: &str,
) -> (RunResult, Trace) {
    let (fast, fast_trace) = run_one_traced(scenario, protocol, seed);
    let (naive, naive_trace) = run_one_traced_naive(scenario, protocol, seed);
    assert_eq!(
        fast_trace.events(),
        naive_trace.events(),
        "[{label}] {protocol:?} seed {seed}: trace diverged"
    );
    assert_eq!(
        canonical(fast.clone()),
        canonical(naive),
        "[{label}] {protocol:?} seed {seed}: RunResult diverged"
    );
    let fast_metrics = collect_metrics(fast_trace.events(), &fast.messages);
    let naive_metrics = collect_metrics(naive_trace.events(), &fast.messages);
    assert_eq!(
        serde_json::to_string(&fast_metrics).expect("registry serializes"),
        serde_json::to_string(&naive_metrics).expect("registry serializes"),
        "[{label}] {protocol:?} seed {seed}: metrics diverged"
    );
    (fast, fast_trace)
}

/// Every protocol kind, ≥5 seeds, moderate load: the headline guarantee.
#[test]
fn fast_stepping_is_bit_exact_for_all_protocols() {
    let scenario = Scenario {
        n_nodes: 25,
        sim_slots: 1_500,
        n_runs: 1,
        msg_rate: 2e-3,
        ..Scenario::default()
    };
    let mut traffic_seen = false;
    for protocol in ALL_PROTOCOLS {
        for seed in SEEDS {
            let (result, _) = assert_bit_exact(&scenario, protocol, seed, "load");
            traffic_seen |= !result.messages.is_empty();
        }
    }
    assert!(traffic_seen, "suite exercised no traffic at all");
}

/// Idle-dominated runs are where the fast path actually skips: long
/// gaps between arrivals stress the contention/NAV replay math.
#[test]
fn fast_stepping_is_bit_exact_when_idle_dominated() {
    let scenario = Scenario {
        n_nodes: 30,
        sim_slots: 6_000,
        n_runs: 1,
        msg_rate: 1e-4,
        ..Scenario::default()
    };
    for protocol in [ProtocolKind::Bmmm, ProtocolKind::Bsma, ProtocolKind::Bmw] {
        for seed in [11, 12] {
            assert_bit_exact(&scenario, protocol, seed, "idle");
        }
    }
}

/// Channel imperfections (frame errors, capture) draw from the engine
/// RNG; skipping a slot that consumed a draw would desynchronize the
/// stream and everything after it.
#[test]
fn fast_stepping_preserves_channel_rng_stream() {
    let scenario = Scenario {
        n_nodes: 25,
        sim_slots: 2_000,
        n_runs: 1,
        msg_rate: 1e-3,
        fer: 0.05,
        ..Scenario::default()
    };
    for seed in [21, 22, 23] {
        assert_bit_exact(&scenario, ProtocolKind::Bmmm, seed, "fer");
    }
}

/// Fault injection and the burst-error channel are the newest pressure
/// on the fast path: crashes re-route frames, the burst chains consume
/// their own RNG stream per reception, give-ups change FSM control flow,
/// and the watchdog forces extra `advance_to` calls at window
/// boundaries. All of it must stay bit-exact — and actually fire.
#[test]
fn fast_stepping_is_bit_exact_under_faults() {
    // The service timeout is stretched and the per-destination budget
    // tightened so senders actually reach the give-up path before the
    // message times out.
    let timing = rmm_mac::MacTiming {
        timeout: 500,
        dest_retry_limit: 3,
        ..Default::default()
    };
    let scenario = Scenario {
        n_nodes: 25,
        sim_slots: 2_500,
        n_runs: 1,
        msg_rate: 2e-3,
        timing,
        ..Scenario::default()
    }
    .with_faults(
        FaultPlan::new()
            .crash(rmm_sim::NodeId(3), 400)
            .crash(rmm_sim::NodeId(11), 900)
            .deaf(rmm_sim::NodeId(5), 200, 1_200)
            .mute(rmm_sim::NodeId(7), 600, 1_800),
    )
    .with_burst(GilbertElliott::new(0.05, 0.25))
    .with_stall_window(500);
    let mut give_ups = 0usize;
    let mut faulted_receiver_seen = false;
    for protocol in ALL_PROTOCOLS {
        for seed in [41, 42] {
            let (result, trace) = assert_bit_exact(&scenario, protocol, seed, "faults");
            give_ups += trace
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::GiveUp { .. }))
                .count();
            faulted_receiver_seen |= result.messages.iter().any(|m| m.reachable < m.intended);
        }
    }
    assert!(give_ups > 0, "fault scenario produced no give-up events");
    assert!(
        faulted_receiver_seen,
        "no message ever had a faulted receiver"
    );
}

/// Reboot faults and membership churn are the chaos harness's pressure
/// points on the fast path: the engine must land on every
/// reboot-completion slot to cold-reset the MAC, and the membership
/// filter rewrites receiver lists at churn boundaries — in both
/// stepping modes, identically.
#[test]
fn fast_stepping_is_bit_exact_under_reboot_and_churn() {
    let timing = rmm_mac::MacTiming {
        timeout: 300,
        ..Default::default()
    };
    let scenario = Scenario {
        n_nodes: 25,
        sim_slots: 2_500,
        n_runs: 1,
        msg_rate: 2e-3,
        timing,
        ..Scenario::default()
    }
    .with_faults(
        FaultPlan::new()
            .reboot(NodeId(3), 300, 900)
            .reboot(NodeId(9), 1_200, 1_900)
            .crash(NodeId(15), 800),
    )
    .with_churn(
        ChurnPlan::new()
            .leave(NodeId(5), 600)
            .join(NodeId(5), 1_600)
            .leave(NodeId(12), 1_000),
    )
    .with_stall_window(600);
    let mut epoch_traffic = 0usize;
    for protocol in ALL_PROTOCOLS {
        for seed in [51, 52] {
            let (result, _) = assert_bit_exact(&scenario, protocol, seed, "reboot+churn");
            assert!(!result.churn_epochs.is_empty(), "churn produced no epochs");
            epoch_traffic += result
                .churn_epochs
                .iter()
                .map(|e| e.group_metrics.messages)
                .sum::<usize>();
        }
    }
    assert!(epoch_traffic > 0, "churn epochs collected no messages");
}

/// Plumbing inertness: a fault/churn plan whose events all lie beyond
/// the simulated horizon must not perturb the run at all — the
/// membership filter and fault hooks draw no RNG of their own. Only the
/// provenance manifest (which embeds the scenario) and the epoch table
/// (which follows the plan) may differ.
#[test]
fn armed_but_idle_chaos_plumbing_is_rng_inert() {
    let base = Scenario {
        n_nodes: 25,
        sim_slots: 1_500,
        n_runs: 1,
        msg_rate: 2e-3,
        ..Scenario::default()
    };
    let armed = base
        .clone()
        .with_faults(FaultPlan::new().deaf(NodeId(4), 100_000, 120_000))
        .with_churn(
            ChurnPlan::new()
                .leave(NodeId(6), 100_000)
                .join(NodeId(6), 120_000),
        );
    for protocol in ALL_PROTOCOLS {
        for seed in [61, 62] {
            let mut plain = run_one(&base, protocol, seed);
            let mut idle = run_one(&armed, protocol, seed);
            plain.manifest.wall_clock = PhaseTimings::default();
            idle.manifest = plain.manifest.clone();
            idle.churn_epochs = plain.churn_epochs.clone();
            assert_eq!(
                serde_json::to_string(&plain).expect("RunResult serializes"),
                serde_json::to_string(&idle).expect("RunResult serializes"),
                "[inert] {protocol:?} seed {seed}: idle plan perturbed the run"
            );
        }
    }
}

/// The engine's phase profiler is a pure observer: it draws no RNG and
/// perturbs no dynamics, so a profiled run must be byte-identical to an
/// unprofiled one for every protocol — while still recording laps for
/// every engine phase it claims to cover.
#[test]
fn profiling_is_bit_exact_for_all_protocols() {
    let scenario = Scenario {
        n_nodes: 25,
        sim_slots: 1_500,
        n_runs: 1,
        msg_rate: 2e-3,
        ..Scenario::default()
    };
    for protocol in ALL_PROTOCOLS {
        for seed in [1, 2] {
            let plain = run_one(&scenario, protocol, seed);
            let (profiled, report) = run_one_profiled(&scenario, protocol, seed);
            assert_eq!(
                canonical(plain),
                canonical(profiled),
                "[prof] {protocol:?} seed {seed}: profiling perturbed the run"
            );
            assert!(
                report.total_ns > 0,
                "[prof] {protocol:?} seed {seed}: profiler recorded nothing"
            );
            for phase in [
                "carrier_sense",
                "resolve",
                "deliver",
                "fsm_dispatch",
                "tx_launch",
                "horizon_scan",
            ] {
                let stat = report.phase(phase).expect("every phase reported");
                assert!(
                    stat.calls > 0,
                    "[prof] {protocol:?} seed {seed}: phase {phase} never lapped"
                );
            }
            // Profiling a *traced* run must not disturb the event stream
            // either (the `rmm prof` path).
            let (_, _, prof_trace) = run_one_profiled_traced(&scenario, protocol, seed);
            let (_, trace) = run_one_traced(&scenario, protocol, seed);
            assert_eq!(
                prof_trace.events(),
                trace.events(),
                "[prof] {protocol:?} seed {seed}: trace diverged under profiling"
            );
        }
    }
}

/// Mobility injects topology swaps and beacon refreshes mid-run; the
/// fast path must land the engine on exactly those slots.
#[test]
fn fast_stepping_is_bit_exact_under_mobility() {
    let scenario = Scenario {
        n_nodes: 25,
        sim_slots: 2_000,
        n_runs: 1,
        msg_rate: 1e-3,
        ..Scenario::default()
    };
    let mobility = MobilityConfig::default();
    for seed in [31, 32] {
        let fast = run_mobile(&scenario, ProtocolKind::Bmmm, mobility, seed);
        let naive = run_mobile_naive(&scenario, ProtocolKind::Bmmm, mobility, seed);
        assert_eq!(
            canonical(fast),
            canonical(naive),
            "mobile seed {seed}: RunResult diverged"
        );
    }
}
