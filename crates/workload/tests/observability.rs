//! End-to-end observability tests: traced BMMM runs export JSONL from
//! which the paper's batch invariants are checked, and tracing itself
//! never perturbs the simulation.

use rmm_mac::ProtocolKind;
use rmm_sim::{max_idle_gap, MsgId, Trace, TraceEvent};
use rmm_workload::{collect_metrics, run_one, run_one_traced, Scenario, TrafficMix};
use std::collections::BTreeMap;

fn traced_scenario() -> Scenario {
    Scenario {
        n_nodes: 30,
        sim_slots: 3_000,
        n_runs: 1,
        msg_rate: 1e-3,
        mix: TrafficMix {
            unicast: 0.0,
            multicast: 1.0,
            broadcast: 0.0,
        },
        ..Scenario::default()
    }
}

/// The acceptance-criteria invariant: inside every completed BMMM batch
/// the medium never goes idle for DIFS slots (no bystander's backoff can
/// complete — the paper's co-existence argument), and every batch is
/// served by exactly one contention phase. Checked on events exported to
/// JSONL and parsed back, so the export path is part of the test.
#[test]
fn bmmm_batches_hold_idle_gap_and_single_contention_invariants() {
    let scenario = traced_scenario();
    let (_result, trace) = run_one_traced(&scenario, ProtocolKind::Bmmm, 11);
    let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("JSONL parses");
    assert_eq!(parsed.events(), trace.events());
    let events = parsed.events();
    let difs = u64::from(scenario.timing.difs);

    // Exactly one ContentionStart between consecutive BatchStarts of the
    // same message (one contention phase serves a whole batch).
    let mut contention_since: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    let key = |m: MsgId| (m.src.0, m.seq);
    let mut batches = 0u32;
    for ev in events {
        match ev {
            TraceEvent::ContentionStart { msg, .. } => {
                *contention_since.entry(key(*msg)).or_insert(0) += 1;
            }
            TraceEvent::BatchStart { msg, .. } => {
                let count = contention_since.insert(key(*msg), 0).unwrap_or(0);
                assert_eq!(
                    count, 1,
                    "batch of {msg:?} began after {count} contention phases"
                );
                batches += 1;
            }
            _ => {}
        }
    }
    assert!(batches >= 5, "only {batches} batches traced");

    // No idle gap inside a completed batch ever reaches DIFS.
    let mut starts: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
    let mut checked = 0u32;
    for ev in events {
        match ev {
            TraceEvent::BatchStart {
                slot, msg, round, ..
            } => {
                starts.insert((msg.src.0, msg.seq, *round), *slot);
            }
            TraceEvent::BatchEnd {
                slot, msg, round, ..
            } => {
                let from = starts[&(msg.src.0, msg.seq, *round)];
                let gap = max_idle_gap(events, from, slot + 1);
                assert!(
                    gap < difs,
                    "batch {round} of {msg:?} left the medium idle {gap} >= DIFS {difs}"
                );
                checked += 1;
            }
            _ => {}
        }
    }
    assert!(checked >= 5, "only {checked} completed batches checked");
}

/// Enabling tracing must not change a single metric: the traced run is
/// slot-for-slot the run it observes.
#[test]
fn tracing_changes_no_metric_values() {
    let scenario = traced_scenario();
    let plain = run_one(&scenario, ProtocolKind::Lamm, 3);
    let (traced, trace) = run_one_traced(&scenario, ProtocolKind::Lamm, 3);
    assert!(!trace.events().is_empty());
    assert_eq!(plain.messages.len(), traced.messages.len());
    assert_eq!(plain.collisions, traced.collisions);
    assert_eq!(plain.utilization, traced.utilization);
    assert_eq!(plain.mean_degree, traced.mean_degree);
    assert_eq!(
        plain.group_metrics.delivery_rate,
        traced.group_metrics.delivery_rate
    );
    assert_eq!(
        plain.group_metrics.avg_contention_phases,
        traced.group_metrics.avg_contention_phases
    );
    assert_eq!(
        plain.group_metrics.avg_completion_time,
        traced.group_metrics.avg_completion_time
    );
    assert!(!plain.manifest.traced);
    assert!(traced.manifest.traced);
}

/// The trace-derived registry is populated and internally consistent
/// for a BMMM run.
#[test]
fn collected_metrics_are_consistent_with_the_trace() {
    let scenario = traced_scenario();
    let (result, trace) = run_one_traced(&scenario, ProtocolKind::Bmmm, 7);
    let reg = collect_metrics(trace.events(), &result.messages);
    assert!(reg.counter("tx_frames") > 0);
    assert!(reg.counter("contention_starts") >= reg.counter("contention_wins"));
    assert!(reg.counter("batches") > 0);
    assert_eq!(
        reg.counter("batches"),
        u64::from(
            trace
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::BatchStart { .. }))
                .count() as u32
        )
    );
    // Every poll is an RTS or RAK control frame the engine also saw.
    assert!(reg.counter("polls_rts") + reg.counter("polls_rak") <= reg.counter("tx_frames"));
    assert!(reg
        .histogram("contention_phases_per_msg")
        .is_some_and(|h| h.count() == result.messages.len() as u64));
    assert!(reg.histogram("batch_len").is_some_and(|h| h.count() > 0));
}

/// LAMM emits cover-set events whose cover is a subset of the full set,
/// and the manifest records reproducible provenance.
#[test]
fn lamm_cover_sets_and_manifest_provenance() {
    let scenario = traced_scenario();
    let (result, trace) = run_one_traced(&scenario, ProtocolKind::Lamm, 9);
    let mut cover_sets = 0;
    for ev in trace.events() {
        if let TraceEvent::CoverSetComputed { full, cover, .. } = ev {
            assert!(!cover.is_empty());
            assert!(cover.iter().all(|n| full.contains(n)));
            cover_sets += 1;
        }
    }
    assert!(cover_sets > 0, "LAMM never computed a cover set");
    assert_eq!(result.manifest.protocol, ProtocolKind::Lamm);
    assert_eq!(result.manifest.seed, 9);
    assert_eq!(result.manifest.slot_budget, scenario.sim_slots);
    assert_eq!(result.manifest.scenario, scenario);
    assert!(result.manifest.wall_clock.total_us() > 0);
}
