//! Workload-level fault-injection guarantees:
//!
//! 1. **RNG-stream isolation** — enabling fault machinery that never
//!    fires (a crash scheduled after the run, a burst channel that never
//!    leaves Good, a watchdog on a healthy run) leaves the simulation
//!    bit-identical to a plain run. Faults draw from their own RNG
//!    streams, so zero faults ⇒ zero perturbation.
//! 2. **Watchdog** — with bounded retry budgets in place, a crashed
//!    receiver never produces a stall report (the firing predicate
//!    itself is unit-tested next to `check_stalls` in the runner).
//! 3. **Graceful degradation** — one crashed receiver leaves every
//!    protocol live: runs finish without stalls, budgeted protocols emit
//!    give-ups, and the reachable-receiver delivery metric stays honest.

use rmm_mac::{MacTiming, ProtocolKind};
use rmm_sim::{FaultPlan, GilbertElliott, NodeId, TraceEvent};
use rmm_workload::{run_one, run_one_traced, PhaseTimings, RunResult, Scenario};

const ALL_PROTOCOLS: [ProtocolKind; 8] = [
    ProtocolKind::Ieee80211,
    ProtocolKind::TangGerla,
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
    ProtocolKind::LeaderBased,
    ProtocolKind::BmmmUncoordinated,
];

/// Serializes a result with nondeterministic provenance (wall clock) and
/// the configuration echo (the manifest embeds the scenario, which
/// legitimately differs between variants) neutralized.
fn canonical(mut r: RunResult, baseline: &RunResult) -> String {
    r.manifest = baseline.manifest.clone();
    r.manifest.wall_clock = PhaseTimings::default();
    serde_json::to_string(&r).expect("RunResult serializes")
}

#[test]
fn inert_fault_machinery_leaves_runs_bit_identical() {
    let base = Scenario {
        n_nodes: 30,
        sim_slots: 2_000,
        n_runs: 1,
        msg_rate: 1.5e-3,
        ..Scenario::default()
    };
    // Each variant arms a fault feature in a way that can never fire:
    // the crash lands after the run ends, the burst chain has p = 0 (it
    // never leaves Good), and the watchdog only observes.
    let variants: [(&str, Scenario); 3] = [
        (
            "never-firing crash",
            base.clone()
                .with_faults(FaultPlan::new().crash(NodeId(4), base.sim_slots + 1_000)),
        ),
        (
            "zero-loss burst channel",
            base.clone().with_burst(GilbertElliott::new(0.0, 1.0)),
        ),
        (
            "watchdog on healthy run",
            base.clone().with_stall_window(400),
        ),
    ];
    for protocol in [ProtocolKind::Bmmm, ProtocolKind::Bsma, ProtocolKind::Bmw] {
        for seed in [1, 7] {
            let (plain, plain_trace) = run_one_traced(&base, protocol, seed);
            for (label, scenario) in &variants {
                let (got, got_trace) = run_one_traced(scenario, protocol, seed);
                assert_eq!(
                    plain_trace.events(),
                    got_trace.events(),
                    "[{label}] {protocol:?} seed {seed}: trace diverged"
                );
                assert_eq!(
                    canonical(plain.clone(), &plain),
                    canonical(got, &plain),
                    "[{label}] {protocol:?} seed {seed}: RunResult diverged"
                );
            }
        }
    }
}

/// A scenario where node 1 is likely to be a multicast target: small and
/// dense, with enough traffic to exercise every sender.
fn crash_scenario(timing: MacTiming) -> Scenario {
    Scenario {
        n_nodes: 20,
        sim_slots: 4_000,
        n_runs: 1,
        msg_rate: 2e-3,
        timing,
        ..Scenario::default()
    }
    .with_faults(FaultPlan::new().crash(NodeId(1), 0))
    .with_stall_window(600)
}

#[test]
fn default_budgets_keep_a_crashed_receiver_stall_free() {
    let timing = MacTiming {
        timeout: 4_000,
        ..Default::default()
    };
    let scenario = crash_scenario(timing);
    for seed in 0..6 {
        let r = run_one(&scenario, ProtocolKind::Bmw, seed);
        assert!(
            r.stalls.is_empty(),
            "seed {seed}: budgeted run stalled: {:?}",
            r.stalls
        );
    }
}

#[test]
fn one_crashed_receiver_degrades_gracefully_for_every_protocol() {
    let timing = MacTiming {
        timeout: 2_000,
        dest_retry_limit: 3,
        ..Default::default()
    };
    let scenario = Scenario {
        n_nodes: 20,
        sim_slots: 6_000,
        n_runs: 1,
        msg_rate: 2e-3,
        timing,
        ..Scenario::default()
    }
    .with_faults(FaultPlan::new().crash(NodeId(1), 0))
    .with_stall_window(1_000);
    let mut any_give_up = false;
    let mut any_unreachable = false;
    for protocol in ALL_PROTOCOLS {
        for seed in [3, 4] {
            let (r, trace) = run_one_traced(&scenario, protocol, seed);
            assert!(
                r.stalls.is_empty(),
                "{protocol:?} seed {seed}: stalled with a single crashed receiver: {:?}",
                r.stalls
            );
            any_give_up |= trace
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::GiveUp { .. }));
            for m in &r.messages {
                assert!(
                    m.reachable <= m.intended,
                    "{protocol:?}: reachable accounting"
                );
                assert!(m.delivered_reachable <= m.delivered);
                any_unreachable |= m.reachable < m.intended;
            }
            // Reachable-basis delivery can only improve on the raw rate.
            assert!(
                r.group_metrics.avg_reachable_frac >= r.group_metrics.avg_delivered_frac - 1e-12,
                "{protocol:?} seed {seed}: reachable frac below raw frac"
            );
        }
    }
    assert!(any_give_up, "no protocol ever gave up on the crashed node");
    assert!(
        any_unreachable,
        "the crashed node was never an intended receiver — scenario too sparse"
    );
}
