//! Property-based tests for the workload layer: traffic generation,
//! placement, mobility, and the runner's accounting.

use proptest::prelude::*;
use rmm_mac::{ProtocolKind, TrafficKind};
use rmm_workload::{
    run_one, uniform_square, MobilityConfig, RandomWaypoint, Scenario, TrafficGen, TrafficMix,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated receivers are always current neighbors, deduplicated,
    /// and sized per traffic class.
    #[test]
    fn traffic_respects_topology(n in 10usize..60, rate in 0.001f64..0.05, seed in 0u64..1000) {
        let topo = uniform_square(n, 0.2, seed);
        let mut gen = TrafficGen::new(rate, TrafficMix::default(), seed);
        let mut out = Vec::new();
        for t in 0..200 {
            gen.tick(&topo, t, &mut out);
            for a in &out {
                prop_assert!(!a.receivers.is_empty());
                let neighbors = topo.neighbors(a.node);
                for r in &a.receivers {
                    prop_assert!(neighbors.contains(r));
                }
                let mut dedup = a.receivers.clone();
                dedup.sort();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), a.receivers.len());
                match a.kind {
                    TrafficKind::Unicast => prop_assert_eq!(a.receivers.len(), 1),
                    TrafficKind::Broadcast => {
                        prop_assert_eq!(a.receivers.len(), neighbors.len())
                    }
                    TrafficKind::Multicast => {
                        prop_assert!(a.receivers.len() <= neighbors.len())
                    }
                }
            }
        }
    }

    /// Random-waypoint motion stays in the unit square and respects the
    /// speed bound, for arbitrary speeds and step patterns.
    #[test]
    fn mobility_invariants(
        vmax in 0.0f64..0.01,
        steps in prop::collection::vec(1u64..500, 1..10),
        seed in 0u64..1000,
    ) {
        let init = uniform_square(20, 0.2, seed).positions().to_vec();
        let config = MobilityConfig { speed_min: 0.0, speed_max: vmax, ..Default::default() };
        let mut model = RandomWaypoint::new(init.clone(), config, seed);
        let mut elapsed = 0u64;
        for &dt in &steps {
            model.step(dt);
            elapsed += dt;
            for (i, p) in model.positions().iter().enumerate() {
                prop_assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
                prop_assert!(
                    init[i].dist(p) <= vmax * elapsed as f64 + 1e-9,
                    "node {i} outran its speed bound"
                );
            }
        }
    }

    /// Runner accounting: the population cut keeps only messages whose
    /// timeout window fits, metrics are in range, and frame totals are
    /// consistent with the by-kind breakdown.
    #[test]
    fn runner_accounting(seed in 0u64..200) {
        let s = Scenario {
            n_nodes: 35,
            sim_slots: 1_500,
            msg_rate: 2e-3,
            n_runs: 1,
            ..Scenario::default()
        };
        let r = run_one(&s, ProtocolKind::Bmmm, seed);
        let cutoff = s.sim_slots - s.timing.timeout;
        for m in &r.messages {
            prop_assert!(m.arrival <= cutoff);
            prop_assert!(m.delivered <= m.intended);
        }
        prop_assert!((0.0..=1.0).contains(&r.group_metrics.delivery_rate));
        prop_assert!((0.0..=1.0).contains(&r.utilization));
        prop_assert_eq!(
            r.frames.total(),
            r.frames.control_total() + r.frames.data,
        );
        // Frames were actually sent if messages flowed.
        if r.group_metrics.messages > 0 && r.group_metrics.delivery_rate > 0.0 {
            prop_assert!(r.frames.data > 0);
        }
    }

    /// The channel airtime ledger partitions every run slot exactly —
    /// idle + DATA-success + control overhead + collision == total — for
    /// every protocol, and its busy share agrees with the channel's
    /// independent per-slot busy counter (which is what `utilization`
    /// reports).
    #[test]
    fn airtime_ledger_partitions_exactly(seed in 0u64..64, pidx in 0usize..8) {
        // ProtocolKind::ALL omits the uncoordinated ablation variant;
        // the ledger invariant must hold for that one too.
        let protocol = [
            ProtocolKind::Ieee80211,
            ProtocolKind::TangGerla,
            ProtocolKind::Bsma,
            ProtocolKind::Bmw,
            ProtocolKind::Bmmm,
            ProtocolKind::Lamm,
            ProtocolKind::LeaderBased,
            ProtocolKind::BmmmUncoordinated,
        ][pidx];
        let s = Scenario {
            n_nodes: 30,
            sim_slots: 1_200,
            msg_rate: 2e-3,
            n_runs: 1,
            ..Scenario::default()
        };
        let r = run_one(&s, protocol, seed);
        let a = r.airtime;
        prop_assert_eq!(a.total_slots, s.sim_slots);
        prop_assert_eq!(
            a.idle_slots + a.data_slots + a.control_slots + a.collision_slots,
            a.total_slots,
            "{:?} seed {}: ledger partition broken", protocol, seed
        );
        prop_assert_eq!(
            a.busy_slots() as f64 / a.total_slots as f64,
            r.utilization,
            "{:?} seed {}: ledger busy share disagrees with busy_slots", protocol, seed
        );
        // The per-kind airtime covers at least every busy slot (frames
        // may extend past the run end, so it can exceed the clamped
        // breakdown, never undershoot it).
        prop_assert!(a.by_kind.total() >= a.data_slots + a.control_slots + a.collision_slots);
    }
}
