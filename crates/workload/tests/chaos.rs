//! Integration tests for the chaos harness.
//!
//! Three angles: healthy runs satisfy every invariant for every
//! protocol (so a chaos failure always means a real schedule-induced
//! defect, not checker noise); generated schedules with the default
//! bounded-retry timing stay clean too (the harness's false-positive
//! guard); and the committed repro corpus under `tests/chaos_corpus/`
//! keeps replaying to the exact violation set it was minimized to.

use proptest::prelude::*;
use rmm_mac::ProtocolKind;
use rmm_workload::{check_invariants, ChaosRepro, ChaosSchedule, Scenario};

const ALL_PROTOCOLS: [ProtocolKind; 8] = [
    ProtocolKind::Ieee80211,
    ProtocolKind::TangGerla,
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
    ProtocolKind::LeaderBased,
    ProtocolKind::BmmmUncoordinated,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A fault-free, churn-free run must pass every invariant — stall,
    /// termination, retry budget, membership, airtime partition, and
    /// fast-vs-naive determinism — for any protocol and seed.
    #[test]
    fn healthy_runs_satisfy_every_invariant(
        seed in 0u64..1 << 32,
        pidx in 0usize..ALL_PROTOCOLS.len(),
    ) {
        let scenario = Scenario {
            n_nodes: 16,
            sim_slots: 1_500,
            n_runs: 1,
            msg_rate: 2e-3,
            ..Scenario::default()
        }
        .with_stall_window(600);
        let protocol = ALL_PROTOCOLS[pidx];
        let violations = check_invariants(&scenario, protocol, seed);
        prop_assert!(
            violations.is_empty(),
            "{protocol:?} seed {seed}: {violations:?}"
        );
    }

    /// With the default bounded-retry timing, even faulted + churned
    /// schedules keep every invariant: budgets cap the retries a dead
    /// receiver can soak up, so no sender stalls and every message
    /// resolves. This is the false-positive guard for the CI chaos gate.
    #[test]
    fn generated_schedules_stay_clean_under_bounded_retries(
        seed in 0u64..1 << 32,
        pidx in 0usize..ALL_PROTOCOLS.len(),
    ) {
        let base = Scenario {
            n_nodes: 16,
            sim_slots: 1_500,
            n_runs: 1,
            msg_rate: 2e-3,
            ..Scenario::default()
        };
        let schedule = ChaosSchedule::generate(base.n_nodes, base.sim_slots, seed);
        let protocol = ALL_PROTOCOLS[pidx];
        let violations = check_invariants(&schedule.apply(&base), protocol, seed);
        prop_assert!(
            violations.is_empty(),
            "{protocol:?} seed {seed} schedule {schedule:?}: {violations:?}"
        );
    }
}

/// Every committed repro in `tests/chaos_corpus/` must still replay to
/// exactly the violation kinds it was shrunk to. A drift here means a
/// behavior change reached a previously-minimized failure.
#[test]
fn corpus_repros_replay_to_their_recorded_violations() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/chaos_corpus");
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(&dir).expect("corpus directory exists") {
        let path = entry.expect("corpus entry readable").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let repro: ChaosRepro = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: not a ChaosRepro: {e}", path.display()));
        let found = repro
            .replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !found.is_empty(),
            "{}: repro replayed clean",
            path.display()
        );
        replayed += 1;
    }
    assert!(replayed > 0, "chaos corpus is empty");
}
