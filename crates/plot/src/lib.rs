//! Minimal, dependency-free SVG line charts.
//!
//! The experiment harness uses this to render each reproduced figure
//! (`results/fig*.svg`) next to its CSV, so the repository regenerates
//! the paper's *figures*, not just their numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chart;
pub mod svg;

pub use chart::{Chart, Series};
