//! Line charts with axes, ticks and a legend — enough to render the
//! paper's figures.

use crate::svg::Svg;

/// Default categorical palette (color-blind-friendlier hues).
pub const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A line chart.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    y_from_zero: bool,
}

impl Chart {
    /// Creates a chart with the given title and axis labels.
    pub fn new<S: Into<String>>(title: S, x_label: S, y_label: S) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            y_from_zero: true,
        }
    }

    /// Adds a series.
    pub fn series(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    /// Whether the y axis is forced to start at zero (default true —
    /// honest comparisons).
    pub fn y_from_zero(&mut self, yes: bool) -> &mut Self {
        self.y_from_zero = yes;
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self.series.iter().flat_map(|s| s.points.iter());
        let first = pts.next()?;
        let (mut x0, mut x1, mut y0, mut y1) = (first.0, first.0, first.1, first.1);
        for &(x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if self.y_from_zero {
            y0 = y0.min(0.0);
        }
        // Degenerate ranges get padded so projection stays finite.
        if (x1 - x0).abs() < 1e-12 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 += 1.0;
        }
        Some((x0, x1, y0, y1))
    }

    /// Renders the chart as an SVG document string.
    pub fn render(&self, width: f64, height: f64) -> String {
        let mut svg = Svg::new(width, height);
        let (ml, mr, mt, mb) = (62.0, 16.0, 34.0, 46.0); // margins
        let (px0, px1) = (ml, width - mr);
        let (py0, py1) = (height - mb, mt); // y is flipped in SVG
        svg.text(width / 2.0, 18.0, 14.0, "middle", &self.title);

        let Some((x0, x1, y0, y1)) = self.bounds() else {
            svg.text(width / 2.0, height / 2.0, 12.0, "middle", "(no data)");
            return svg.render();
        };
        let sx = |x: f64| px0 + (x - x0) / (x1 - x0) * (px1 - px0);
        let sy = |y: f64| py0 + (y - y0) / (y1 - y0) * (py1 - py0);

        // Axes.
        svg.line(px0, py0, px1, py0, "#333", 1.0);
        svg.line(px0, py0, px0, py1, "#333", 1.0);
        svg.text(
            (px0 + px1) / 2.0,
            height - 10.0,
            11.0,
            "middle",
            &self.x_label,
        );
        svg.text(14.0, (py0 + py1) / 2.0, 11.0, "middle", &self.y_label);

        // Ticks (5 per axis).
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            svg.line(sx(fx), py0, sx(fx), py0 + 4.0, "#333", 1.0);
            svg.text(sx(fx), py0 + 16.0, 9.0, "middle", &format_tick(fx));
            svg.line(px0 - 4.0, sy(fy), px0, sy(fy), "#333", 1.0);
            svg.text(px0 - 7.0, sy(fy) + 3.0, 9.0, "end", &format_tick(fy));
            // Light gridline.
            svg.line(px0, sy(fy), px1, sy(fy), "#eee", 0.5);
        }

        // Series + markers.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<(f64, f64)> = s.points.iter().map(|&(x, y)| (sx(x), sy(y))).collect();
            svg.polyline(&pts, color, 1.8);
            for &(x, y) in &pts {
                svg.circle(x, y, 2.4, color);
            }
        }

        // Legend (top-right, stacked).
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let y = mt + 14.0 * i as f64;
            svg.rect(px1 - 104.0, y - 7.0, 10.0, 10.0, color);
            svg.text(px1 - 90.0, y + 2.0, 10.0, "start", &s.label);
        }
        svg.render()
    }

    /// Renders and writes the chart to `path`, creating parent dirs.
    pub fn write(&self, path: &std::path::Path, width: f64, height: f64) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render(width, height))
    }
}

fn format_tick(v: f64) -> String {
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if !(0.01..10_000.0).contains(&a) {
        format!("{v:.1e}")
    } else if a < 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        let mut c = Chart::new("Delivery", "density", "rate");
        c.series(Series::new(
            "LAMM",
            vec![(4.0, 0.99), (8.0, 0.94), (12.0, 0.78)],
        ));
        c.series(Series::new(
            "BMW",
            vec![(4.0, 0.92), (8.0, 0.57), (12.0, 0.33)],
        ));
        c
    }

    #[test]
    fn renders_series_and_legend() {
        let doc = sample_chart().render(480.0, 320.0);
        assert!(doc.contains("LAMM"));
        assert!(doc.contains("BMW"));
        assert!(doc.matches("<polyline").count() == 2);
        // 6 data markers.
        assert_eq!(doc.matches("<circle").count(), 6);
        assert!(doc.contains("Delivery"));
    }

    #[test]
    fn empty_chart_says_no_data() {
        let c = Chart::new("t", "x", "y");
        assert!(c.render(200.0, 100.0).contains("(no data)"));
    }

    #[test]
    fn degenerate_ranges_do_not_produce_nan() {
        let mut c = Chart::new("t", "x", "y");
        c.series(Series::new("s", vec![(1.0, 2.0), (1.0, 2.0)]));
        let doc = c.render(200.0, 100.0);
        assert!(!doc.contains("NaN"));
        assert!(!doc.contains("inf"));
    }

    #[test]
    fn y_axis_starts_at_zero_by_default() {
        // With values in [0.5, 1.0] the zero tick must still appear.
        let doc = sample_chart().render(480.0, 320.0);
        assert!(doc.contains(">0</text>"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(0.5), "0.50");
        assert_eq!(format_tick(150.0), "150");
        assert_eq!(format_tick(0.0005), "5.0e-4");
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join("rmm_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a/chart.svg");
        sample_chart().write(&path, 300.0, 200.0).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
