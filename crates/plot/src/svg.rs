//! Tiny SVG document builder: just the elements a line chart needs.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes text content for XML.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl Svg {
    /// Creates an empty document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        Svg {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// Adds a polyline through `points`.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"/>"#,
            pts.join(" ")
        );
    }

    /// Adds a filled circle (data-point marker).
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r}" fill="{fill}"/>"#
        );
    }

    /// Adds text. `anchor` is `start`, `middle`, or `end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            escape(content)
        );
    }

    /// Adds a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}"/>"#
        );
    }

    /// Finalizes the document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n{}\
             </svg>\n",
            self.body,
            w = self.width,
            h = self.height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_document() {
        let mut svg = Svg::new(100.0, 50.0);
        svg.line(0.0, 0.0, 10.0, 10.0, "black", 1.0);
        svg.circle(5.0, 5.0, 2.0, "red");
        svg.text(1.0, 1.0, 10.0, "start", "hello");
        let doc = svg.render();
        assert!(doc.starts_with("<svg "));
        assert!(doc.trim_end().ends_with("</svg>"));
        assert!(doc.contains("<line "));
        assert!(doc.contains("<circle "));
        assert!(doc.contains(">hello</text>"));
    }

    #[test]
    fn escapes_xml_metacharacters() {
        assert_eq!(escape("a<b & \"c\">"), "a&lt;b &amp; &quot;c&quot;&gt;");
        let mut svg = Svg::new(10.0, 10.0);
        svg.text(0.0, 0.0, 8.0, "start", "p < q & r");
        assert!(svg.render().contains("p &lt; q &amp; r"));
    }

    #[test]
    fn empty_polyline_is_omitted() {
        let mut svg = Svg::new(10.0, 10.0);
        svg.polyline(&[], "blue", 1.0);
        assert!(!svg.render().contains("polyline"));
    }

    #[test]
    fn polyline_joins_points() {
        let mut svg = Svg::new(10.0, 10.0);
        svg.polyline(&[(0.0, 0.0), (5.0, 5.0)], "blue", 1.5);
        assert!(svg.render().contains(r#"points="0.0,0.0 5.0,5.0""#));
    }
}
