//! Property-based tests for the Section 6 analytical models.

use proptest::prelude::*;
use rmm_analysis::{
    airtime::Airtime, binomial, bmmm_expected_total_phases, bmmm_phases_before_data,
    bmw_expected_total_phases, bmw_phases_before_data, bsma_phases_before_data,
    contention::bsma_phases_before_data_with, lamm_phases_before_data,
};

proptest! {
    /// Binomials are positive, symmetric, and satisfy Pascal's rule.
    #[test]
    fn binomial_identities(n in 0usize..40, k in 0usize..40) {
        let b = binomial(n, k);
        if k > n {
            prop_assert_eq!(b, 0.0);
        } else {
            prop_assert!(b >= 1.0);
            prop_assert_eq!(b, binomial(n, n - k));
            if k >= 1 && n >= 1 {
                let pascal = binomial(n - 1, k - 1) + binomial(n - 1, k);
                prop_assert!((b - pascal).abs() / b.max(1.0) < 1e-9);
            }
        }
    }

    /// Expected contention phases are always ≥ 1 and ordered
    /// BMMM ≤ LAMM ≤ BMW for any q and cover set no larger than n.
    #[test]
    fn phases_before_data_ordering(q in 0.0f64..0.9, n in 1usize..30, cover_frac in 0.1f64..1.0) {
        let cover = ((n as f64 * cover_frac).ceil() as usize).clamp(1, n);
        let bmmm = bmmm_phases_before_data(q, n);
        let lamm = lamm_phases_before_data(q, cover);
        let bmw = bmw_phases_before_data(q);
        prop_assert!(bmmm >= 1.0 - 1e-12);
        prop_assert!(lamm >= bmmm - 1e-9, "polling fewer receivers can't help");
        prop_assert!(bmw >= lamm - 1e-9);
    }

    /// BSMA with perfect capture equals BMMM; with zero capture it
    /// diverges (no phase can ever succeed).
    #[test]
    fn bsma_capture_extremes(q in 0.0f64..0.5, n in 1usize..15) {
        let perfect = bsma_phases_before_data_with(q, n, |_| 1.0);
        prop_assert!((perfect - bmmm_phases_before_data(q, n)).abs() < 1e-6);
        let real = bsma_phases_before_data(q, n);
        prop_assert!(real >= perfect - 1e-9);
    }

    /// The f_n recursion: ≥ 1, monotone in n, decreasing in p, and equal
    /// to the geometric 1/p at n = 1.
    #[test]
    fn f_n_properties(n in 1usize..30, p in 0.05f64..1.0) {
        let f = bmmm_expected_total_phases(n, p);
        prop_assert!(f >= 1.0 - 1e-12);
        prop_assert!((bmmm_expected_total_phases(1, p) - 1.0 / p).abs() < 1e-9);
        if n > 1 {
            prop_assert!(f >= bmmm_expected_total_phases(n - 1, p) - 1e-9);
        }
        let easier = bmmm_expected_total_phases(n, (p + 1.0) / 2.0);
        prop_assert!(easier <= f + 1e-9);
        // And always at most BMW's n/p.
        prop_assert!(f <= bmw_expected_total_phases(n, p) + 1e-9);
    }

    /// Airtime formulas: batch grows linearly in m; BMMM's completion
    /// advantage over BMW grows monotonically with m.
    #[test]
    fn airtime_monotonicity(m in 1usize..50, c in 1u64..4, d in 1u64..12, difs in 1u64..8, cw in 0u64..64) {
        let a = Airtime { control: c, data: d, difs, cw };
        prop_assert_eq!(a.bmmm_batch(m) - a.bmmm_batch(m - 1), 4 * c);
        let gap_m = a.bmw_completion(m) - a.bmmm_completion(m);
        let gap_prev = a.bmw_completion(m.saturating_sub(1).max(1)) - a.bmmm_completion(m.saturating_sub(1).max(1));
        if m >= 2 {
            // Each extra receiver costs BMW a re-access + have-round and
            // BMMM only 4 control slots; the gap change is constant.
            let delta = gap_m - gap_prev;
            let expect = a.expected_reaccess_delay() + a.bmw_have_round() as f64 - 4.0 * c as f64;
            prop_assert!((delta - expect).abs() < 1e-9);
        }
    }

    /// Frame budgets are monotone in the receiver count and LAMM (smaller
    /// m) never exceeds BMMM.
    #[test]
    fn frame_budget_monotone(m in 1usize..40, cover in 1usize..40) {
        use rmm_analysis::FrameBudgetProtocol::*;
        let a = Airtime::default();
        let cover = cover.min(m);
        for proto in [Ieee80211, TangGerla, Bsma, Bmw, Bmmm] {
            let (c1, d1) = a.frame_budget(proto, m);
            let (c0, d0) = a.frame_budget(proto, m - 1);
            prop_assert!(c1 >= c0 && d1 >= d0);
        }
        let (bmmm_c, _) = a.frame_budget(Bmmm, m);
        let (lamm_c, _) = a.frame_budget(Bmmm, cover);
        prop_assert!(lamm_c <= bmmm_c);
    }
}
