//! Expected number of contention phases **before the sender transmits the
//! data frame** (paper Section 6, Table 1).
//!
//! Let `q` be the probability that the sender misses the CTS of one given
//! receiver (RTS error/collision, receiver yielding, CTS error). A
//! protocol re-enters contention until it hears at least one CTS:
//!
//! * BMMM polls all `n` receivers in one phase → success prob `1 − qⁿ`,
//! * LAMM polls the cover set of size `‖S′‖` → `1 − q^{‖S′‖}`,
//! * BMW polls one receiver per phase → `1 − q`,
//! * BSMA's receivers answer simultaneously; `k` CTS replies survive the
//!   channel with probability `C(n,k)(1−q)^k q^{n−k}` and are then only
//!   decodable via capture with probability `C_k`.
//!
//! The expected number of phases is the reciprocal of the per-phase
//! success probability (geometric distribution).

use crate::combinatorics::binomial;
use rmm_sim::zorzi_rao_capture;

/// Expected contention phases before BMMM sends data (`1 / (1 − qⁿ)`).
pub fn bmmm_phases_before_data(q: f64, n: usize) -> f64 {
    1.0 / (1.0 - q.powi(n as i32))
}

/// Expected contention phases before LAMM sends data, with a cover set of
/// size `cover` (`1 / (1 − q^{‖S′‖})`).
pub fn lamm_phases_before_data(q: f64, cover: usize) -> f64 {
    1.0 / (1.0 - q.powi(cover as i32))
}

/// Expected contention phases before BMW sends data (`1 / (1 − q)`).
pub fn bmw_phases_before_data(q: f64) -> f64 {
    1.0 / (1.0 - q)
}

/// Expected contention phases before BSMA sends data, accounting for CTS
/// collisions and DS capture. `capture(k)` is the probability of decoding
/// the strongest of `k` simultaneous CTS frames.
pub fn bsma_phases_before_data_with<F: Fn(usize) -> f64>(q: f64, n: usize, capture: F) -> f64 {
    let p_success: f64 = (1..=n)
        .map(|k| binomial(n, k) * (1.0 - q).powi(k as i32) * q.powi((n - k) as i32) * capture(k))
        .sum();
    1.0 / p_success
}

/// [`bsma_phases_before_data_with`] using the calibrated Zorzi–Rao
/// capture curve (the paper's setting).
pub fn bsma_phases_before_data(q: f64, n: usize) -> f64 {
    bsma_phases_before_data_with(q, n, zorzi_rao_capture)
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Per-receiver CTS-miss probability.
    pub q: f64,
    /// Number of intended receivers.
    pub n: usize,
    /// LAMM cover-set size.
    pub cover: usize,
    /// Expected phases for BMMM.
    pub bmmm: f64,
    /// Expected phases for LAMM.
    pub lamm: f64,
    /// Expected phases for BMW.
    pub bmw: f64,
    /// Expected phases for BSMA.
    pub bsma: f64,
}

/// Computes a Table 1 row for the given parameters.
///
/// ```
/// use rmm_analysis::table1;
/// // The paper's first row: q = 0.05, n = 5, ‖S′‖ = 4.
/// let row = table1(0.05, 5, 4);
/// assert!((row.bmmm - 1.00).abs() < 0.01);
/// assert!((row.bmw - 1.05).abs() < 0.01);
/// assert!((row.bsma - 3.27).abs() < 0.15);
/// ```
pub fn table1(q: f64, n: usize, cover: usize) -> Table1Row {
    Table1Row {
        q,
        n,
        cover,
        bmmm: bmmm_phases_before_data(q, n),
        lamm: lamm_phases_before_data(q, cover),
        bmw: bmw_phases_before_data(q),
        bsma: bsma_phases_before_data(q, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_first_row_matches_paper() {
        // Paper: q = 0.05, n = 5, ‖S′‖ = 4 → 1.00, 1.00, 1.05, 3.27.
        let row = table1(0.05, 5, 4);
        assert!((row.bmmm - 1.00).abs() < 0.005, "BMMM {}", row.bmmm);
        assert!((row.lamm - 1.00).abs() < 0.005, "LAMM {}", row.lamm);
        assert!((row.bmw - 1.05).abs() < 0.005, "BMW {}", row.bmw);
        assert!((row.bsma - 3.27).abs() < 0.15, "BSMA {}", row.bsma);
    }

    #[test]
    fn table1_second_row_matches_paper() {
        // Paper: q = 0.05, n = 10, ‖S′‖ = 6 → 1.00, 1.00, 1.05, 4.08.
        let row = table1(0.05, 10, 6);
        assert!((row.bmmm - 1.00).abs() < 0.005);
        assert!((row.lamm - 1.00).abs() < 0.005);
        assert!((row.bmw - 1.05).abs() < 0.005);
        assert!((row.bsma - 4.08).abs() < 0.20, "BSMA {}", row.bsma);
    }

    #[test]
    fn bmmm_beats_bmw_beats_bsma() {
        for &(q, n) in &[(0.05, 5), (0.1, 8), (0.2, 10)] {
            let bmmm = bmmm_phases_before_data(q, n);
            let bmw = bmw_phases_before_data(q);
            let bsma = bsma_phases_before_data(q, n);
            assert!(bmmm <= bmw, "q={q} n={n}");
            assert!(bmw < bsma, "q={q} n={n}");
        }
    }

    #[test]
    fn single_receiver_degenerates() {
        // With one receiver BMMM, BMW and capture-free BSMA coincide.
        let q = 0.1;
        assert!((bmmm_phases_before_data(q, 1) - bmw_phases_before_data(q)).abs() < 1e-12);
        assert!((bsma_phases_before_data(q, 1) - 1.0 / (1.0 - q)).abs() < 1e-12);
    }

    #[test]
    fn bmmm_and_bmw_phases_grow_with_q() {
        for n in [2usize, 5, 10] {
            let mut prev_bmmm = 0.0;
            let mut prev_bmw = 0.0;
            for q in [0.01, 0.05, 0.2, 0.5] {
                let bmmm = bmmm_phases_before_data(q, n);
                let bmw = bmw_phases_before_data(q);
                assert!(bmmm >= prev_bmmm);
                assert!(bmw > prev_bmw);
                prev_bmmm = bmmm;
                prev_bmw = bmw;
            }
        }
    }

    #[test]
    fn bsma_capture_paradox() {
        // BSMA is *not* monotone in q: with more losses, fewer CTS frames
        // collide, so the survivors are easier to capture. A consequence
        // of relying on capture rather than coordination.
        let n = 5;
        assert!(bsma_phases_before_data(0.3, n) < bsma_phases_before_data(0.01, n));
    }

    #[test]
    fn bsma_worsens_with_more_receivers() {
        // More simultaneous CTS replies → lower capture → more phases.
        let q = 0.05;
        let mut prev = 0.0;
        for n in [2usize, 5, 10, 20] {
            let v = bsma_phases_before_data(q, n);
            assert!(v > prev, "n={n}: {v} ≤ {prev}");
            prev = v;
        }
    }

    #[test]
    fn at_least_one_phase_always() {
        for &(q, n) in &[(0.0, 1), (0.0, 10), (0.3, 3)] {
            assert!(bmmm_phases_before_data(q, n) >= 1.0);
            assert!(bsma_phases_before_data(q.max(0.01), n) >= 1.0);
        }
    }

    #[test]
    fn custom_capture_function_is_honored() {
        // Perfect capture: BSMA reduces to BMMM's success probability.
        let q = 0.05;
        let n = 5;
        let ideal = bsma_phases_before_data_with(q, n, |_| 1.0);
        assert!((ideal - bmmm_phases_before_data(q, n)).abs() < 1e-9);
    }
}
