//! Expected **total** number of contention phases per multicast message
//! (paper Section 6, Figure 5).
//!
//! Model: in each BMMM batch round, every remaining receiver is served
//! successfully with independent probability `p`; the round consumes one
//! contention phase; unserved receivers roll into the next round. The
//! paper derives the recursion
//!
//! ```text
//! f_n = 1 + Σ_{k=1}^{n} C(n,k) p^k (1−p)^{n−k} · f_{n−k}   (f_0 = 0)
//! ```
//!
//! where the `k = 0` term (all fail) is folded onto the left side:
//! `f_n · (1 − (1−p)ⁿ) = 1 + Σ_{k=1}^{n−1} C(n,k) pᵏ (1−p)^{n−k} f_{n−k}`.
//! The paper checks `f_1 = 1/p` and `f_2 = (3−2p)/(p(2−p))`; so do our
//! tests.
//!
//! For LAMM no closed form is given; we estimate it by Monte Carlo over
//! the geometry (receivers uniform in the sender's coverage disk), using
//! the real `MCS`/`UPDATE` procedures from `rmm-geom` and the same
//! per-receiver success probability `p`.

use crate::combinatorics::binomial;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm_geom::{min_cover_set, update_uncovered, Point};

/// Expected total contention phases for a BMMM multicast with `n`
/// receivers and per-round per-receiver success probability `p`.
///
/// ```
/// use rmm_analysis::bmmm_expected_total_phases;
/// // The paper's printed closed forms: f₁ = 1/p, f₂ = (3−2p)/(p(2−p)).
/// let p = 0.9;
/// assert!((bmmm_expected_total_phases(1, p) - 1.0 / p).abs() < 1e-12);
/// let f2 = (3.0 - 2.0 * p) / (p * (2.0 - p));
/// assert!((bmmm_expected_total_phases(2, p) - f2).abs() < 1e-12);
/// ```
pub fn bmmm_expected_total_phases(n: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p) && p > 0.0, "p must be in (0, 1]");
    let mut f = vec![0.0f64; n + 1];
    for m in 1..=n {
        let qm = (1.0 - p).powi(m as i32);
        let mut acc = 1.0;
        for k in 1..m {
            acc += binomial(m, k) * p.powi(k as i32) * (1.0 - p).powi((m - k) as i32) * f[m - k];
        }
        f[m] = acc / (1.0 - qm);
    }
    f[n]
}

/// Expected total contention phases for BMW: each of the `n` receivers
/// needs its own geometrically-distributed number of phases with success
/// probability `p` per phase, so the total is `n / p`.
pub fn bmw_expected_total_phases(n: usize, p: f64) -> f64 {
    n as f64 / p
}

/// Monte-Carlo estimate of the expected total contention phases for a
/// LAMM multicast: `trials` random receiver placements (uniform in the
/// sender's disk of radius `r`), batch rounds polling `MCS(S)` with
/// per-receiver success probability `p`, closing covered receivers with
/// `UPDATE`.
pub fn lamm_expected_total_phases(n: usize, p: f64, r: f64, trials: usize, seed: u64) -> f64 {
    assert!(p > 0.0);
    if n == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0.0f64;
    for _ in 0..trials {
        // Sender at the origin; receivers uniform in its disk.
        let pts: Vec<Point> = (0..n)
            .map(|_| loop {
                let x = rng.random_range(-r..=r);
                let y = rng.random_range(-r..=r);
                if x * x + y * y <= r * r {
                    break Point::new(x, y);
                }
            })
            .collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut phases = 0u32;
        let mut guard = 0;
        while !remaining.is_empty() {
            phases += 1;
            guard += 1;
            assert!(guard < 10_000, "LAMM Monte Carlo failed to converge");
            let batch = min_cover_set(&pts, &remaining, r);
            let acked: Vec<usize> = batch
                .iter()
                .copied()
                .filter(|_| rng.random::<f64>() < p)
                .collect();
            remaining = update_uncovered(&pts, &remaining, &acked, r);
        }
        total += f64::from(phases);
    }
    total / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_is_one_over_p() {
        for p in [0.3, 0.5, 0.9] {
            assert!((bmmm_expected_total_phases(1, p) - 1.0 / p).abs() < 1e-12);
        }
    }

    #[test]
    fn f2_matches_paper_closed_form() {
        // Paper: f_2 = (3 − 2p) / (p (2 − p)).
        for p in [0.3, 0.5, 0.9] {
            let expect = (3.0 - 2.0 * p) / (p * (2.0 - p));
            assert!(
                (bmmm_expected_total_phases(2, p) - expect).abs() < 1e-12,
                "p={p}"
            );
        }
    }

    #[test]
    fn f3_satisfies_paper_recursion() {
        // Paper: f_3 = 1 + C(3,1)p²(1−p)f_1 + C(3,2)p(1−p)²f_2 + (1−p)³f_3.
        let p = 0.9;
        let f1 = bmmm_expected_total_phases(1, p);
        let f2 = bmmm_expected_total_phases(2, p);
        let f3 = bmmm_expected_total_phases(3, p);
        let rhs = 1.0
            + 3.0 * p * p * (1.0 - p) * f1
            + 3.0 * p * (1.0 - p) * (1.0 - p) * f2
            + (1.0 - p).powi(3) * f3;
        assert!((f3 - rhs).abs() < 1e-9);
    }

    #[test]
    fn bmmm_is_sublinear_in_n() {
        // Figure 5's headline: the curve grows far slower than BMW's line.
        let p = 0.9;
        for n in [5usize, 10, 20] {
            let f = bmmm_expected_total_phases(n, p);
            let bmw = bmw_expected_total_phases(n, p);
            assert!(f < bmw / 2.0, "n={n}: BMMM {f} vs BMW {bmw}");
        }
        // And it is monotone in n.
        let mut prev = 0.0;
        for n in 1..=20 {
            let f = bmmm_expected_total_phases(n, 0.9);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn high_p_needs_about_one_phase() {
        let f = bmmm_expected_total_phases(10, 0.999);
        assert!(f < 1.05, "{f}");
    }

    #[test]
    fn bmw_is_linear() {
        assert_eq!(bmw_expected_total_phases(10, 0.9), 10.0 / 0.9);
        assert_eq!(bmw_expected_total_phases(0, 0.9), 0.0);
    }

    #[test]
    fn lamm_uses_no_more_phases_than_bmmm() {
        // LAMM closes receivers by coverage, so with the same p it needs
        // at most as many rounds (statistically) as BMMM.
        let p = 0.9;
        for n in [4usize, 8] {
            let lamm = lamm_expected_total_phases(n, p, 0.2, 400, 7);
            let bmmm = bmmm_expected_total_phases(n, p);
            assert!(lamm <= bmmm * 1.05, "n={n}: LAMM {lamm} vs BMMM {bmmm}");
        }
    }

    #[test]
    fn lamm_zero_receivers_is_zero() {
        assert_eq!(lamm_expected_total_phases(0, 0.9, 0.2, 10, 1), 0.0);
    }

    #[test]
    fn lamm_single_receiver_matches_geometric() {
        let p = 0.8;
        let est = lamm_expected_total_phases(1, p, 0.2, 4000, 11);
        assert!((est - 1.0 / p).abs() < 0.08, "{est}");
    }
}
