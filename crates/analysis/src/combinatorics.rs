//! Small numeric combinatorics helpers.

/// Binomial coefficient `C(n, k)` as `f64`, computed multiplicatively so
/// intermediate values stay representable for the `n ≤ ~1000` range the
/// analysis uses.
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 3), 120.0);
    }

    #[test]
    fn out_of_range_is_zero() {
        assert_eq!(binomial(3, 4), 0.0);
    }

    #[test]
    fn symmetry() {
        for n in 0..20 {
            for k in 0..=n {
                assert!((binomial(n, k) - binomial(n, n - k)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn pascal_rule() {
        for n in 1..30 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = binomial(n - 1, k - 1) + binomial(n - 1, k);
                assert!((lhs - rhs).abs() / lhs.max(1.0) < 1e-12);
            }
        }
    }

    #[test]
    fn row_sums_to_power_of_two() {
        let sum: f64 = (0..=20).map(|k| binomial(20, k)).sum();
        assert!((sum - (1u64 << 20) as f64).abs() < 1e-3);
    }
}
