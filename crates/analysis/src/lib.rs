//! Closed-form and semi-analytical models from Section 6 of the paper:
//!
//! * expected number of contention phases **before the first data frame**
//!   can be sent, for BMMM / LAMM / BMW / BSMA — reproduces **Table 1**,
//! * the recursion `f_n` for the expected **total** number of contention
//!   phases a BMMM multicast needs, and Monte-Carlo counterparts for LAMM
//!   and BMW — reproduces **Figure 5**.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod airtime;
pub mod batch;
pub mod combinatorics;
pub mod contention;

pub use airtime::{Airtime, AirtimeComparison, FrameBudgetProtocol};
pub use batch::{
    bmmm_expected_total_phases, bmw_expected_total_phases, lamm_expected_total_phases,
};
pub use combinatorics::binomial;
pub use contention::{
    bmmm_phases_before_data, bmw_phases_before_data, bsma_phases_before_data,
    lamm_phases_before_data, table1,
};
