//! Closed-form airtime arithmetic — the quantitative content of the
//! paper's Figure 2 comparison and of the claim that "the time decreased
//! by the reduction of contention phases is much larger than the time
//! increased by the introduction of RAK frames".
//!
//! All formulas are in slots, parameterized by the control-frame airtime
//! `c`, data airtime `d`, `DIFS`, and the mean backoff `E[B] = cw/2`.
//! Responses occupy the slot right after the triggering frame (SIFS < one
//! slot), matching `rmm-mac`'s timing model.

use rmm_sim::AirtimeBreakdown;

/// Timing inputs for the airtime formulas (mirrors `MacTiming`'s fields
/// without depending on the MAC crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Airtime {
    /// Control frame airtime in slots.
    pub control: u64,
    /// Data frame airtime in slots.
    pub data: u64,
    /// DIFS in idle slots.
    pub difs: u64,
    /// Initial contention window (backoff drawn from `0..=cw`).
    pub cw: u64,
}

impl Default for Airtime {
    fn default() -> Self {
        Airtime {
            control: 1,
            data: 5,
            difs: 4,
            cw: 7,
        }
    }
}

impl Airtime {
    /// Expected access delay of the *first* contention phase on a medium
    /// that has been idle since time zero: `DIFS` slots plus the mean
    /// backoff `cw / 2`.
    pub fn expected_access_delay(&self) -> f64 {
        self.difs as f64 + self.cw as f64 / 2.0
    }

    /// Expected access delay of a contention phase that starts right as
    /// a frame exchange ends: the busy slot preceding it restarts the
    /// idle run, costing one extra slot over [`Self::expected_access_delay`].
    pub fn expected_reaccess_delay(&self) -> f64 {
        self.expected_access_delay() + 1.0
    }

    /// Airtime of one loss-free BMMM batch serving `m` receivers: the
    /// RTS/CTS train (`2c` per receiver), the data frame, and the RAK/ACK
    /// train (`2c` per receiver).
    pub fn bmmm_batch(&self, m: usize) -> u64 {
        4 * self.control * m as u64 + self.data
    }

    /// Expected completion time of a loss-free BMMM multicast to `m`
    /// receivers: one contention phase plus one batch.
    pub fn bmmm_completion(&self, m: usize) -> f64 {
        self.expected_access_delay() + self.bmmm_batch(m) as f64
    }

    /// Airtime of BMW's first round (receiver needs the data):
    /// RTS + CTS + DATA + ACK.
    pub fn bmw_first_round(&self) -> u64 {
        3 * self.control + self.data
    }

    /// Airtime of a BMW round suppressed by the have-flag: RTS + CTS.
    pub fn bmw_have_round(&self) -> u64 {
        2 * self.control
    }

    /// Expected completion time of a loss-free BMW multicast to `m`
    /// receivers in a single cell: the first receiver takes a full
    /// exchange; each of the remaining `m − 1` overheard the data and is
    /// closed with a suppressed round — but *every* round pays its own
    /// contention phase.
    pub fn bmw_completion(&self, m: usize) -> f64 {
        if m == 0 {
            return self.expected_access_delay();
        }
        self.expected_access_delay()
            + (m as f64 - 1.0) * self.expected_reaccess_delay()
            + self.bmw_first_round() as f64
            + (m as f64 - 1.0) * self.bmw_have_round() as f64
    }

    /// The batch size above which BMMM's serialized control traffic beats
    /// BMW's repeated contention phases (with these parameters the
    /// crossover is below 1 — BMMM wins for every `m ≥ 1` unless
    /// contention is made nearly free).
    pub fn bmmm_beats_bmw_from(&self) -> usize {
        (1..=10_000)
            .find(|&m| self.bmmm_completion(m) < self.bmw_completion(m))
            .unwrap_or(usize::MAX)
    }

    /// Per-message frame counts of a loss-free multicast to `m` receivers
    /// (`(control, data)` tuples) — the Section 5 overhead comparison.
    pub fn frame_budget(&self, protocol: FrameBudgetProtocol, m: usize) -> (u64, u64) {
        use FrameBudgetProtocol::*;
        let m64 = m as u64;
        match protocol {
            Ieee80211 => (0, 1),
            TangGerla => (1 + m64, 1),
            Bsma => (1 + m64, 1), // + NAKs only on loss
            Bmw => {
                // n RTS + n CTS + 1 ACK (first receiver) and 1 data; the
                // rest are suppressed via the have-flag.
                (2 * m64 + u64::from(m > 0), u64::from(m > 0))
            }
            Bmmm => (4 * m64, 1), // m RTS + m CTS + m RAK + m ACK
        }
    }
}

impl Airtime {
    /// Predicted control share of *busy* airtime for loss-free BMMM
    /// batches of size `m`: the `4cm` control slots of one batch over
    /// the full batch airtime `4cm + d`. Contention/idle slots are
    /// excluded on both sides, so this is directly comparable to
    /// [`rmm_sim::AirtimeBreakdown::control_overhead_fraction`].
    pub fn bmmm_control_fraction(&self, m: usize) -> f64 {
        let control = 4 * self.control * m as u64;
        control as f64 / (control + self.data) as f64
    }

    /// Compares this closed-form model against a measured channel
    /// ledger ([`rmm_sim::AirtimeBreakdown`]) for a BMMM run serving
    /// `m`-receiver groups. Both fractions come from the *same* slot
    /// accounting (the engine's `AirtimeLedger`), so in a loss-free,
    /// collision-free run the gap is exactly zero.
    pub fn compare_bmmm(&self, m: usize, measured: &AirtimeBreakdown) -> AirtimeComparison {
        let predicted = self.bmmm_control_fraction(m);
        let observed = measured.control_overhead_fraction();
        AirtimeComparison {
            predicted_control_fraction: predicted,
            measured_control_fraction: observed,
            gap: observed - predicted,
        }
    }
}

/// Outcome of checking a closed-form control-overhead prediction
/// against a measured [`AirtimeBreakdown`] — the Section 5 "RAK frames
/// cost less than the contention they remove" claim, made testable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirtimeComparison {
    /// Model prediction: control slots / busy slots.
    pub predicted_control_fraction: f64,
    /// Ledger measurement of the same ratio.
    pub measured_control_fraction: f64,
    /// `measured − predicted`; positive means the run paid more control
    /// overhead than the loss-free model (retries, collisions).
    pub gap: f64,
}

/// Protocols covered by [`Airtime::frame_budget`]. LAMM's budget is
/// BMMM's evaluated at `m = ‖MCS(S)‖`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameBudgetProtocol {
    /// Plain 802.11 multicast.
    Ieee80211,
    /// Tang–Gerla.
    TangGerla,
    /// BSMA.
    Bsma,
    /// BMW.
    Bmw,
    /// BMMM (use the cover-set size for LAMM).
    Bmmm,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_formula_matches_hand_timeline() {
        // The Figure-2 style timeline: 2 receivers, c = 1, d = 5:
        // RTS CTS RTS CTS DATA(5) RAK ACK RAK ACK = 4·2 + 5 = 13 slots.
        let a = Airtime::default();
        assert_eq!(a.bmmm_batch(2), 13);
        assert_eq!(a.bmmm_batch(3), 17);
        assert_eq!(a.bmmm_batch(0), 5);
    }

    #[test]
    fn access_delay_is_difs_plus_mean_backoff() {
        let a = Airtime::default();
        assert!((a.expected_access_delay() - 7.5).abs() < 1e-12);
        assert!((a.expected_reaccess_delay() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn bmw_rounds() {
        let a = Airtime::default();
        assert_eq!(a.bmw_first_round(), 8);
        assert_eq!(a.bmw_have_round(), 2);
    }

    #[test]
    fn bmmm_beats_bmw_immediately_at_default_timing() {
        let a = Airtime::default();
        // One receiver: both protocols do one contention + one exchange;
        // BMMM adds a RAK/ACK pair where BMW's ACK is implicit, so they
        // are close — from two receivers on BMMM clearly wins.
        assert!(a.bmmm_beats_bmw_from() <= 2);
        for m in 2..30 {
            assert!(
                a.bmmm_completion(m) < a.bmw_completion(m),
                "m = {m}: {} vs {}",
                a.bmmm_completion(m),
                a.bmw_completion(m)
            );
        }
    }

    #[test]
    fn bmw_gap_grows_linearly() {
        let a = Airtime::default();
        let gap10 = a.bmw_completion(10) - a.bmmm_completion(10);
        let gap20 = a.bmw_completion(20) - a.bmmm_completion(20);
        // Each extra receiver costs BMW a contention phase (+8.5 slots
        // mean) and BMMM only 4 control slots.
        assert!(gap20 > gap10 + 40.0);
    }

    #[test]
    fn cheap_contention_erodes_bmmm_advantage() {
        // The paper's claim inverted: if a contention phase cost nothing,
        // batching would not pay. With DIFS = 0 and cw = 0, BMW's extra
        // phases are free and its suppressed rounds are cheaper than
        // BMMM's RAK/ACK train.
        let a = Airtime {
            control: 1,
            data: 5,
            difs: 0,
            cw: 0,
        };
        assert!(a.bmw_completion(10) < a.bmmm_completion(10));
    }

    #[test]
    fn predicted_control_fraction_matches_ideal_ledger_exactly() {
        // Replay the hand timeline of `batch_formula_matches_hand_timeline`
        // into a real channel ledger: one loss-free BMMM batch to m = 2
        // receivers (RTS CTS RTS CTS DATA×5 RAK ACK RAK ACK), preceded by
        // 8 contention slots. The closed-form fraction and the ledger's
        // measurement must agree exactly — same slots, two accountants.
        use rmm_sim::{AirtimeLedger, FrameKind};
        let a = Airtime::default();
        let mut ledger = AirtimeLedger::new();
        let mut t = 8; // DIFS + backoff: idle, invisible to busy airtime
        for kind in [
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Rts,
            FrameKind::Cts,
        ] {
            ledger.mark_tx(kind, t, t + a.control);
            t += a.control;
        }
        ledger.mark_tx(FrameKind::Data, t, t + a.data);
        t += a.data;
        for kind in [
            FrameKind::Rak,
            FrameKind::Ack,
            FrameKind::Rak,
            FrameKind::Ack,
        ] {
            ledger.mark_tx(kind, t, t + a.control);
            t += a.control;
        }
        let measured = ledger.breakdown(t + 10);
        assert_eq!(measured.busy_slots(), a.bmmm_batch(2));
        let cmp = a.compare_bmmm(2, &measured);
        assert_eq!(cmp.gap, 0.0);
        assert_eq!(cmp.predicted_control_fraction, 8.0 / 13.0);
        assert_eq!(cmp.measured_control_fraction, 8.0 / 13.0);
    }

    #[test]
    fn lossy_runs_show_positive_control_gap() {
        // A retried RTS (no CTS came back) adds control airtime the
        // loss-free model does not predict: the gap goes positive.
        use rmm_sim::{AirtimeLedger, FrameKind};
        let a = Airtime::default();
        let mut ledger = AirtimeLedger::new();
        ledger.mark_tx(FrameKind::Rts, 0, 1); // lost: retried below
        let mut t = 10;
        for kind in [
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Rts,
            FrameKind::Cts,
        ] {
            ledger.mark_tx(kind, t, t + a.control);
            t += a.control;
        }
        ledger.mark_tx(FrameKind::Data, t, t + a.data);
        t += a.data;
        for kind in [
            FrameKind::Rak,
            FrameKind::Ack,
            FrameKind::Rak,
            FrameKind::Ack,
        ] {
            ledger.mark_tx(kind, t, t + a.control);
            t += a.control;
        }
        let cmp = a.compare_bmmm(2, &ledger.breakdown(t));
        assert!(cmp.gap > 0.0, "retry airtime must surface as a gap");
        assert_eq!(cmp.measured_control_fraction, 9.0 / 14.0);
    }

    #[test]
    fn frame_budgets_match_protocol_structure() {
        let a = Airtime::default();
        use FrameBudgetProtocol::*;
        assert_eq!(a.frame_budget(Ieee80211, 5), (0, 1));
        assert_eq!(a.frame_budget(TangGerla, 5), (6, 1));
        assert_eq!(a.frame_budget(Bmw, 5), (11, 1));
        assert_eq!(a.frame_budget(Bmmm, 5), (20, 1));
        // LAMM with a cover set of 3 out of 5:
        assert_eq!(a.frame_budget(Bmmm, 3), (12, 1));
        // Empty multicast:
        assert_eq!(a.frame_budget(Bmw, 0), (0, 0));
    }
}
