//! Differential oracle for the incremental channel: random topologies
//! and launch schedules driven through both [`Channel`] (incremental
//! interference bookkeeping) and [`ReferenceChannel`] (naive full
//! rescan) with cloned RNG streams, asserting every observable agrees
//! slot by slot — outcomes, RNG position, carrier sense, half-duplex
//! state, occupancy, and the airtime ledger.
//!
//! The driver follows the engine's phase order (resolve and all busy
//! queries for a slot before that slot's launches, prune last): the
//! incremental channel's O(1) carrier watermark is exact only under
//! that ordering, and it is the only ordering the engine ever uses.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rmm_geom::Point;
use rmm_sim::channel::reference::ReferenceChannel;
use rmm_sim::{Capture, Channel, Dest, Frame, FrameKind, MsgId, NodeId, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn incremental_channel_matches_naive_reference(
        positions in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 4..16),
        schedule in prop::collection::vec(
            (0u64..80, any::<u8>(), any::<u8>(), any::<u8>()),
            1..60,
        ),
        fer_sel in 0usize..3,
        plain_capture in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let pts: Vec<Point> = positions.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let topo = Topology::new(pts, 0.35);
        let capture = if plain_capture { Capture::None } else { Capture::ZorziRao };
        let fer = [0.0, 0.15, 0.6][fer_sel];

        let mut fast = Channel::new(capture);
        fast.set_fer(fer);
        let mut naive = ReferenceChannel::new(capture);
        naive.set_fer(fer);
        let mut rng_fast = SmallRng::seed_from_u64(seed);
        let mut rng_naive = rng_fast.clone();

        let mut launched = 0u32;
        // Past the last scheduled slot plus the longest frame, both
        // channels must have drained completely.
        for now in 0..96 {
            let out_fast = fast.resolve_ended(now, &topo, &mut rng_fast);
            let out_naive = naive.resolve_ended(now, &topo, &mut rng_naive);
            prop_assert_eq!(&out_fast, &out_naive, "outcome diverged at slot {}", now);
            prop_assert!(rng_fast == rng_naive, "RNG streams diverged at slot {}", now);
            for i in 0..topo.len() {
                let node = NodeId(i as u32);
                prop_assert_eq!(
                    fast.busy_prev_slot(node, now, &topo),
                    naive.busy_prev_slot(node, now, &topo),
                    "carrier sense diverged at node {} slot {}", node, now
                );
                prop_assert_eq!(
                    fast.is_transmitting(node, now),
                    naive.is_transmitting(node, now),
                    "half-duplex state diverged at node {} slot {}", node, now
                );
            }
            prop_assert_eq!(
                fast.any_active(now),
                naive.any_active(now),
                "occupancy diverged at slot {}", now
            );

            for &(t, src_sel, kind_sel, dur) in &schedule {
                if t != now {
                    continue;
                }
                let src = NodeId((src_sel as usize % topo.len()) as u32);
                // Half-duplex: the MAC never launches from a station
                // that still has a frame on the air (this also filters
                // duplicate same-slot schedule entries for one source).
                if fast.is_transmitting(src, now) {
                    continue;
                }
                let neighbors = topo.neighbors(src);
                let dest = if neighbors.is_empty() || kind_sel % 3 == 0 {
                    Dest::Node(NodeId((dur as usize % topo.len()) as u32))
                } else {
                    Dest::group(neighbors.to_vec())
                };
                let msg = MsgId::new(src, launched);
                launched += 1;
                let frame = if kind_sel % 2 == 0 {
                    Frame::control(FrameKind::Rts, src, dest, u32::from(dur % 8), msg)
                } else {
                    Frame::data(src, dest, u32::from(dur % 8), msg, 1 + u32::from(kind_sel % 5))
                };
                fast.begin_tx(frame.clone(), now, &topo);
                naive.begin_tx(frame, now);
            }
            fast.prune(now, &topo);
            naive.prune(now);
        }
        prop_assert_eq!(fast.ledger(), naive.ledger(), "airtime ledgers diverged");
        prop_assert!(!fast.any_active(96), "channel failed to drain");
    }
}
