//! Property-based tests for the simulator substrate: the wire codec and
//! the channel's physical invariants under random traffic.

use proptest::prelude::*;
use rmm_geom::Point;
use rmm_sim::{
    crc32, decode_frame, encode_frame, Capture, Ctx, Dest, Engine, Frame, FrameKind, MsgId, NodeId,
    Slot, Station, Topology, Trace, TraceEvent, WireError,
};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Rts),
        Just(FrameKind::Cts),
        Just(FrameKind::Ack),
        Just(FrameKind::Rak),
        Just(FrameKind::Nak),
        Just(FrameKind::Data),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (arb_kind(), 0u32..100, 0u32..100, 0u32..500, 0u32..1000).prop_map(
        |(kind, src, dst, dur, seq)| {
            let msg = MsgId::new(NodeId(src), seq);
            if kind == FrameKind::Data {
                Frame::data(NodeId(src), Dest::Node(NodeId(dst)), dur, msg, 5)
            } else {
                Frame::control(kind, NodeId(src), Dest::Node(NodeId(dst)), dur, msg)
            }
        },
    )
}

proptest! {
    /// Every frame round-trips through the 802.11 codec with its MAC-read
    /// fields intact.
    #[test]
    fn wire_roundtrip(frame in arb_frame()) {
        let octets = encode_frame(&frame, 50.0, 40);
        let wire = decode_frame(&octets).expect("well-formed frame decodes");
        prop_assert_eq!(wire.kind, frame.kind);
        prop_assert_eq!(u32::from(wire.duration_us), frame.duration * 50);
        prop_assert_eq!(wire.ra.node(), match &frame.dest {
            Dest::Node(n) => Some(*n),
            Dest::Group(_) => None,
        });
        if matches!(frame.kind, FrameKind::Rts | FrameKind::Data) {
            prop_assert_eq!(wire.ta.unwrap().node(), Some(frame.src));
        }
        if frame.kind == FrameKind::Data {
            prop_assert_eq!(wire.seq, Some(frame.msg.seq as u16));
        }
    }

    /// Any single-bit corruption is detected by the FCS (CRC-32 has
    /// Hamming distance ≥ 2 over these lengths).
    #[test]
    fn wire_single_bit_corruption_detected(frame in arb_frame(), pos in 0usize..160, bit in 0u8..8) {
        let mut octets = encode_frame(&frame, 50.0, 10);
        let pos = pos % octets.len();
        octets[pos] ^= 1 << bit;
        prop_assert!(
            decode_frame(&octets).is_err(),
            "flipped bit {bit} of byte {pos} went undetected"
        );
    }

    /// CRC-32 differs for any two distinct short strings we feed it (not
    /// a collision-freeness claim — a regression check that length and
    /// content both matter).
    #[test]
    fn crc_depends_on_content(a in prop::collection::vec(any::<u8>(), 0..64)) {
        let c = crc32(&a);
        let mut b = a.clone();
        b.push(0);
        prop_assert_ne!(c, crc32(&b));
        if !a.is_empty() {
            let mut flipped = a.clone();
            flipped[0] ^= 0x01;
            prop_assert_ne!(c, crc32(&flipped));
        }
    }
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u32..64).prop_map(NodeId)
}

fn arb_msg() -> impl Strategy<Value = MsgId> {
    (0u32..64, 0u32..1000).prop_map(|(n, s)| MsgId::new(NodeId(n), s))
}

fn arb_nodes() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec(arb_node(), 0..6)
}

/// Every [`TraceEvent`] variant with arbitrary payloads, covering the
/// optional and vector-valued fields the JSONL codec must preserve.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    let slot = || 0u64..10_000;
    prop_oneof![
        (
            slot(),
            arb_node(),
            arb_kind(),
            prop::bool::ANY,
            arb_node(),
            1u32..40
        )
            .prop_map(
                |(slot, node, kind, unicast, dest, slots)| TraceEvent::TxStart {
                    slot,
                    node,
                    kind,
                    dest: unicast.then_some(dest),
                    msg: MsgId::new(node, slots),
                    slots,
                }
            ),
        (slot(), arb_node(), arb_node(), arb_kind(), prop::bool::ANY).prop_map(
            |(slot, node, from, kind, captured)| TraceEvent::RxOk {
                slot,
                node,
                from,
                kind,
                captured,
            }
        ),
        (slot(), arb_node(), arb_nodes()).prop_map(|(slot, node, senders)| {
            TraceEvent::Collision {
                slot,
                node,
                senders,
            }
        }),
        (slot(), arb_node(), arb_msg(), 1u32..8, 0u32..32).prop_map(
            |(slot, node, msg, attempts, backoff_slots)| TraceEvent::ContentionStart {
                slot,
                node,
                msg,
                attempts,
                backoff_slots,
            }
        ),
        (slot(), arb_node(), arb_msg(), 1u32..8).prop_map(|(slot, node, msg, attempts)| {
            TraceEvent::ContentionEnd {
                slot,
                node,
                msg,
                attempts,
            }
        }),
        (slot(), arb_node(), arb_msg(), 1u32..8, arb_nodes()).prop_map(
            |(slot, node, msg, round, batch)| TraceEvent::BatchStart {
                slot,
                node,
                msg,
                round,
                batch,
            }
        ),
        (
            slot(),
            arb_node(),
            arb_msg(),
            1u32..8,
            arb_nodes(),
            arb_nodes()
        )
            .prop_map(
                |(slot, node, msg, round, batch, acked)| TraceEvent::BatchEnd {
                    slot,
                    node,
                    msg,
                    round,
                    batch,
                    acked,
                }
            ),
        (slot(), arb_node(), arb_msg(), arb_kind(), arb_node()).prop_map(
            |(slot, node, msg, kind, target)| TraceEvent::PollSent {
                slot,
                node,
                msg,
                kind,
                target,
            }
        ),
        (slot(), arb_node(), arb_msg(), arb_node()).prop_map(|(slot, node, msg, target)| {
            TraceEvent::AckMissed {
                slot,
                node,
                msg,
                target,
            }
        }),
        (slot(), arb_node(), arb_msg(), arb_nodes(), arb_nodes()).prop_map(
            |(slot, node, msg, full, cover)| TraceEvent::CoverSetComputed {
                slot,
                node,
                msg,
                full,
                cover,
            }
        ),
        (slot(), arb_node(), arb_msg(), 1u32..8).prop_map(|(slot, node, msg, round)| {
            TraceEvent::Retry {
                slot,
                node,
                msg,
                round,
            }
        }),
        (slot(), arb_node(), arb_msg(), arb_node(), 0u32..8).prop_map(
            |(slot, node, msg, dst, after_retries)| TraceEvent::GiveUp {
                slot,
                node,
                msg,
                dst,
                after_retries,
            }
        ),
        (slot(), arb_node(), arb_msg(), 0u64..20_000).prop_map(|(slot, node, msg, until)| {
            TraceEvent::NavDefer {
                slot,
                node,
                msg,
                until,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any event stream survives the JSONL export/import round trip
    /// bit-for-bit (the contract `rmm trace` and the profiling export
    /// both rely on).
    #[test]
    fn trace_jsonl_roundtrip(events in prop::collection::vec(arb_event(), 0..40)) {
        let mut trace = Trace::new();
        for ev in &events {
            trace.push(ev.clone());
        }
        let jsonl = trace.to_jsonl();
        let back = Trace::from_jsonl(&jsonl).expect("exported trace parses");
        prop_assert_eq!(back.events(), trace.events());
        // A second round trip is a fixpoint.
        prop_assert_eq!(back.to_jsonl(), jsonl);
    }
}

/// A station that transmits scripted frames and does nothing else.
struct Blaster {
    plan: Vec<(Slot, Frame)>,
    busy_until: Slot,
}

impl Station for Blaster {
    fn on_receive(&mut self, _frame: &Frame, _captured: bool, _ctx: &mut Ctx<'_>) {}
    fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.now < self.busy_until {
            return;
        }
        if let Some(pos) = self.plan.iter().position(|(s, _)| *s <= ctx.now) {
            let (_, frame) = self.plan.remove(pos);
            self.busy_until = ctx.now + u64::from(frame.slots);
            ctx.send(frame);
        }
    }
}

fn arb_positions(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Physical invariants under random scripted traffic: receptions only
    /// happen within radio range, never at a station that was itself
    /// transmitting, and with capture disabled never out of a collision.
    #[test]
    fn channel_physics_hold(
        positions in arb_positions(8),
        plans in prop::collection::vec((0u64..40, 0usize..8, 0usize..8, prop::bool::ANY), 0..20),
    ) {
        let pts: Vec<Point> = positions.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let topo = Topology::new(pts, 0.3);
        let mut stations: Vec<Blaster> = (0..8)
            .map(|_| Blaster { plan: Vec::new(), busy_until: 0 })
            .collect();
        for (i, &(slot, src, dst, is_data)) in plans.iter().enumerate() {
            let src = src % 8;
            let dst = dst % 8;
            if src == dst {
                continue;
            }
            let msg = MsgId::new(NodeId(src as u32), i as u32);
            let frame = if is_data {
                Frame::data(NodeId(src as u32), Dest::Node(NodeId(dst as u32)), 0, msg, 5)
            } else {
                Frame::control(
                    FrameKind::Rts,
                    NodeId(src as u32),
                    Dest::Node(NodeId(dst as u32)),
                    0,
                    msg,
                )
            };
            stations[src].plan.push((slot, frame));
        }
        let mut engine = Engine::new(topo.clone(), Capture::None, 99);
        engine.enable_trace();
        engine.run(&mut stations, 80);

        // Reconstruct per-station busy intervals from the trace.
        let events = engine.trace().unwrap().events().to_vec();
        let mut tx_intervals: Vec<(NodeId, Slot, Slot)> = Vec::new();
        for ev in &events {
            if let TraceEvent::TxStart { slot, node, slots, .. } = ev {
                tx_intervals.push((*node, *slot, slot + u64::from(*slots)));
            }
        }
        for ev in &events {
            if let TraceEvent::RxOk { slot, node, from, .. } = ev {
                // 1. In range.
                prop_assert!(
                    topo.in_range(*node, *from),
                    "{node} decoded a frame from out-of-range {from}"
                );
                // 2. Half duplex: the receiver had no tx overlapping the
                // frame (the frame ended at `slot`; find its interval).
                let frame_iv = tx_intervals
                    .iter()
                    .find(|(n, _, end)| n == from && *end == *slot)
                    .expect("reception has a matching transmission");
                for (n, start, end) in &tx_intervals {
                    if n == node {
                        prop_assert!(
                            *end <= frame_iv.1 || *start >= frame_iv.2,
                            "{node} decoded while transmitting"
                        );
                    }
                }
                // 3. No capture: no other audible transmission overlapped.
                for (n, start, end) in &tx_intervals {
                    if n != from && n != node && topo.in_range(*node, *n) {
                        prop_assert!(
                            *end <= frame_iv.1 || *start >= frame_iv.2,
                            "{node} decoded {from} despite overlap from {n} with Capture::None"
                        );
                    }
                }
            }
        }
    }

    /// The engine is deterministic: identical seeds and scripts produce
    /// identical traces.
    #[test]
    fn engine_is_deterministic(
        positions in arb_positions(6),
        seed in 0u64..1000,
    ) {
        let pts: Vec<Point> = positions.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let run = |seed: u64| {
            let topo = Topology::new(pts.clone(), 0.25);
            let mut stations: Vec<Blaster> = (0..6)
                .map(|i| Blaster {
                    plan: vec![(
                        u64::from(i) * 3,
                        Frame::control(
                            FrameKind::Rts,
                            NodeId(i),
                            Dest::Node(NodeId((i + 1) % 6)),
                            0,
                            MsgId::new(NodeId(i), 0),
                        ),
                    )],
                    busy_until: 0,
                })
                .collect();
            let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
            engine.enable_trace();
            engine.run(&mut stations, 40);
            engine.trace().unwrap().events().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

#[test]
fn wire_error_variants_are_reachable() {
    assert_eq!(decode_frame(&[1, 2, 3]), Err(WireError::Truncated));
}
