//! Network topology: station positions and neighbor tables.
//!
//! In the protocols' world view, neighbor MAC addresses (and, for LAMM,
//! neighbor positions) are learned from periodic beacons. The simulator
//! precomputes this knowledge here; LAMM senders only ever read the
//! positions of their own neighbors, mirroring what beacons would carry.

use crate::ids::NodeId;
use rmm_geom::Point;
use serde::{Deserialize, Serialize};

/// Static topology: positions plus derived neighbor tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Point>,
    radius: f64,
    neighbors: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from station positions and a shared transmission
    /// radius. Neighborhood is symmetric: `dist ≤ radius`, excluding self.
    pub fn new(positions: Vec<Point>, radius: f64) -> Self {
        assert!(radius > 0.0, "transmission radius must be positive");
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].within(&positions[j], radius) {
                    neighbors[i].push(NodeId(j as u32));
                    neighbors[j].push(NodeId(i as u32));
                }
            }
        }
        Topology {
            positions,
            radius,
            neighbors,
        }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no stations.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Shared transmission radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Position of a station.
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// All positions, indexed by station.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Neighbors of a station (within radius, excluding itself).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// Whether `b` is audible at `a` (within the shared radius).
    #[inline]
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.positions[a.index()].within(&self.positions[b.index()], self.radius)
    }

    /// Distance between two stations.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].dist(&self.positions[b.index()])
    }

    /// Mean number of neighbors across stations — the x-axis of the
    /// paper's density figures.
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        self.neighbors.iter().map(|n| n.len()).sum::<usize>() as f64 / self.neighbors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology() -> Topology {
        // 0 -- 1 -- 2, with 0 and 2 out of range of each other (the
        // canonical hidden-terminal layout from Section 2.1).
        Topology::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.15, 0.0),
                Point::new(0.3, 0.0),
            ],
            0.2,
        )
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = line_topology();
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(t.neighbors(NodeId(2)), &[NodeId(1)]);
    }

    #[test]
    fn hidden_terminals_not_in_range() {
        let t = line_topology();
        assert!(!t.in_range(NodeId(0), NodeId(2)));
        assert!(t.in_range(NodeId(0), NodeId(1)));
        assert!(t.in_range(NodeId(2), NodeId(1)));
    }

    #[test]
    fn node_is_not_its_own_neighbor() {
        let t = line_topology();
        assert!(!t.in_range(NodeId(1), NodeId(1)));
        assert!(!t.neighbors(NodeId(1)).contains(&NodeId(1)));
    }

    #[test]
    fn range_is_inclusive_at_radius() {
        let t = Topology::new(vec![Point::new(0.0, 0.0), Point::new(0.2, 0.0)], 0.2);
        assert!(t.in_range(NodeId(0), NodeId(1)));
    }

    #[test]
    fn mean_degree_of_line() {
        let t = line_topology();
        assert!((t.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::new(vec![], 0.2);
        assert!(t.is_empty());
        assert_eq!(t.mean_degree(), 0.0);
    }

    #[test]
    fn distance_matches_positions() {
        let t = line_topology();
        assert!((t.distance(NodeId(0), NodeId(2)) - 0.3).abs() < 1e-12);
    }
}
