//! The slotted simulation engine.
//!
//! [`Engine::step`] advances the whole network by one slot:
//!
//! 1. transmissions whose airtime ends this slot are resolved against the
//!    channel (collisions, capture) and delivered via
//!    [`Station::on_receive`],
//! 2. every station gets an [`Station::on_slot`] call with its local
//!    carrier-sense state (the channel as of the *previous* slot) and may
//!    queue new transmissions,
//! 3. queued transmissions go on the air starting this slot.
//!
//! Stations starting in the same slot therefore cannot see each other —
//! the canonical slotted-CSMA collision mechanism.

use crate::capture::Capture;
use crate::channel::{Channel, SlotOutcome};
use crate::fault::{FaultPlan, GilbertElliott};
use crate::frame::Frame;
use crate::ids::{NodeId, Slot};
use crate::topology::Topology;
use crate::trace::{EventSink, Trace, TraceEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rmm_stats::{Phase, ProfileReport, Profiler};
use std::time::Instant;

/// Per-call context handed to stations.
pub struct Ctx<'a> {
    /// Current slot.
    pub now: Slot,
    /// The station being called.
    pub node: NodeId,
    /// Carrier sense: was the medium busy at this station during the
    /// previous slot?
    pub busy: bool,
    out: &'a mut Vec<Frame>,
    sink: Option<&'a mut dyn EventSink>,
}

impl Ctx<'_> {
    /// Puts `frame` on the air starting at the current slot. The frame's
    /// `src` must be the station itself.
    pub fn send(&mut self, frame: Frame) {
        debug_assert_eq!(frame.src, self.node, "stations may only send as themselves");
        self.out.push(frame);
    }

    /// Whether protocol events are being collected this run.
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits a protocol-phase event. The construction closure only runs
    /// when tracing is enabled, so emission costs one branch otherwise.
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&mut self, f: F) {
        if let Some(sink) = self.sink.as_mut() {
            sink.accept(f());
        }
    }
}

/// A MAC entity driven by the engine. Implemented by every protocol in
/// the `rmm-mac` crate.
pub trait Station {
    /// A frame addressed to (or overheard by) this station was decoded.
    /// Called at the beginning of the slot following the frame's last
    /// airtime slot, before `on_slot`.
    fn on_receive(&mut self, frame: &Frame, captured: bool, ctx: &mut Ctx<'_>);

    /// Called once per slot, after receptions. The station may inspect
    /// carrier sense and queue transmissions starting this slot.
    fn on_slot(&mut self, ctx: &mut Ctx<'_>);

    /// Event-horizon hint: the earliest slot after `now` (the slot whose
    /// `on_slot` just ran) at which this station next needs an `on_slot`
    /// call, **assuming the medium stays idle at the station and no
    /// frame is delivered to it in between**. `None` means the station
    /// has nothing self-scheduled at all. Returning an earlier slot than
    /// necessary is always safe; returning a later one (or `None` while
    /// a countdown is pending) breaks the protocol, because
    /// [`Engine::advance_to`] skips the station's `on_slot` for every
    /// slot before the earliest hint while the channel is quiescent.
    ///
    /// The default — wake every slot — makes fast-forwarding a no-op for
    /// stations that don't opt in, so it is always bit-exact.
    fn next_wakeup(&self, now: Slot) -> Option<Slot> {
        Some(now + 1)
    }

    /// The station's platform rebooted: a [`crate::FaultKind::Reboot`]
    /// blackout window just ended. The engine calls this at the top of
    /// the recovery slot, before any reception or `on_slot` in it, so
    /// the naive and event-horizon steppers agree by construction.
    /// Implementations should cold-reset transient MAC state (in-flight
    /// exchanges, virtual carrier sense, backoff) while keeping
    /// measurement state. Default: no-op.
    fn on_reset(&mut self, _now: Slot) {}
}

/// The slotted simulation engine: topology + channel + clock.
pub struct Engine {
    topo: Topology,
    channel: Channel,
    now: Slot,
    rng: SmallRng,
    trace: Option<Trace>,
    outbox: Vec<Frame>,
    /// Per-slot carrier-sense bitmap, reused across slots.
    busy_map: Vec<bool>,
    /// Per-slot resolution outcome, reused across slots.
    outcome: SlotOutcome,
    /// Slots fast-forwarded over by [`Engine::advance_to`] (monotone).
    slots_skipped: u64,
    /// Scheduled node faults (empty by default). A pure predicate of
    /// `(node, slot)`, so the fast and naive steppers agree exactly.
    faults: FaultPlan,
    /// Whether `faults` schedules any reboot — cached so the per-slot
    /// reboot scan and the horizon clamp cost one branch when it doesn't.
    has_reboots: bool,
    /// Per-station slot of the most recent transmission that actually
    /// reached the air (`None` = never). Liveness diagnostics for the
    /// workload watchdog; muted/crashed sends do not count.
    last_tx: Vec<Option<Slot>>,
    /// Phase-timer profiler, if enabled. Behind a box so the disabled
    /// case costs one null check per phase boundary. Profiling is a pure
    /// observer — it never draws from the RNG or touches dynamics, so
    /// profiled and unprofiled runs are bit-identical.
    prof: Option<Box<Profiler>>,
}

impl Engine {
    /// Creates an engine over `topo` with the given capture model and
    /// channel RNG seed.
    pub fn new(topo: Topology, capture: Capture, seed: u64) -> Self {
        let n = topo.len();
        Engine {
            topo,
            channel: Channel::new(capture),
            now: 0,
            rng: SmallRng::seed_from_u64(seed),
            trace: None,
            outbox: Vec::new(),
            busy_map: Vec::new(),
            outcome: SlotOutcome::default(),
            slots_skipped: 0,
            faults: FaultPlan::default(),
            has_reboots: false,
            last_tx: vec![None; n],
            prof: None,
        }
    }

    /// Slot-sampling stride used by [`Engine::enable_profiling`]: one
    /// slot in four is timed (calls are counted on every slot). Chosen
    /// so profiling a saturated network costs well under the CI gate's
    /// 5% while the per-phase fractions still average over thousands of
    /// timed slots.
    pub const PROFILE_STRIDE: u64 = 4;

    /// Enables phase-timer profiling (disabled by default) at
    /// [`Engine::PROFILE_STRIDE`]. On timed slots each engine phase is
    /// lapped with chained monotonic-clock reads — one `Instant::now()`
    /// per phase boundary — on the rest only call counts advance;
    /// reported nanoseconds are stride-scaled whole-run estimates
    /// accumulated into a [`ProfileReport`].
    pub fn enable_profiling(&mut self) {
        self.enable_profiling_stride(Self::PROFILE_STRIDE);
    }

    /// Enables phase-timer profiling timing every `stride`-th slot
    /// (stride 1 = time everything, exact totals, highest overhead).
    pub fn enable_profiling_stride(&mut self, stride: u64) {
        self.prof = Some(Box::new(Profiler::with_stride(stride)));
    }

    /// Snapshot of the accumulated phase attribution, if profiling is
    /// enabled.
    pub fn profile(&self) -> Option<ProfileReport> {
        self.prof.as_ref().map(|p| p.report())
    }

    /// Takes the accumulated profile, leaving profiling disabled.
    pub fn take_profile(&mut self) -> Option<ProfileReport> {
        self.prof.take().map(|p| p.report())
    }

    /// Starts one profiled unit: registers it with the sampler and
    /// returns the armed mark if this unit is timed. `None` either
    /// means profiling is off or this unit is merely call-counted.
    #[inline]
    fn begin_profiled_unit(&mut self) -> Option<Instant> {
        self.prof
            .as_deref_mut()
            .is_some_and(|prof| prof.begin_unit())
            .then(Instant::now)
    }

    /// Records the time since `*mark` to `phase` and re-arms the mark;
    /// on unsampled units only the call count advances. No-op (one
    /// branch) when profiling is off.
    #[inline]
    fn lap(&mut self, mark: &mut Option<Instant>, phase: Phase) {
        if let Some(prof) = self.prof.as_deref_mut() {
            match mark {
                Some(m) => {
                    let now = Instant::now();
                    prof.record(phase, now.duration_since(*m).as_nanos() as u64);
                    *m = now;
                }
                None => prof.record_call(phase),
            }
        }
    }

    /// Sets the channel's independent frame error rate.
    pub fn set_fer(&mut self, fer: f64) {
        self.channel.set_fer(fer);
    }

    /// Installs a fault plan. Crashed/deaf/rebooting nodes decode
    /// nothing while faulty; crashed/muted/rebooting nodes' frames are
    /// dropped before the air; a rebooting station is cold-reset (via
    /// [`Station::on_reset`]) at the top of its recovery slot.
    ///
    /// # Panics
    ///
    /// If the plan fails [`FaultPlan::validate`] against this engine's
    /// station count: out-of-range node ids, overlapping same-kind
    /// windows on one node, or a reboot with no recovery slot.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        if let Err(e) = faults.validate(self.topo.len()) {
            panic!("invalid fault plan: {e}");
        }
        self.has_reboots = faults.has_reboots();
        self.faults = faults;
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Enables the Gilbert–Elliott burst-error channel with its own RNG
    /// stream seeded from `seed`.
    pub fn set_burst(&mut self, model: GilbertElliott, seed: u64) {
        self.channel.set_burst(model, seed);
    }

    /// Slot of `node`'s most recent transmission that reached the air.
    pub fn last_tx(&self, node: NodeId) -> Option<Slot> {
        self.last_tx[node.index()]
    }

    /// Enables event tracing (disabled by default; it allocates).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Takes ownership of the trace, leaving tracing disabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Current slot (the next one to be stepped).
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Total slots fast-forwarded over by [`Engine::advance_to`] so far.
    /// Skipped slots still advance the clock and the idle accounting;
    /// they just never reach the stations.
    pub fn slots_skipped(&self) -> u64 {
        self.slots_skipped
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Replaces the ground-truth topology (node mobility). Station count
    /// must not change. Transmissions already on the air resolve against
    /// the new geometry — acceptable at epoch granularity, since motion
    /// per frame airtime is negligible at realistic speeds.
    pub fn set_topology(&mut self, topo: Topology) {
        assert_eq!(topo.len(), self.topo.len(), "station count is fixed");
        self.topo = topo;
    }

    /// The radio channel (for inspection in tests and stats).
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Advances the network by one slot. `stations[i]` is the MAC entity
    /// of `NodeId(i)`; the slice length must match the topology.
    pub fn step<S: Station>(&mut self, stations: &mut [S]) {
        debug_assert_eq!(stations.len(), self.topo.len());
        let now = self.now;

        // Phase 0: reboot completions. A station whose blackout window
        // ends exactly now comes back with its MAC cold-reset before
        // anything else happens in this slot — [`Engine::advance_to`]
        // clamps its skip target to the next completion, so the reset
        // fires identically under naive and fast stepping.
        if self.has_reboots {
            for node in self.faults.reboots_completing_at(now) {
                stations[node.index()].on_reset(now);
            }
        }

        let mut mark = self.begin_profiled_unit();

        // Carrier sense for the whole slot, computed once: phases 1 and 2
        // both read the same per-node predicate for the same slot.
        self.channel.busy_map(now, &self.topo, &mut self.busy_map);
        self.lap(&mut mark, Phase::CarrierSense);

        // Phase 1: resolve frames ending now and deliver them.
        self.channel
            .resolve_ended_into(now, &self.topo, &mut self.rng, &mut self.outcome);
        // Fault injection, rx side: crashed/deaf receivers decode
        // nothing. Filtering happens *after* resolution so the channel's
        // RNG draws (FER, capture, burst) are identical with or without
        // a fault plan — only delivery is suppressed.
        if !self.faults.is_empty() {
            let faults = &self.faults;
            self.outcome
                .receptions
                .retain(|r| !faults.blocks_rx(r.receiver, now));
        }
        if let Some(trace) = &mut self.trace {
            for c in &self.outcome.collisions {
                trace.push(TraceEvent::Collision {
                    slot: now,
                    node: c.receiver,
                    senders: c.senders.clone(),
                });
            }
            for r in &self.outcome.receptions {
                trace.push(TraceEvent::RxOk {
                    slot: now,
                    node: r.receiver,
                    from: r.frame.src,
                    kind: r.frame.kind,
                    captured: r.captured,
                });
            }
        }
        self.channel.count_collisions(self.outcome.collisions.len());
        self.channel.frame_errors_total += self.outcome.frame_errors.len() as u64;
        self.lap(&mut mark, Phase::Resolve);
        for rec in &self.outcome.receptions {
            let node = rec.receiver;
            let mut ctx = Ctx {
                now,
                node,
                busy: self.busy_map[node.index()],
                out: &mut self.outbox,
                sink: self.trace.as_mut().map(|t| t as &mut dyn EventSink),
            };
            stations[node.index()].on_receive(&rec.frame, rec.captured, &mut ctx);
        }
        self.lap(&mut mark, Phase::Deliver);

        // Phase 2: per-slot decisions.
        for (i, station) in stations.iter_mut().enumerate() {
            let node = NodeId(i as u32);
            let mut ctx = Ctx {
                now,
                node,
                busy: self.busy_map[i],
                out: &mut self.outbox,
                sink: self.trace.as_mut().map(|t| t as &mut dyn EventSink),
            };
            station.on_slot(&mut ctx);
        }
        self.lap(&mut mark, Phase::FsmDispatch);

        // Phase 3: new transmissions go on the air. Fault injection, tx
        // side: frames from crashed/muted stations are dropped before
        // the air — no trace event, no interference, no carrier sense.
        // The sender's own MAC bookkeeping already ran; it believes the
        // frame went out.
        for frame in self.outbox.drain(..) {
            if !self.faults.is_empty() && self.faults.blocks_tx(frame.src, now) {
                continue;
            }
            self.last_tx[frame.src.index()] = Some(now);
            if let Some(trace) = &mut self.trace {
                trace.tx_start(now, &frame);
            }
            self.channel.begin_tx(frame, now);
        }
        if self.channel.any_active(now) {
            self.channel.busy_slots += 1;
        }
        self.channel.prune(now);
        self.lap(&mut mark, Phase::TxLaunch);
        self.now = now + 1;
    }

    /// Runs `slots` steps, one by one (the naive reference stepper).
    pub fn run<S: Station>(&mut self, stations: &mut [S], slots: Slot) {
        for _ in 0..slots {
            self.step(stations);
        }
    }

    /// Advances the clock to `target`, fast-forwarding through dead air.
    ///
    /// After each processed slot, if the channel is quiescent (nothing
    /// on the air or still resolvable anywhere in the network), the
    /// clock jumps straight to the earliest [`Station::next_wakeup`]
    /// hint, clamped to `target`. Skipped slots are provably idle for
    /// every station — no receptions, no busy carrier sense, no channel
    /// RNG draws — so stations that honor the hint contract observe
    /// exactly the slot sequence naive stepping would have given them,
    /// and the run is bit-exact with [`Engine::run`].
    ///
    /// Callers that inject external events (traffic arrivals, topology
    /// changes) must advance to the event's slot first, apply it, then
    /// continue — see the workload runner.
    pub fn advance_to<S: Station>(&mut self, stations: &mut [S], target: Slot) {
        while self.now < target {
            self.step(stations);
            if self.now >= target || !self.channel.quiescent_at(self.now) {
                continue;
            }
            // Hints are relative to the slot the stations last saw.
            let mut mark = self.begin_profiled_unit();
            let prev = self.now - 1;
            let mut horizon = target;
            // Never skip past a reboot completion: the recovery slot
            // must actually be stepped so the cold reset fires there.
            if self.has_reboots {
                if let Some(recovery) = self.faults.next_reboot_completion(self.now) {
                    horizon = horizon.min(recovery);
                }
            }
            for station in stations.iter() {
                let Some(wake) = station.next_wakeup(prev) else {
                    continue;
                };
                debug_assert!(wake > prev, "wakeup hint not after the hinted slot");
                horizon = horizon.min(wake.max(self.now));
                if horizon == self.now {
                    break;
                }
            }
            self.lap(&mut mark, Phase::HorizonScan);
            self.slots_skipped += horizon - self.now;
            self.now = horizon;
        }
    }

    /// Runs `slots` slots' worth of simulated time using the
    /// event-horizon fast path (see [`Engine::advance_to`]).
    pub fn run_fast<S: Station>(&mut self, stations: &mut [S], slots: Slot) {
        let target = self.now + slots;
        self.advance_to(stations, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Dest, FrameKind};
    use crate::ids::MsgId;
    use rmm_geom::Point;

    /// A scripted station: transmits given frames at given slots, records
    /// everything it hears.
    #[derive(Default)]
    struct Scripted {
        plan: Vec<(Slot, Frame)>,
        heard: Vec<(Slot, NodeId, FrameKind)>,
        busy_log: Vec<bool>,
        resets: Vec<Slot>,
    }

    impl Station for Scripted {
        fn on_receive(&mut self, frame: &Frame, _captured: bool, ctx: &mut Ctx<'_>) {
            self.heard.push((ctx.now, frame.src, frame.kind));
        }
        fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
            self.busy_log.push(ctx.busy);
            while let Some(pos) = self.plan.iter().position(|(s, _)| *s == ctx.now) {
                let (_, frame) = self.plan.remove(pos);
                ctx.send(frame);
            }
        }
        fn on_reset(&mut self, now: Slot) {
            self.resets.push(now);
        }
    }

    fn pair_topo() -> Topology {
        Topology::new(vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)], 0.2)
    }

    fn rts(src: u32, dst: u32) -> Frame {
        Frame::control(
            FrameKind::Rts,
            NodeId(src),
            Dest::Node(NodeId(dst)),
            0,
            MsgId::new(NodeId(src), 0),
        )
    }

    #[test]
    fn frame_is_delivered_next_slot() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 3);
        assert_eq!(st[1].heard, vec![(1, NodeId(0), FrameKind::Rts)]);
    }

    #[test]
    fn carrier_sense_lags_one_slot() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 3);
        // Node 1: slot 0 idle (no history), slot 1 busy (slot 0 had the
        // RTS), slot 2 idle again.
        assert_eq!(st[1].busy_log, vec![false, true, false]);
    }

    #[test]
    fn simultaneous_starts_collide() {
        let mut eng = Engine::new(
            Topology::new(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(0.1, 0.0),
                    Point::new(0.2, 0.0),
                ],
                0.15,
            ),
            Capture::None,
            1,
        );
        // 0 and 2 both transmit at slot 0; they are hidden from each other
        // and both frames die at 1.
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
            Scripted {
                plan: vec![(0, rts(2, 1))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 3);
        assert!(st[1].heard.is_empty());
        assert_eq!(eng.channel().collisions_total, 1);
    }

    #[test]
    fn trace_records_tx_and_rx() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.enable_trace();
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 3);
        let evs = eng.trace().unwrap().events();
        assert!(matches!(evs[0], TraceEvent::TxStart { slot: 0, .. }));
        assert!(matches!(evs[1], TraceEvent::RxOk { slot: 1, .. }));
    }

    #[test]
    fn data_frame_occupies_multiple_slots() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let data = Frame::data(
            NodeId(0),
            Dest::Node(NodeId(1)),
            0,
            MsgId::new(NodeId(0), 0),
            5,
        );
        let mut st = vec![
            Scripted {
                plan: vec![(0, data)],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 8);
        assert_eq!(st[1].heard, vec![(5, NodeId(0), FrameKind::Data)]);
        // Busy during decisions at slots 1..=5.
        assert_eq!(
            st[1].busy_log,
            vec![false, true, true, true, true, true, false, false]
        );
    }

    /// Periodic station: wants `on_slot` only at multiples of `period`,
    /// optionally transmitting a scripted frame first.
    struct Dozer {
        period: Slot,
        seen: Vec<Slot>,
        plan: Vec<(Slot, Frame)>,
        resets: Vec<Slot>,
    }

    impl Dozer {
        fn new(period: Slot) -> Self {
            Dozer {
                period,
                seen: Vec::new(),
                plan: Vec::new(),
                resets: Vec::new(),
            }
        }
    }

    impl Station for Dozer {
        fn on_receive(&mut self, _frame: &Frame, _captured: bool, _ctx: &mut Ctx<'_>) {}
        fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
            self.seen.push(ctx.now);
            while let Some(pos) = self.plan.iter().position(|(s, _)| *s == ctx.now) {
                let (_, frame) = self.plan.remove(pos);
                ctx.send(frame);
            }
        }
        fn next_wakeup(&self, now: Slot) -> Option<Slot> {
            Some((now / self.period + 1) * self.period)
        }
        fn on_reset(&mut self, now: Slot) {
            self.resets.push(now);
        }
    }

    #[test]
    fn fast_path_skips_dead_air_between_wakeups() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![Dozer::new(10), Dozer::new(10)];
        eng.run_fast(&mut st, 30);
        assert_eq!(eng.now(), 30);
        assert_eq!(st[0].seen, vec![0, 10, 20]);
        assert_eq!(st[1].seen, vec![0, 10, 20]);
        assert_eq!(eng.slots_skipped(), 27);
    }

    #[test]
    fn fast_path_never_skips_while_frames_are_on_the_air() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut a = Dozer::new(10);
        // A 3-slot data frame at slot 0 keeps the channel non-quiescent
        // through slot 3 (resolution slot), forcing naive stepping there
        // even though the hint asks for slot 10.
        a.plan.push((
            0,
            Frame::data(
                NodeId(0),
                Dest::Node(NodeId(1)),
                0,
                MsgId::new(NodeId(0), 0),
                3,
            ),
        ));
        let mut st = vec![a, Dozer::new(10)];
        eng.run_fast(&mut st, 30);
        assert_eq!(st[0].seen, vec![0, 1, 2, 3, 10, 20]);
        assert_eq!(st[1].seen, vec![0, 1, 2, 3, 10, 20]);
    }

    #[test]
    fn fast_path_is_inert_for_default_hint_stations() {
        let plan = vec![(0, rts(0, 1)), (7, rts(0, 1))];
        let mk = |plan: Vec<(Slot, Frame)>| {
            vec![
                Scripted {
                    plan,
                    ..Default::default()
                },
                Scripted::default(),
            ]
        };
        let mut naive = Engine::new(pair_topo(), Capture::None, 1);
        let mut st_naive = mk(plan.clone());
        naive.run(&mut st_naive, 12);
        let mut fast = Engine::new(pair_topo(), Capture::None, 1);
        let mut st_fast = mk(plan);
        fast.run_fast(&mut st_fast, 12);
        assert_eq!(fast.slots_skipped(), 0, "default hint wakes every slot");
        assert_eq!(st_naive[1].heard, st_fast[1].heard);
        assert_eq!(st_naive[1].busy_log, st_fast[1].busy_log);
    }

    #[test]
    fn crashed_node_neither_sends_nor_receives() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.set_faults(FaultPlan::new().crash(NodeId(0), 3));
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (5, rts(0, 1))],
                ..Default::default()
            },
            Scripted {
                plan: vec![(7, rts(1, 0))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 10);
        // The pre-crash frame arrives; the post-crash one is dropped.
        assert_eq!(st[1].heard, vec![(1, NodeId(0), FrameKind::Rts)]);
        // The crashed node decodes nothing.
        assert!(st[0].heard.is_empty());
        assert_eq!(eng.last_tx(NodeId(0)), Some(0));
        assert_eq!(eng.last_tx(NodeId(1)), Some(7));
    }

    #[test]
    fn deaf_window_blocks_decode_then_recovers() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        // Frames resolve at slot start+1; deafness covers the first one.
        eng.set_faults(FaultPlan::new().deaf(NodeId(1), 0, 3));
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (4, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 8);
        assert_eq!(st[1].heard, vec![(5, NodeId(0), FrameKind::Rts)]);
        // Carrier sense still works while deaf: slot 1 reads busy.
        assert!(st[1].busy_log[1]);
    }

    #[test]
    fn muted_sender_is_silent_on_the_air() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.enable_trace();
        eng.set_faults(FaultPlan::new().mute(NodeId(0), 0, 10));
        let mut st = vec![
            Scripted {
                plan: vec![(2, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 6);
        assert!(st[1].heard.is_empty());
        // No TxStart trace, no carrier sense, no last_tx: the frame
        // never existed as far as the network is concerned.
        assert!(eng.trace().unwrap().events().is_empty());
        assert!(st[1].busy_log.iter().all(|&b| !b));
        assert_eq!(eng.last_tx(NodeId(0)), None);
    }

    #[test]
    fn reboot_blocks_radio_then_resets_at_recovery() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.set_faults(FaultPlan::new().reboot(NodeId(1), 2, 6));
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (3, rts(0, 1)), (7, rts(0, 1))],
                ..Default::default()
            },
            Scripted {
                plan: vec![(4, rts(1, 0))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 10);
        // Pre-window and post-window frames arrive; the mid-window one is
        // lost (rx dead) and node 1's own frame never airs (tx dead).
        assert_eq!(
            st[1].heard,
            vec![
                (1, NodeId(0), FrameKind::Rts),
                (8, NodeId(0), FrameKind::Rts)
            ]
        );
        assert!(st[0].heard.is_empty());
        assert_eq!(eng.last_tx(NodeId(1)), None);
        // Exactly one cold reset, at the recovery slot, only for node 1.
        assert_eq!(st[1].resets, vec![6]);
        assert!(st[0].resets.is_empty());
    }

    #[test]
    fn fast_path_steps_the_reboot_recovery_slot() {
        use crate::fault::FaultPlan;
        // The recovery slot (17) is aligned with no wakeup hint (period
        // 10): without the horizon clamp the fast path would skip it and
        // never fire the reset.
        let run = |fast: bool| {
            let mut eng = Engine::new(pair_topo(), Capture::None, 1);
            eng.set_faults(FaultPlan::new().reboot(NodeId(1), 3, 17));
            let mut st = vec![Dozer::new(10), Dozer::new(10)];
            if fast {
                eng.run_fast(&mut st, 30);
            } else {
                eng.run(&mut st, 30);
            }
            (st[0].seen.clone(), st[1].resets.clone())
        };
        let (_, naive_resets) = run(false);
        let (fast_seen, fast_resets) = run(true);
        assert_eq!(naive_resets, vec![17]);
        assert_eq!(fast_resets, vec![17], "fast path missed the reset slot");
        assert!(fast_seen.contains(&17), "recovery slot was skipped");
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn set_faults_rejects_out_of_range_nodes() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.set_faults(FaultPlan::new().crash(NodeId(7), 10));
    }

    #[test]
    fn run_advances_clock() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![Scripted::default(), Scripted::default()];
        assert_eq!(eng.now(), 0);
        eng.run(&mut st, 10);
        assert_eq!(eng.now(), 10);
    }

    #[test]
    fn profiling_attributes_time_without_changing_the_run() {
        let mk = || {
            vec![
                Scripted {
                    plan: vec![(0, rts(0, 1)), (5, rts(0, 1))],
                    ..Default::default()
                },
                Scripted::default(),
            ]
        };
        let mut plain = Engine::new(pair_topo(), Capture::None, 1);
        let mut st_plain = mk();
        plain.run(&mut st_plain, 10);

        let mut profiled = Engine::new(pair_topo(), Capture::None, 1);
        profiled.enable_profiling();
        let mut st_prof = mk();
        profiled.run_fast(&mut st_prof, 10);

        assert_eq!(st_plain[1].heard, st_prof[1].heard);
        assert_eq!(st_plain[1].busy_log, st_prof[1].busy_log);
        let report = profiled.take_profile().expect("profiling was enabled");
        for name in [
            "carrier_sense",
            "resolve",
            "deliver",
            "fsm_dispatch",
            "tx_launch",
        ] {
            let p = report.phase(name).unwrap();
            assert_eq!(p.calls, 10, "{name} laps once per stepped slot");
        }
        assert!(
            profiled.profile().is_none(),
            "take_profile disables profiling"
        );
        assert!(plain.profile().is_none());
    }

    #[test]
    fn ledger_busy_slots_match_channel_counter() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let data = Frame::data(
            NodeId(0),
            Dest::Node(NodeId(1)),
            0,
            MsgId::new(NodeId(0), 0),
            5,
        );
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (3, data)],
                ..Default::default()
            },
            Scripted {
                plan: vec![(10, rts(1, 0))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 12);
        let b = eng.channel().ledger().breakdown(eng.now());
        assert_eq!(b.busy_slots(), eng.channel().busy_slots);
        assert_eq!(
            b.idle_slots + b.data_slots + b.control_slots + b.collision_slots,
            12
        );
        assert_eq!(b.by_kind.rts, 2);
        assert_eq!(b.by_kind.data, 5);
    }
}
