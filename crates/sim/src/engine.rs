//! The slotted simulation engine.
//!
//! [`Engine::step`] advances the whole network by one slot:
//!
//! 1. transmissions whose airtime ends this slot are resolved against the
//!    channel (collisions, capture) and delivered via
//!    [`Station::on_receive`],
//! 2. every station gets an [`Station::on_slot`] call with its local
//!    carrier-sense state (the channel as of the *previous* slot) and may
//!    queue new transmissions,
//! 3. queued transmissions go on the air starting this slot.
//!
//! Stations starting in the same slot therefore cannot see each other —
//! the canonical slotted-CSMA collision mechanism.
//!
//! # Hot-path layout
//!
//! The per-station state the engine consults every slot lives in
//! contiguous struct-of-arrays form: reception/fault/sensitivity flags
//! are word-packed bitsets, wakeup hints and deadlines are flat `Slot`
//! arrays, and carrier sense is an O(1) watermark compare served by the
//! channel. On the event-horizon path ([`Engine::advance_to`]) these
//! arrays form a dispatch filter: a station's `on_slot` runs only when
//! it received a frame, its busy medium can change it (carrier-sensitive
//! and not a pure freeze), or its own hinted wakeup or deadline slot
//! arrived — the same slots at which naive stepping can observably
//! affect it, so the run stays bit-exact. Stations whose only response
//! to a busy medium is freezing a contention countdown
//! ([`Station::busy_freezes`]) are skipped through busy bursts entirely;
//! the engine records the skipped busy prefix in
//! [`Ctx::frozen_through`] so the station replays the freeze exactly at
//! its next dispatch.

use crate::capture::Capture;
use crate::channel::{Channel, SlotOutcome};
use crate::fault::{FaultPlan, GilbertElliott};
use crate::frame::Frame;
use crate::ids::{NodeId, Slot};
use crate::topology::Topology;
use crate::trace::{EventSink, Trace, TraceEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rmm_stats::{Phase, ProfileReport, Profiler};
use std::time::Instant;

#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    words[i >> 6] & (1 << (i & 63)) != 0
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn assign_bit(words: &mut [u64], i: usize, v: bool) {
    if v {
        words[i >> 6] |= 1 << (i & 63);
    } else {
        words[i >> 6] &= !(1 << (i & 63));
    }
}

/// Per-call context handed to stations.
pub struct Ctx<'a> {
    /// Current slot.
    pub now: Slot,
    /// The station being called.
    pub node: NodeId,
    /// Carrier sense: was the medium busy at this station during the
    /// previous slot?
    pub busy: bool,
    /// Frozen-skip watermark (see [`Station::busy_freezes`]): the engine
    /// skipped this station's `on_slot` for every slot of its current
    /// catch-up gap up to and including `frozen_through` while the
    /// station's medium was busy; `0` means no frozen slots are pending.
    /// The skipped busy slots always form a contiguous prefix of the gap
    /// (the dispatcher never skips a busy slot that follows a skipped
    /// idle slot), so a gap replays as one freeze followed by idle
    /// polls.
    pub frozen_through: Slot,
    out: &'a mut Vec<Frame>,
    sink: Option<&'a mut dyn EventSink>,
}

impl Ctx<'_> {
    /// Puts `frame` on the air starting at the current slot. The frame's
    /// `src` must be the station itself.
    pub fn send(&mut self, frame: Frame) {
        debug_assert_eq!(frame.src, self.node, "stations may only send as themselves");
        self.out.push(frame);
    }

    /// Whether protocol events are being collected this run.
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits a protocol-phase event. The construction closure only runs
    /// when tracing is enabled, so emission costs one branch otherwise.
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&mut self, f: F) {
        if let Some(sink) = self.sink.as_mut() {
            sink.accept(f());
        }
    }
}

/// A MAC entity driven by the engine. Implemented by every protocol in
/// the `rmm-mac` crate.
pub trait Station {
    /// A frame addressed to (or overheard by) this station was decoded.
    /// Called at the beginning of the slot following the frame's last
    /// airtime slot, before `on_slot`.
    fn on_receive(&mut self, frame: &Frame, captured: bool, ctx: &mut Ctx<'_>);

    /// Called once per slot, after receptions. The station may inspect
    /// carrier sense and queue transmissions starting this slot.
    fn on_slot(&mut self, ctx: &mut Ctx<'_>);

    /// Event-horizon hint: the earliest slot after `now` (the slot whose
    /// `on_slot` just ran) at which this station next needs an `on_slot`
    /// call, **assuming the medium stays idle at the station and no
    /// frame is delivered to it in between**. `None` means the station
    /// has nothing self-scheduled at all. Returning an earlier slot than
    /// necessary is always safe; returning a later one (or `None` while
    /// a countdown is pending) breaks the protocol, because
    /// [`Engine::advance_to`] skips the station's `on_slot` for every
    /// slot before the earliest hint while the station's medium stays
    /// idle and nothing is delivered to it.
    ///
    /// The default — wake every slot — makes fast-forwarding a no-op for
    /// stations that don't opt in, so it is always bit-exact.
    fn next_wakeup(&self, now: Slot) -> Option<Slot> {
        Some(now + 1)
    }

    /// Whether a busy medium (carrier sense) can change this station's
    /// `on_slot` behaviour right now. Stations that are not currently
    /// counting down a contention window may return `false`, letting the
    /// event-horizon dispatcher skip their `on_slot` on slots where only
    /// the medium changed. Returning `true` is always safe (the default);
    /// returning `false` while the station would actually react to a
    /// busy medium breaks bit-exactness with naive stepping.
    fn carrier_sensitive(&self) -> bool {
        true
    }

    /// Whether a busy medium merely *freezes* this station instead of
    /// changing it: while `true` (and the station is carrier-sensitive),
    /// the event-horizon dispatcher may skip the station's `on_slot` on
    /// slots whose only stimulus is a busy medium, recording them in
    /// [`Ctx::frozen_through`] for the station to replay at its next
    /// dispatch. Stations returning `true` must reconstruct the skipped
    /// busy slots from that watermark exactly as if they had been
    /// stepped through them (a frozen contention countdown is the
    /// canonical case), and must report medium-independent deadlines via
    /// [`Station::next_deadline`]. Default `false`: busy slots always
    /// dispatch, which is always bit-exact.
    fn busy_freezes(&self) -> bool {
        false
    }

    /// The earliest absolute slot at which this station must run even if
    /// its medium is busy — service timeouts and receiver-side deadlines
    /// that fire regardless of carrier state. Only consulted while the
    /// station opts into [`Station::busy_freezes`]; a frozen skip never
    /// crosses this slot. `None` (the default) means no such deadline.
    fn next_deadline(&self) -> Option<Slot> {
        None
    }

    /// The station's platform rebooted: a [`crate::FaultKind::Reboot`]
    /// blackout window just ended. The engine calls this at the top of
    /// the recovery slot, before any reception or `on_slot` in it, so
    /// the naive and event-horizon steppers agree by construction.
    /// Implementations should cold-reset transient MAC state (in-flight
    /// exchanges, virtual carrier sense, backoff) while keeping
    /// measurement state. Default: no-op.
    fn on_reset(&mut self, _now: Slot) {}
}

/// How [`Engine::step_inner`] selects stations for the `on_slot` phase.
#[derive(Clone, Copy, PartialEq)]
enum Dispatch {
    /// Every station, no hint bookkeeping (the naive reference stepper).
    Full,
    /// Every station, refreshing the hint/sensitivity arrays afterwards —
    /// re-seeds the event-horizon state after it was invalidated.
    FullRefresh,
    /// Only stations that received a frame, sensed a newly busy medium,
    /// or whose hinted wakeup slot arrived; hints refreshed as they run.
    Selective,
}

/// The slotted simulation engine: topology + channel + clock.
pub struct Engine {
    topo: Topology,
    channel: Channel,
    now: Slot,
    rng: SmallRng,
    trace: Option<Trace>,
    outbox: Vec<Frame>,
    /// Stations that had a frame delivered this slot (word-packed).
    received: Vec<u64>,
    /// Stations whose `on_slot` currently reacts to a busy medium
    /// (word-packed; refreshed with the wakeup hints).
    sensitive: Vec<u64>,
    /// Stations for which a busy medium is a pure freeze
    /// ([`Station::busy_freezes`]; word-packed, refreshed with the
    /// wakeup hints).
    freezable: Vec<u64>,
    /// Stations that were skipped on an idle-medium slot since their
    /// last dispatch (word-packed). A busy slot after such a skip must
    /// dispatch — the station's backoff may have counted down during
    /// the idle run — which keeps every gap's skipped busy slots a
    /// contiguous prefix.
    gap_idle: Vec<u64>,
    /// Per-station frozen-skip watermark handed to [`Ctx`]: the last
    /// busy slot skipped for the station since its last dispatch (`0` =
    /// none). Reset whenever the station runs.
    frozen_through: Vec<Slot>,
    /// Per-station medium-independent deadline
    /// ([`Station::next_deadline`], clamped to the future), refreshed
    /// with the wakeup hints. A frozen skip never crosses it.
    deadline_at: Vec<Slot>,
    /// Per-station next-wakeup hint, in absolute slots (`Slot::MAX` =
    /// nothing self-scheduled). Entry `i` was computed by
    /// `stations[i].next_wakeup` at the last slot the station ran, and
    /// stays exact until then because skipped slots are exactly the ones
    /// naive stepping could not have changed the station in.
    wake_at: Vec<Slot>,
    /// Scratch: per-station fault masks for the current slot
    /// (word-packed rx-blocked / tx-blocked bits).
    rx_blocked: Vec<u64>,
    tx_blocked: Vec<u64>,
    /// Whether `wake_at`/`sensitive` describe the stations' live state.
    /// Cleared by naive stepping and external perturbations; re-seeded
    /// by the next [`Dispatch::FullRefresh`] slot.
    hints_valid: bool,
    /// Per-slot resolution outcome, reused across slots.
    outcome: SlotOutcome,
    /// Slots fast-forwarded over by [`Engine::advance_to`] (monotone).
    slots_skipped: u64,
    /// TEMP diagnostics: on_slot dispatches, frozen skips, idle skips.
    /// Scheduled node faults (empty by default). A pure predicate of
    /// `(node, slot)`, so the fast and naive steppers agree exactly.
    faults: FaultPlan,
    /// Whether `faults` schedules any reboot — cached so the per-slot
    /// reboot scan and the horizon clamp cost one branch when it doesn't.
    has_reboots: bool,
    /// Per-station slot of the most recent transmission that actually
    /// reached the air (`None` = never). Liveness diagnostics for the
    /// workload watchdog; muted/crashed sends do not count.
    last_tx: Vec<Option<Slot>>,
    /// Phase-timer profiler, if enabled. Behind a box so the disabled
    /// case costs one null check per phase boundary. Profiling is a pure
    /// observer — it never draws from the RNG or touches dynamics, so
    /// profiled and unprofiled runs are bit-identical.
    prof: Option<Box<Profiler>>,
}

impl Engine {
    /// Creates an engine over `topo` with the given capture model and
    /// channel RNG seed.
    pub fn new(topo: Topology, capture: Capture, seed: u64) -> Self {
        let n = topo.len();
        let n_words = n.div_ceil(64);
        Engine {
            topo,
            channel: Channel::new(capture),
            now: 0,
            rng: SmallRng::seed_from_u64(seed),
            trace: None,
            outbox: Vec::new(),
            received: vec![0; n_words],
            sensitive: vec![0; n_words],
            freezable: vec![0; n_words],
            gap_idle: vec![0; n_words],
            frozen_through: vec![0; n],
            deadline_at: vec![Slot::MAX; n],
            wake_at: vec![0; n],
            rx_blocked: vec![0; n_words],
            tx_blocked: vec![0; n_words],
            hints_valid: false,
            outcome: SlotOutcome::default(),
            slots_skipped: 0,
            faults: FaultPlan::default(),
            has_reboots: false,
            last_tx: vec![None; n],
            prof: None,
        }
    }

    /// Slot-sampling stride used by [`Engine::enable_profiling`]: one
    /// slot in four is timed (calls are counted on every slot). Chosen
    /// so profiling a saturated network costs well under the CI gate's
    /// 5% while the per-phase fractions still average over thousands of
    /// timed slots.
    pub const PROFILE_STRIDE: u64 = 4;

    /// Enables phase-timer profiling (disabled by default) at
    /// [`Engine::PROFILE_STRIDE`]. On timed slots each engine phase is
    /// lapped with chained monotonic-clock reads — one `Instant::now()`
    /// per phase boundary — on the rest only call counts advance;
    /// reported nanoseconds are stride-scaled whole-run estimates
    /// accumulated into a [`ProfileReport`].
    pub fn enable_profiling(&mut self) {
        self.enable_profiling_stride(Self::PROFILE_STRIDE);
    }

    /// Enables phase-timer profiling timing every `stride`-th slot
    /// (stride 1 = time everything, exact totals, highest overhead).
    pub fn enable_profiling_stride(&mut self, stride: u64) {
        self.prof = Some(Box::new(Profiler::with_stride(stride)));
    }

    /// Snapshot of the accumulated phase attribution, if profiling is
    /// enabled.
    pub fn profile(&self) -> Option<ProfileReport> {
        self.prof.as_ref().map(|p| p.report())
    }

    /// Takes the accumulated profile, leaving profiling disabled.
    pub fn take_profile(&mut self) -> Option<ProfileReport> {
        self.prof.take().map(|p| p.report())
    }

    /// Starts one profiled unit: registers it with the sampler and
    /// returns the armed mark if this unit is timed. `None` either
    /// means profiling is off or this unit is merely call-counted.
    #[inline]
    fn begin_profiled_unit(&mut self) -> Option<Instant> {
        self.prof
            .as_deref_mut()
            .is_some_and(|prof| prof.begin_unit())
            .then(Instant::now)
    }

    /// Records the time since `*mark` to `phase` and re-arms the mark;
    /// on unsampled units only the call count advances. No-op (one
    /// branch) when profiling is off.
    #[inline]
    fn lap(&mut self, mark: &mut Option<Instant>, phase: Phase) {
        if let Some(prof) = self.prof.as_deref_mut() {
            match mark {
                Some(m) => {
                    let now = Instant::now();
                    prof.record(phase, now.duration_since(*m).as_nanos() as u64);
                    *m = now;
                }
                None => prof.record_call(phase),
            }
        }
    }

    /// Sets the channel's independent frame error rate.
    pub fn set_fer(&mut self, fer: f64) {
        self.channel.set_fer(fer);
    }

    /// Enables the channel's differential shadow: every resolution is
    /// replayed against the naive full-rescan reference implementation
    /// and asserted byte-identical (see
    /// [`Channel::enable_crosscheck`]). Test instrumentation; must be
    /// called before any transmission.
    pub fn enable_channel_crosscheck(&mut self) {
        self.channel.enable_crosscheck();
    }

    /// Installs a fault plan. Crashed/deaf/rebooting nodes decode
    /// nothing while faulty; crashed/muted/rebooting nodes' frames are
    /// dropped before the air; a rebooting station is cold-reset (via
    /// [`Station::on_reset`]) at the top of its recovery slot.
    ///
    /// # Panics
    ///
    /// If the plan fails [`FaultPlan::validate`] against this engine's
    /// station count: out-of-range node ids, overlapping same-kind
    /// windows on one node, or a reboot with no recovery slot.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        if let Err(e) = faults.validate(self.topo.len()) {
            panic!("invalid fault plan: {e}");
        }
        self.has_reboots = faults.has_reboots();
        self.faults = faults;
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Enables the Gilbert–Elliott burst-error channel with its own RNG
    /// stream seeded from `seed`.
    pub fn set_burst(&mut self, model: GilbertElliott, seed: u64) {
        self.channel.set_burst(model, seed);
    }

    /// Slot of `node`'s most recent transmission that reached the air.
    pub fn last_tx(&self, node: NodeId) -> Option<Slot> {
        self.last_tx[node.index()]
    }

    /// Enables event tracing (disabled by default; it allocates).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Takes ownership of the trace, leaving tracing disabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Current slot (the next one to be stepped).
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Total slots fast-forwarded over by [`Engine::advance_to`] so far.
    /// Skipped slots still advance the clock and the idle accounting;
    /// they just never reach the stations.
    pub fn slots_skipped(&self) -> u64 {
        self.slots_skipped
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Replaces the ground-truth topology (node mobility). Station count
    /// must not change. Transmissions already on the air resolve against
    /// the new geometry — acceptable at epoch granularity, since motion
    /// per frame airtime is negligible at realistic speeds. The
    /// channel's interference indexes are re-keyed to the new geometry
    /// and the event-horizon dispatch state is re-seeded.
    pub fn set_topology(&mut self, topo: Topology) {
        assert_eq!(topo.len(), self.topo.len(), "station count is fixed");
        self.topo = topo;
        self.channel.retune(&self.topo, self.now);
        self.hints_valid = false;
    }

    /// Marks `node` for dispatch on the next stepped slot, regardless of
    /// its current wakeup hint. Callers that perturb a station from
    /// outside the engine (e.g. the workload runner handing it a traffic
    /// arrival) must call this so the event-horizon dispatcher does not
    /// skip the station's next `on_slot`.
    pub fn wake(&mut self, node: NodeId) {
        self.wake_at[node.index()] = self.now;
        // The perturbation may have changed the station arbitrarily: a
        // stale frozen-contender flag must not keep its next `on_slot`
        // suppressed while its medium is busy. Dispatching refreshes
        // the flag from the station itself.
        assign_bit(&mut self.freezable, node.index(), false);
    }

    /// The radio channel (for inspection in tests and stats).
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Advances the network by one slot. `stations[i]` is the MAC entity
    /// of `NodeId(i)`; the slice length must match the topology.
    pub fn step<S: Station>(&mut self, stations: &mut [S]) {
        self.hints_valid = false;
        self.step_inner(stations, Dispatch::Full);
    }

    fn step_inner<S: Station>(&mut self, stations: &mut [S], dispatch: Dispatch) {
        debug_assert_eq!(stations.len(), self.topo.len());
        let now = self.now;

        // Phase 0: reboot completions. A station whose blackout window
        // ends exactly now comes back with its MAC cold-reset before
        // anything else happens in this slot — [`Engine::advance_to`]
        // clamps its skip target to the next completion, so the reset
        // fires identically under naive and fast stepping.
        if self.has_reboots {
            for node in self.faults.reboots_completing_at(now) {
                let i = node.index();
                stations[i].on_reset(now);
                // A cold reset reschedules the station arbitrarily, and
                // the pre-reset dispatch flags no longer describe it.
                self.wake_at[i] = now;
                assign_bit(&mut self.sensitive, i, stations[i].carrier_sensitive());
                assign_bit(&mut self.freezable, i, stations[i].busy_freezes());
                assign_bit(&mut self.gap_idle, i, false);
                self.frozen_through[i] = 0;
            }
        }

        let mut mark = self.begin_profiled_unit();

        // Fault masks for the slot, word-packed.
        let faulty = !self.faults.is_empty();
        if faulty {
            self.faults
                .fill_masks(now, &mut self.rx_blocked, &mut self.tx_blocked);
        }
        self.lap(&mut mark, Phase::CarrierSense);

        // Phase 1: resolve frames ending now and deliver them.
        self.channel
            .resolve_ended_into(now, &self.topo, &mut self.rng, &mut self.outcome);
        // Fault injection, rx side: crashed/deaf receivers decode
        // nothing. Filtering happens *after* resolution so the channel's
        // RNG draws (FER, capture, burst) are identical with or without
        // a fault plan — only delivery is suppressed.
        if faulty {
            let rx_blocked = &self.rx_blocked;
            self.outcome
                .receptions
                .retain(|r| !bit(rx_blocked, r.receiver.index()));
        }
        if let Some(trace) = &mut self.trace {
            for c in &self.outcome.collisions {
                trace.push(TraceEvent::Collision {
                    slot: now,
                    node: c.receiver,
                    senders: c.senders.clone(),
                });
            }
            for r in &self.outcome.receptions {
                trace.push(TraceEvent::RxOk {
                    slot: now,
                    node: r.receiver,
                    from: r.frame.src,
                    kind: r.frame.kind,
                    captured: r.captured,
                });
            }
        }
        self.channel.count_collisions(self.outcome.collisions.len());
        self.channel.frame_errors_total += self.outcome.frame_errors.len() as u64;
        self.lap(&mut mark, Phase::Resolve);
        for rec in &self.outcome.receptions {
            let node = rec.receiver;
            set_bit(&mut self.received, node.index());
            let mut ctx = Ctx {
                now,
                node,
                busy: self.channel.busy_prev_slot(node, now, &self.topo),
                frozen_through: self.frozen_through[node.index()],
                out: &mut self.outbox,
                sink: self.trace.as_mut().map(|t| t as &mut dyn EventSink),
            };
            stations[node.index()].on_receive(&rec.frame, rec.captured, &mut ctx);
        }
        self.lap(&mut mark, Phase::Deliver);

        // Phase 2: per-slot decisions. The selective mode runs exactly
        // the stations naive stepping could observably have changed this
        // slot: a delivered frame, a busy medium at a carrier-sensitive
        // station (unless busy is a pure freeze for it and no deadline
        // fell due), or the station's own hinted wakeup.
        for (i, station) in stations.iter_mut().enumerate() {
            let node = NodeId(i as u32);
            let busy = self.channel.busy_prev_slot(node, now, &self.topo);
            if dispatch == Dispatch::Selective && !bit(&self.received, i) {
                let skip = if bit(&self.sensitive, i) && busy {
                    // A frozen contender sleeps through busy slots —
                    // but never through a deadline, and never after an
                    // idle-medium skip in the same gap (its backoff may
                    // have counted down there, and a naive step would
                    // bank that idle run before freezing).
                    bit(&self.freezable, i) && !bit(&self.gap_idle, i) && self.deadline_at[i] > now
                } else {
                    self.wake_at[i] > now
                };
                if skip {
                    if bit(&self.sensitive, i) && busy {
                        self.frozen_through[i] = now;
                    } else if bit(&self.sensitive, i) && bit(&self.freezable, i) {
                        set_bit(&mut self.gap_idle, i);
                    }
                    continue;
                }
            }
            let mut ctx = Ctx {
                now,
                node,
                busy,
                frozen_through: self.frozen_through[i],
                out: &mut self.outbox,
                sink: self.trace.as_mut().map(|t| t as &mut dyn EventSink),
            };
            station.on_slot(&mut ctx);
            if dispatch != Dispatch::Full {
                self.wake_at[i] = station.next_wakeup(now).unwrap_or(Slot::MAX);
                self.deadline_at[i] = station
                    .next_deadline()
                    .map_or(Slot::MAX, |d| d.max(now + 1));
                assign_bit(&mut self.sensitive, i, station.carrier_sensitive());
                assign_bit(&mut self.freezable, i, station.busy_freezes());
            }
            self.frozen_through[i] = 0;
            assign_bit(&mut self.gap_idle, i, false);
        }
        for w in &mut self.received {
            *w = 0;
        }
        self.lap(&mut mark, Phase::FsmDispatch);

        // Phase 3: new transmissions go on the air. Fault injection, tx
        // side: frames from crashed/muted stations are dropped before
        // the air — no trace event, no interference, no carrier sense.
        // The sender's own MAC bookkeeping already ran; it believes the
        // frame went out.
        for frame in self.outbox.drain(..) {
            if faulty && bit(&self.tx_blocked, frame.src.index()) {
                continue;
            }
            self.last_tx[frame.src.index()] = Some(now);
            if let Some(trace) = &mut self.trace {
                trace.tx_start(now, &frame);
            }
            self.channel.begin_tx(frame, now, &self.topo);
        }
        if self.channel.any_active(now) {
            self.channel.busy_slots += 1;
        }
        self.channel.prune(now, &self.topo);
        self.lap(&mut mark, Phase::TxLaunch);
        self.now = now + 1;
    }

    /// Runs `slots` steps, one by one (the naive reference stepper).
    pub fn run<S: Station>(&mut self, stations: &mut [S], slots: Slot) {
        for _ in 0..slots {
            self.step(stations);
        }
    }

    /// Advances the clock to `target`, fast-forwarding through dead air.
    ///
    /// After each processed slot, if the channel is quiescent (nothing
    /// on the air or still resolvable anywhere in the network), the
    /// clock jumps straight to the earliest cached [`Station::next_wakeup`]
    /// hint, clamped to `target`. Skipped slots are provably idle for
    /// every station — no receptions, no busy carrier sense, no channel
    /// RNG draws — so stations that honor the hint contract observe
    /// exactly the slot sequence naive stepping would have given them,
    /// and the run is bit-exact with [`Engine::run`]. Stepped slots use
    /// the same hints to dispatch only the stations the slot can
    /// observably affect.
    ///
    /// Callers that inject external events (traffic arrivals, topology
    /// changes) must advance to the event's slot first, apply it, and
    /// [`Engine::wake`] any station they touched, then continue — see
    /// the workload runner.
    pub fn advance_to<S: Station>(&mut self, stations: &mut [S], target: Slot) {
        while self.now < target {
            if self.hints_valid {
                self.step_inner(stations, Dispatch::Selective);
            } else {
                self.step_inner(stations, Dispatch::FullRefresh);
                self.hints_valid = true;
            }
            if self.now >= target || !self.channel.quiescent_at(self.now) {
                continue;
            }
            let mut mark = self.begin_profiled_unit();
            let mut horizon = target;
            // Never skip past a reboot completion: the recovery slot
            // must actually be stepped so the cold reset fires there.
            if self.has_reboots {
                if let Some(recovery) = self.faults.next_reboot_completion(self.now) {
                    horizon = horizon.min(recovery);
                }
            }
            // The hint array is exact (each entry was computed the last
            // time its station ran, and skipped slots cannot change a
            // station), so the horizon is just the array minimum.
            for &wake in &self.wake_at {
                horizon = horizon.min(wake.max(self.now));
                if horizon == self.now {
                    break;
                }
            }
            self.lap(&mut mark, Phase::HorizonScan);
            self.slots_skipped += horizon - self.now;
            self.now = horizon;
        }
    }

    /// Runs `slots` slots' worth of simulated time using the
    /// event-horizon fast path (see [`Engine::advance_to`]).
    pub fn run_fast<S: Station>(&mut self, stations: &mut [S], slots: Slot) {
        let target = self.now + slots;
        self.advance_to(stations, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Dest, FrameKind};
    use crate::ids::MsgId;
    use rmm_geom::Point;

    /// A scripted station: transmits given frames at given slots, records
    /// everything it hears.
    #[derive(Default)]
    struct Scripted {
        plan: Vec<(Slot, Frame)>,
        heard: Vec<(Slot, NodeId, FrameKind)>,
        busy_log: Vec<bool>,
        resets: Vec<Slot>,
    }

    impl Station for Scripted {
        fn on_receive(&mut self, frame: &Frame, _captured: bool, ctx: &mut Ctx<'_>) {
            self.heard.push((ctx.now, frame.src, frame.kind));
        }
        fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
            self.busy_log.push(ctx.busy);
            while let Some(pos) = self.plan.iter().position(|(s, _)| *s == ctx.now) {
                let (_, frame) = self.plan.remove(pos);
                ctx.send(frame);
            }
        }
        fn on_reset(&mut self, now: Slot) {
            self.resets.push(now);
        }
    }

    fn pair_topo() -> Topology {
        Topology::new(vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)], 0.2)
    }

    fn rts(src: u32, dst: u32) -> Frame {
        Frame::control(
            FrameKind::Rts,
            NodeId(src),
            Dest::Node(NodeId(dst)),
            0,
            MsgId::new(NodeId(src), 0),
        )
    }

    #[test]
    fn frame_is_delivered_next_slot() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 3);
        assert_eq!(st[1].heard, vec![(1, NodeId(0), FrameKind::Rts)]);
    }

    #[test]
    fn carrier_sense_lags_one_slot() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 3);
        // Node 1: slot 0 idle (no history), slot 1 busy (slot 0 had the
        // RTS), slot 2 idle again.
        assert_eq!(st[1].busy_log, vec![false, true, false]);
    }

    #[test]
    fn simultaneous_starts_collide() {
        let mut eng = Engine::new(
            Topology::new(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(0.1, 0.0),
                    Point::new(0.2, 0.0),
                ],
                0.15,
            ),
            Capture::None,
            1,
        );
        // 0 and 2 both transmit at slot 0; they are hidden from each other
        // and both frames die at 1.
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
            Scripted {
                plan: vec![(0, rts(2, 1))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 3);
        assert!(st[1].heard.is_empty());
        assert_eq!(eng.channel().collisions_total, 1);
    }

    #[test]
    fn trace_records_tx_and_rx() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.enable_trace();
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 3);
        let evs = eng.trace().unwrap().events();
        assert!(matches!(evs[0], TraceEvent::TxStart { slot: 0, .. }));
        assert!(matches!(evs[1], TraceEvent::RxOk { slot: 1, .. }));
    }

    #[test]
    fn data_frame_occupies_multiple_slots() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let data = Frame::data(
            NodeId(0),
            Dest::Node(NodeId(1)),
            0,
            MsgId::new(NodeId(0), 0),
            5,
        );
        let mut st = vec![
            Scripted {
                plan: vec![(0, data)],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 8);
        assert_eq!(st[1].heard, vec![(5, NodeId(0), FrameKind::Data)]);
        // Busy during decisions at slots 1..=5.
        assert_eq!(
            st[1].busy_log,
            vec![false, true, true, true, true, true, false, false]
        );
    }

    /// Periodic station: wants `on_slot` only at multiples of `period`,
    /// optionally transmitting a scripted frame first.
    struct Dozer {
        period: Slot,
        seen: Vec<Slot>,
        plan: Vec<(Slot, Frame)>,
        resets: Vec<Slot>,
    }

    impl Dozer {
        fn new(period: Slot) -> Self {
            Dozer {
                period,
                seen: Vec::new(),
                plan: Vec::new(),
                resets: Vec::new(),
            }
        }
    }

    impl Station for Dozer {
        fn on_receive(&mut self, _frame: &Frame, _captured: bool, _ctx: &mut Ctx<'_>) {}
        fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
            self.seen.push(ctx.now);
            while let Some(pos) = self.plan.iter().position(|(s, _)| *s == ctx.now) {
                let (_, frame) = self.plan.remove(pos);
                ctx.send(frame);
            }
        }
        fn next_wakeup(&self, now: Slot) -> Option<Slot> {
            Some((now / self.period + 1) * self.period)
        }
        fn on_reset(&mut self, now: Slot) {
            self.resets.push(now);
        }
    }

    #[test]
    fn fast_path_skips_dead_air_between_wakeups() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![Dozer::new(10), Dozer::new(10)];
        eng.run_fast(&mut st, 30);
        assert_eq!(eng.now(), 30);
        assert_eq!(st[0].seen, vec![0, 10, 20]);
        assert_eq!(st[1].seen, vec![0, 10, 20]);
        assert_eq!(eng.slots_skipped(), 27);
    }

    #[test]
    fn fast_path_never_skips_while_frames_are_on_the_air() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut a = Dozer::new(10);
        // A 3-slot data frame at slot 0 keeps the channel non-quiescent
        // through slot 3 (resolution slot), forcing stepped slots there
        // even though the hint asks for slot 10; both stations' media are
        // busy (sender + in-range receiver), so both stay dispatched.
        a.plan.push((
            0,
            Frame::data(
                NodeId(0),
                Dest::Node(NodeId(1)),
                0,
                MsgId::new(NodeId(0), 0),
                3,
            ),
        ));
        let mut st = vec![a, Dozer::new(10)];
        eng.run_fast(&mut st, 30);
        assert_eq!(st[0].seen, vec![0, 1, 2, 3, 10, 20]);
        assert_eq!(st[1].seen, vec![0, 1, 2, 3, 10, 20]);
    }

    #[test]
    fn fast_path_is_inert_for_default_hint_stations() {
        let plan = vec![(0, rts(0, 1)), (7, rts(0, 1))];
        let mk = |plan: Vec<(Slot, Frame)>| {
            vec![
                Scripted {
                    plan,
                    ..Default::default()
                },
                Scripted::default(),
            ]
        };
        let mut naive = Engine::new(pair_topo(), Capture::None, 1);
        let mut st_naive = mk(plan.clone());
        naive.run(&mut st_naive, 12);
        let mut fast = Engine::new(pair_topo(), Capture::None, 1);
        let mut st_fast = mk(plan);
        fast.run_fast(&mut st_fast, 12);
        assert_eq!(fast.slots_skipped(), 0, "default hint wakes every slot");
        assert_eq!(st_naive[1].heard, st_fast[1].heard);
        assert_eq!(st_naive[1].busy_log, st_fast[1].busy_log);
    }

    #[test]
    fn selective_dispatch_wakes_on_busy_medium_only_when_sensitive() {
        /// Hints far in the future, logs every `on_slot` slot, and
        /// optionally transmits at slot 3; sensitivity is configurable.
        struct Watcher {
            sensitive: bool,
            tx_at_3: bool,
            seen: Vec<Slot>,
            heard: Vec<Slot>,
        }
        impl Station for Watcher {
            fn on_receive(&mut self, _f: &Frame, _c: bool, ctx: &mut Ctx<'_>) {
                self.heard.push(ctx.now);
            }
            fn on_slot(&mut self, ctx: &mut Ctx<'_>) {
                self.seen.push(ctx.now);
                if self.tx_at_3 && ctx.now == 3 {
                    ctx.send(rts(ctx.node.0, (ctx.node.0 + 1) % 3));
                }
            }
            fn next_wakeup(&self, now: Slot) -> Option<Slot> {
                if self.tx_at_3 && now < 3 {
                    Some(3)
                } else {
                    Some(now + 1_000_000)
                }
            }
            fn carrier_sensitive(&self) -> bool {
                self.sensitive
            }
        }
        // Three stations in one radio range: 0 transmits at slot 3,
        // 1 is carrier-sensitive, 2 is not.
        let topo = Topology::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.05, 0.0),
                Point::new(0.1, 0.0),
            ],
            0.2,
        );
        let mk = |sensitive, tx_at_3| Watcher {
            sensitive,
            tx_at_3,
            seen: Vec::new(),
            heard: Vec::new(),
        };
        let mut eng = Engine::new(topo, Capture::None, 1);
        let mut st = vec![mk(false, true), mk(true, false), mk(false, false)];
        eng.run_fast(&mut st, 8);
        // Slot 0 is the seeding full-refresh slot (everyone runs). The
        // RTS airs at slot 3 and resolves at 4, so slot-4 media read
        // busy: the sensitive watcher runs at 4, the insensitive one
        // does not — but both receive the frame at 4 (delivery always
        // dispatches the receiving station's on_slot too).
        assert_eq!(st[0].seen, vec![0, 3]);
        assert_eq!(st[1].seen, vec![0, 4]);
        assert_eq!(st[2].seen, vec![0, 4]);
        assert_eq!(st[1].heard, vec![4]);
        assert_eq!(st[2].heard, vec![4]);
    }

    #[test]
    fn crashed_node_neither_sends_nor_receives() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.set_faults(FaultPlan::new().crash(NodeId(0), 3));
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (5, rts(0, 1))],
                ..Default::default()
            },
            Scripted {
                plan: vec![(7, rts(1, 0))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 10);
        // The pre-crash frame arrives; the post-crash one is dropped.
        assert_eq!(st[1].heard, vec![(1, NodeId(0), FrameKind::Rts)]);
        // The crashed node decodes nothing.
        assert!(st[0].heard.is_empty());
        assert_eq!(eng.last_tx(NodeId(0)), Some(0));
        assert_eq!(eng.last_tx(NodeId(1)), Some(7));
    }

    #[test]
    fn deaf_window_blocks_decode_then_recovers() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        // Frames resolve at slot start+1; deafness covers the first one.
        eng.set_faults(FaultPlan::new().deaf(NodeId(1), 0, 3));
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (4, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 8);
        assert_eq!(st[1].heard, vec![(5, NodeId(0), FrameKind::Rts)]);
        // Carrier sense still works while deaf: slot 1 reads busy.
        assert!(st[1].busy_log[1]);
    }

    #[test]
    fn muted_sender_is_silent_on_the_air() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.enable_trace();
        eng.set_faults(FaultPlan::new().mute(NodeId(0), 0, 10));
        let mut st = vec![
            Scripted {
                plan: vec![(2, rts(0, 1))],
                ..Default::default()
            },
            Scripted::default(),
        ];
        eng.run(&mut st, 6);
        assert!(st[1].heard.is_empty());
        // No TxStart trace, no carrier sense, no last_tx: the frame
        // never existed as far as the network is concerned.
        assert!(eng.trace().unwrap().events().is_empty());
        assert!(st[1].busy_log.iter().all(|&b| !b));
        assert_eq!(eng.last_tx(NodeId(0)), None);
    }

    #[test]
    fn reboot_blocks_radio_then_resets_at_recovery() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.set_faults(FaultPlan::new().reboot(NodeId(1), 2, 6));
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (3, rts(0, 1)), (7, rts(0, 1))],
                ..Default::default()
            },
            Scripted {
                plan: vec![(4, rts(1, 0))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 10);
        // Pre-window and post-window frames arrive; the mid-window one is
        // lost (rx dead) and node 1's own frame never airs (tx dead).
        assert_eq!(
            st[1].heard,
            vec![
                (1, NodeId(0), FrameKind::Rts),
                (8, NodeId(0), FrameKind::Rts)
            ]
        );
        assert!(st[0].heard.is_empty());
        assert_eq!(eng.last_tx(NodeId(1)), None);
        // Exactly one cold reset, at the recovery slot, only for node 1.
        assert_eq!(st[1].resets, vec![6]);
        assert!(st[0].resets.is_empty());
    }

    #[test]
    fn fast_path_steps_the_reboot_recovery_slot() {
        use crate::fault::FaultPlan;
        // The recovery slot (17) is aligned with no wakeup hint (period
        // 10): without the horizon clamp the fast path would skip it and
        // never fire the reset.
        let run = |fast: bool| {
            let mut eng = Engine::new(pair_topo(), Capture::None, 1);
            eng.set_faults(FaultPlan::new().reboot(NodeId(1), 3, 17));
            let mut st = vec![Dozer::new(10), Dozer::new(10)];
            if fast {
                eng.run_fast(&mut st, 30);
            } else {
                eng.run(&mut st, 30);
            }
            (st[1].seen.clone(), st[1].resets.clone())
        };
        let (_, naive_resets) = run(false);
        let (fast_seen, fast_resets) = run(true);
        assert_eq!(naive_resets, vec![17]);
        assert_eq!(fast_resets, vec![17], "fast path missed the reset slot");
        // The reset forces the rebooted station awake at the recovery
        // slot even though its own hint said 20.
        assert!(fast_seen.contains(&17), "recovery slot was skipped");
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn set_faults_rejects_out_of_range_nodes() {
        use crate::fault::FaultPlan;
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        eng.set_faults(FaultPlan::new().crash(NodeId(7), 10));
    }

    #[test]
    fn run_advances_clock() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let mut st = vec![Scripted::default(), Scripted::default()];
        assert_eq!(eng.now(), 0);
        eng.run(&mut st, 10);
        assert_eq!(eng.now(), 10);
    }

    #[test]
    fn profiling_attributes_time_without_changing_the_run() {
        let mk = || {
            vec![
                Scripted {
                    plan: vec![(0, rts(0, 1)), (5, rts(0, 1))],
                    ..Default::default()
                },
                Scripted::default(),
            ]
        };
        let mut plain = Engine::new(pair_topo(), Capture::None, 1);
        let mut st_plain = mk();
        plain.run(&mut st_plain, 10);

        let mut profiled = Engine::new(pair_topo(), Capture::None, 1);
        profiled.enable_profiling();
        let mut st_prof = mk();
        profiled.run_fast(&mut st_prof, 10);

        assert_eq!(st_plain[1].heard, st_prof[1].heard);
        assert_eq!(st_plain[1].busy_log, st_prof[1].busy_log);
        let report = profiled.take_profile().expect("profiling was enabled");
        for name in [
            "carrier_sense",
            "resolve",
            "deliver",
            "fsm_dispatch",
            "tx_launch",
        ] {
            let p = report.phase(name).unwrap();
            assert_eq!(p.calls, 10, "{name} laps once per stepped slot");
        }
        assert!(
            profiled.profile().is_none(),
            "take_profile disables profiling"
        );
        assert!(plain.profile().is_none());
    }

    #[test]
    fn ledger_busy_slots_match_channel_counter() {
        let mut eng = Engine::new(pair_topo(), Capture::None, 1);
        let data = Frame::data(
            NodeId(0),
            Dest::Node(NodeId(1)),
            0,
            MsgId::new(NodeId(0), 0),
            5,
        );
        let mut st = vec![
            Scripted {
                plan: vec![(0, rts(0, 1)), (3, data)],
                ..Default::default()
            },
            Scripted {
                plan: vec![(10, rts(1, 0))],
                ..Default::default()
            },
        ];
        eng.run(&mut st, 12);
        let b = eng.channel().ledger().breakdown(eng.now());
        assert_eq!(b.busy_slots(), eng.channel().busy_slots);
        assert_eq!(
            b.idle_slots + b.data_slots + b.control_slots + b.collision_slots,
            12
        );
        assert_eq!(b.by_kind.rts, 2);
        assert_eq!(b.by_kind.data, 5);
    }
}
