//! Event tracing, used for the Figure-2-style timelines and debugging.

use crate::frame::{Dest, Frame, FrameKind};
use crate::ids::{MsgId, NodeId, Slot};

/// A recorded simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A station put a frame on the air.
    TxStart {
        /// Slot at which the transmission starts.
        slot: Slot,
        /// Transmitting station.
        node: NodeId,
        /// Frame type.
        kind: FrameKind,
        /// Addressed station for unicast-addressed frames.
        dest: Option<NodeId>,
        /// Message the frame belongs to.
        msg: MsgId,
        /// Airtime in slots.
        slots: u32,
    },
    /// A station decoded a frame.
    RxOk {
        /// Slot at which the frame ended.
        slot: Slot,
        /// Receiving station.
        node: NodeId,
        /// Transmitting station.
        from: NodeId,
        /// Frame type.
        kind: FrameKind,
        /// Whether the capture effect was needed.
        captured: bool,
    },
    /// Frames collided at a station.
    Collision {
        /// Slot at which the collision resolved.
        slot: Slot,
        /// Station at which the frames collided.
        node: NodeId,
        /// Senders involved.
        senders: Vec<NodeId>,
    },
}

impl TraceEvent {
    /// The slot the event happened in.
    pub fn slot(&self) -> Slot {
        match self {
            TraceEvent::TxStart { slot, .. }
            | TraceEvent::RxOk { slot, .. }
            | TraceEvent::Collision { slot, .. } => *slot,
        }
    }
}

/// An append-only event log.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records a transmission start.
    pub fn tx_start(&mut self, slot: Slot, frame: &Frame) {
        let dest = match &frame.dest {
            Dest::Node(n) => Some(*n),
            Dest::Group(_) => None,
        };
        self.push(TraceEvent::TxStart {
            slot,
            node: frame.src,
            kind: frame.kind,
            dest,
            msg: frame.msg,
            slots: frame.slots,
        });
    }

    /// Renders the transmissions of the trace as a compact per-slot
    /// timeline string: one line per transmission, Figure-2 style.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ev in &self.events {
            if let TraceEvent::TxStart {
                slot,
                node,
                kind,
                dest,
                slots,
                ..
            } = ev
            {
                let dest = dest.map(|d| d.to_string()).unwrap_or_else(|| "grp".into());
                let _ = writeln!(
                    out,
                    "slot {slot:>5}  {node:>4} -> {dest:<4}  {kind:?} ({slots} slot{})",
                    if *slots == 1 { "" } else { "s" }
                );
            }
        }
        out
    }
}

/// Airtime occupied by transmissions in `events`, broken down by frame
/// kind (slots).
pub fn airtime_by_kind(events: &[TraceEvent]) -> std::collections::HashMap<FrameKind, u64> {
    let mut out = std::collections::HashMap::new();
    for ev in events {
        if let TraceEvent::TxStart { kind, slots, .. } = ev {
            *out.entry(*kind).or_insert(0) += u64::from(*slots);
        }
    }
    out
}

/// The transmissions of one station within `[from, to)`, as
/// `(start, end)` slot intervals sorted by start.
pub fn tx_intervals_of(
    events: &[TraceEvent],
    node: NodeId,
    from: Slot,
    to: Slot,
) -> Vec<(Slot, Slot)> {
    let mut out: Vec<(Slot, Slot)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::TxStart {
                slot,
                node: n,
                slots,
                ..
            } if *n == node && *slot >= from && *slot < to => {
                Some((*slot, slot + Slot::from(*slots)))
            }
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out
}

/// The largest medium-idle gap (slots) between *any* consecutive
/// transmissions in `[from, to)`, considering every station. Returns 0
/// if fewer than two transmissions fall in the window.
///
/// This is the measurement behind the paper's co-existence invariant:
/// inside a BMMM batch the gap never reaches DIFS, so no bystander's
/// backoff can complete.
pub fn max_idle_gap(events: &[TraceEvent], from: Slot, to: Slot) -> u64 {
    let mut intervals: Vec<(Slot, Slot)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::TxStart { slot, slots, .. } if *slot >= from && *slot < to => {
                Some((*slot, slot + Slot::from(*slots)))
            }
            _ => None,
        })
        .collect();
    intervals.sort_unstable();
    let mut max_gap = 0u64;
    let mut busy_until = match intervals.first() {
        Some(&(s, e)) => {
            let _ = s;
            e
        }
        None => return 0,
    };
    for &(s, e) in &intervals[1..] {
        if s > busy_until {
            max_gap = max_gap.max(s - busy_until);
        }
        busy_until = busy_until.max(e);
    }
    max_gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    #[test]
    fn trace_records_in_order() {
        let mut tr = Trace::new();
        let f = Frame::control(
            FrameKind::Rts,
            NodeId(0),
            Dest::Node(NodeId(1)),
            0,
            MsgId::new(NodeId(0), 0),
        );
        tr.tx_start(3, &f);
        tr.push(TraceEvent::RxOk {
            slot: 4,
            node: NodeId(1),
            from: NodeId(0),
            kind: FrameKind::Rts,
            captured: false,
        });
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].slot(), 3);
        assert_eq!(tr.events()[1].slot(), 4);
    }

    #[test]
    fn airtime_accounting() {
        let mut tr = Trace::new();
        let msg = MsgId::new(NodeId(0), 0);
        tr.tx_start(
            0,
            &Frame::control(FrameKind::Rts, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
        );
        tr.tx_start(2, &Frame::data(NodeId(0), Dest::Node(NodeId(1)), 0, msg, 5));
        tr.tx_start(
            8,
            &Frame::control(FrameKind::Ack, NodeId(1), Dest::Node(NodeId(0)), 0, msg),
        );
        let airtime = airtime_by_kind(tr.events());
        assert_eq!(airtime[&FrameKind::Rts], 1);
        assert_eq!(airtime[&FrameKind::Data], 5);
        assert_eq!(airtime[&FrameKind::Ack], 1);
    }

    #[test]
    fn idle_gap_measurement() {
        let mut tr = Trace::new();
        let msg = MsgId::new(NodeId(0), 0);
        // Tx at [0,1), [2,3) (gap 1), [10,11) (gap 7).
        for (slot, kind) in [
            (0, FrameKind::Rts),
            (2, FrameKind::Cts),
            (10, FrameKind::Ack),
        ] {
            tr.tx_start(
                slot,
                &Frame::control(kind, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
            );
        }
        assert_eq!(max_idle_gap(tr.events(), 0, 20), 7);
        assert_eq!(max_idle_gap(tr.events(), 0, 9), 1);
        assert_eq!(max_idle_gap(tr.events(), 0, 1), 0);
        assert_eq!(max_idle_gap(&[], 0, 10), 0);
    }

    #[test]
    fn interval_extraction_is_per_node_and_sorted() {
        let mut tr = Trace::new();
        let msg = MsgId::new(NodeId(0), 0);
        tr.tx_start(
            5,
            &Frame::control(FrameKind::Cts, NodeId(1), Dest::Node(NodeId(0)), 0, msg),
        );
        tr.tx_start(
            1,
            &Frame::control(FrameKind::Rts, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
        );
        tr.tx_start(
            8,
            &Frame::control(FrameKind::Rak, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
        );
        assert_eq!(
            tx_intervals_of(tr.events(), NodeId(0), 0, 20),
            vec![(1, 2), (8, 9)]
        );
        assert_eq!(tx_intervals_of(tr.events(), NodeId(1), 0, 20), vec![(5, 6)]);
        assert_eq!(tx_intervals_of(tr.events(), NodeId(0), 0, 5), vec![(1, 2)]);
    }

    #[test]
    fn timeline_mentions_frames() {
        let mut tr = Trace::new();
        let f = Frame::data(
            NodeId(2),
            Dest::group(vec![NodeId(3)]),
            0,
            MsgId::new(NodeId(2), 1),
            5,
        );
        tr.tx_start(10, &f);
        let line = tr.render_timeline();
        assert!(line.contains("slot    10"));
        assert!(line.contains("n2"));
        assert!(line.contains("Data"));
        assert!(line.contains("grp"));
        assert!(line.contains("5 slots"));
    }
}
