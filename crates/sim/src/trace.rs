//! Event tracing: physical channel events plus MAC protocol-phase
//! events, used for the Figure-2-style timelines, trace export (JSONL)
//! and trace-derived metrics.

use crate::frame::{Dest, Frame, FrameKind};
use crate::ids::{MsgId, NodeId, Slot};
use serde::{Deserialize, Serialize};

/// A recorded simulator event.
///
/// The first three variants are emitted by the engine itself (physical
/// channel activity); the rest are protocol-phase events emitted by the
/// MAC layer through [`Ctx::emit`](crate::engine::Ctx::emit) and only
/// exist when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A station put a frame on the air.
    TxStart {
        /// Slot at which the transmission starts.
        slot: Slot,
        /// Transmitting station.
        node: NodeId,
        /// Frame type.
        kind: FrameKind,
        /// Addressed station for unicast-addressed frames.
        dest: Option<NodeId>,
        /// Message the frame belongs to.
        msg: MsgId,
        /// Airtime in slots.
        slots: u32,
    },
    /// A station decoded a frame.
    RxOk {
        /// Slot at which the frame ended.
        slot: Slot,
        /// Receiving station.
        node: NodeId,
        /// Transmitting station.
        from: NodeId,
        /// Frame type.
        kind: FrameKind,
        /// Whether the capture effect was needed.
        captured: bool,
    },
    /// Frames collided at a station.
    Collision {
        /// Slot at which the collision resolved.
        slot: Slot,
        /// Station at which the frames collided.
        node: NodeId,
        /// Senders involved.
        senders: Vec<NodeId>,
    },
    /// A sender entered a contention phase (drew a backoff).
    ContentionStart {
        /// Slot of the draw.
        slot: Slot,
        /// Contending station.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// 1-based contention attempt number for this message.
        attempts: u32,
        /// Backoff slots drawn from the contention window.
        backoff_slots: u32,
    },
    /// A sender won its contention phase and may transmit this slot.
    ContentionEnd {
        /// Slot of the access grant.
        slot: Slot,
        /// Station that won access.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// Contention attempts spent on the message so far.
        attempts: u32,
    },
    /// A BMMM/LAMM batch began (the `Batch_Mode_Procedure` entry).
    BatchStart {
        /// Slot of the first RTS.
        slot: Slot,
        /// Batch sender.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// 1-based batch (round) number for this message.
        round: u32,
        /// Receivers polled this batch (`S` for BMMM, `MCS(S)` for LAMM).
        batch: Vec<NodeId>,
    },
    /// A BMMM/LAMM batch ran to the end of its RAK/ACK train.
    BatchEnd {
        /// Slot at which the last ACK window closed.
        slot: Slot,
        /// Batch sender.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// 1-based batch (round) number for this message.
        round: u32,
        /// Receivers polled this batch.
        batch: Vec<NodeId>,
        /// Receivers that ACKed this batch (`S_ACK`).
        acked: Vec<NodeId>,
    },
    /// A serialized poll frame (RTS or RAK) went to one batch receiver.
    PollSent {
        /// Slot of the poll.
        slot: Slot,
        /// Polling sender.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// `Rts` (CTS poll) or `Rak` (ACK poll).
        kind: FrameKind,
        /// Polled receiver.
        target: NodeId,
    },
    /// A polled receiver's ACK window closed without an ACK.
    AckMissed {
        /// Slot at which the window closed.
        slot: Slot,
        /// Polling sender.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// Receiver that did not ACK.
        target: NodeId,
    },
    /// LAMM computed the minimum cover set for a batch (Theorem 3).
    CoverSetComputed {
        /// Slot of the computation.
        slot: Slot,
        /// Batch sender.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// Receivers still requiring service (`S`).
        full: Vec<NodeId>,
        /// The chosen cover set (`MCS(S)`), a subset of `full`.
        cover: Vec<NodeId>,
    },
    /// A sender re-entered contention after a failed attempt (binary
    /// exponential backoff, as opposed to a fresh round's reset window).
    Retry {
        /// Slot of the retry decision.
        slot: Slot,
        /// Retrying station.
        node: NodeId,
        /// Message being retried.
        msg: MsgId,
        /// The upcoming contention attempt number.
        round: u32,
    },
    /// A sender exhausted the per-destination retry budget and pruned
    /// the destination from the message's remaining-set: delivery to
    /// `dst` is abandoned so the rest of the group can finish.
    GiveUp {
        /// Slot of the give-up decision.
        slot: Slot,
        /// Abandoning sender.
        node: NodeId,
        /// Message being served.
        msg: MsgId,
        /// Destination given up on.
        dst: NodeId,
        /// Retries spent on this destination before giving up.
        after_retries: u32,
    },
    /// A station set its NAV from an overheard Duration field.
    NavDefer {
        /// Slot the reserving frame ended.
        slot: Slot,
        /// Deferring station.
        node: NodeId,
        /// Message the reservation belongs to.
        msg: MsgId,
        /// First slot at which this reservation lapses.
        until: Slot,
    },
}

impl TraceEvent {
    /// The slot the event happened in.
    pub fn slot(&self) -> Slot {
        match self {
            TraceEvent::TxStart { slot, .. }
            | TraceEvent::RxOk { slot, .. }
            | TraceEvent::Collision { slot, .. }
            | TraceEvent::ContentionStart { slot, .. }
            | TraceEvent::ContentionEnd { slot, .. }
            | TraceEvent::BatchStart { slot, .. }
            | TraceEvent::BatchEnd { slot, .. }
            | TraceEvent::PollSent { slot, .. }
            | TraceEvent::AckMissed { slot, .. }
            | TraceEvent::CoverSetComputed { slot, .. }
            | TraceEvent::Retry { slot, .. }
            | TraceEvent::GiveUp { slot, .. }
            | TraceEvent::NavDefer { slot, .. } => *slot,
        }
    }

    /// The message the event concerns, when it concerns exactly one.
    pub fn msg(&self) -> Option<MsgId> {
        match self {
            TraceEvent::TxStart { msg, .. }
            | TraceEvent::ContentionStart { msg, .. }
            | TraceEvent::ContentionEnd { msg, .. }
            | TraceEvent::BatchStart { msg, .. }
            | TraceEvent::BatchEnd { msg, .. }
            | TraceEvent::PollSent { msg, .. }
            | TraceEvent::AckMissed { msg, .. }
            | TraceEvent::CoverSetComputed { msg, .. }
            | TraceEvent::Retry { msg, .. }
            | TraceEvent::GiveUp { msg, .. }
            | TraceEvent::NavDefer { msg, .. } => Some(*msg),
            TraceEvent::RxOk { .. } | TraceEvent::Collision { .. } => None,
        }
    }
}

/// A consumer of trace events. The engine hands MAC entities a sink
/// (via [`Ctx::emit`](crate::engine::Ctx::emit)) only while tracing is
/// enabled, so emission is a no-op branch otherwise.
pub trait EventSink {
    /// Consumes one event.
    fn accept(&mut self, ev: TraceEvent);
}

impl EventSink for Trace {
    fn accept(&mut self, ev: TraceEvent) {
        self.push(ev);
    }
}

impl EventSink for Vec<TraceEvent> {
    fn accept(&mut self, ev: TraceEvent) {
        self.push(ev);
    }
}

/// An append-only event log.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records a transmission start.
    pub fn tx_start(&mut self, slot: Slot, frame: &Frame) {
        let dest = match &frame.dest {
            Dest::Node(n) => Some(*n),
            Dest::Group(_) => None,
        };
        self.push(TraceEvent::TxStart {
            slot,
            node: frame.src,
            kind: frame.kind,
            dest,
            msg: frame.msg,
            slots: frame.slots,
        });
    }

    /// Renders the channel activity of the trace as a compact per-slot
    /// timeline string, Figure-2 style: one line per transmission,
    /// decode, or collision. Protocol-phase events are omitted.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                TraceEvent::TxStart {
                    slot,
                    node,
                    kind,
                    dest,
                    slots,
                    ..
                } => {
                    let dest = dest.map(|d| d.to_string()).unwrap_or_else(|| "grp".into());
                    let _ = writeln!(
                        out,
                        "slot {slot:>5}  {node:>4} -> {dest:<4}  {kind:?} ({slots} slot{})",
                        if *slots == 1 { "" } else { "s" }
                    );
                }
                TraceEvent::RxOk {
                    slot,
                    node,
                    from,
                    kind,
                    captured,
                } => {
                    let _ = writeln!(
                        out,
                        "slot {slot:>5}  {node:>4} <- {from:<4}  {kind:?} rx{}",
                        if *captured { " (captured)" } else { "" }
                    );
                }
                TraceEvent::Collision {
                    slot,
                    node,
                    senders,
                } => {
                    let senders = senders
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    let _ = writeln!(out, "slot {slot:>5}  ** collision at {node} [{senders}]");
                }
                _ => {}
            }
        }
        out
    }

    /// Serializes the trace as JSON Lines: one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&serde_json::to_value(ev).to_string());
            out.push('\n');
        }
        out
    }

    /// Streams the trace as JSON Lines into `w`.
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for ev in &self.events {
            writeln!(w, "{}", serde_json::to_value(ev))?;
        }
        Ok(())
    }

    /// Parses a JSON Lines trace produced by [`Trace::to_jsonl`] /
    /// [`Trace::write_jsonl`]. Blank lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<Trace, serde::Error> {
        let mut events = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            events.push(serde_json::from_str(line)?);
        }
        Ok(Trace { events })
    }
}

/// Airtime occupied by transmissions in `events`, broken down by frame
/// kind (slots).
///
/// Implemented by replaying the trace's `TxStart` events into an
/// [`AirtimeLedger`](crate::AirtimeLedger), so the trace-derived view
/// and the channel's live ledger share one accounting definition. Kinds
/// with no airtime are omitted from the map.
pub fn airtime_by_kind(events: &[TraceEvent]) -> std::collections::HashMap<FrameKind, u64> {
    let mut ledger = crate::AirtimeLedger::new();
    for ev in events {
        if let TraceEvent::TxStart {
            slot, kind, slots, ..
        } = ev
        {
            ledger.mark_tx(*kind, *slot, slot + Slot::from(*slots));
        }
    }
    let per_kind = ledger.kind_slots();
    FrameKind::ALL
        .iter()
        .filter(|k| per_kind[k.index()] > 0)
        .map(|&k| (k, per_kind[k.index()]))
        .collect()
}

/// The transmissions of one station within `[from, to)`, as
/// `(start, end)` slot intervals sorted by start.
pub fn tx_intervals_of(
    events: &[TraceEvent],
    node: NodeId,
    from: Slot,
    to: Slot,
) -> Vec<(Slot, Slot)> {
    let mut out: Vec<(Slot, Slot)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::TxStart {
                slot,
                node: n,
                slots,
                ..
            } if *n == node && *slot >= from && *slot < to => {
                Some((*slot, slot + Slot::from(*slots)))
            }
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out
}

/// The largest medium-idle gap (slots) between *any* consecutive
/// transmissions in `[from, to)`, considering every station. Returns 0
/// if fewer than two transmissions fall in the window.
///
/// This is the measurement behind the paper's co-existence invariant:
/// inside a BMMM batch the gap never reaches DIFS, so no bystander's
/// backoff can complete.
pub fn max_idle_gap(events: &[TraceEvent], from: Slot, to: Slot) -> u64 {
    let mut intervals: Vec<(Slot, Slot)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::TxStart { slot, slots, .. } if *slot >= from && *slot < to => {
                Some((*slot, slot + Slot::from(*slots)))
            }
            _ => None,
        })
        .collect();
    intervals.sort_unstable();
    let mut max_gap = 0u64;
    let mut busy_until = match intervals.first() {
        Some(&(s, e)) => {
            let _ = s;
            e
        }
        None => return 0,
    };
    for &(s, e) in &intervals[1..] {
        if s > busy_until {
            max_gap = max_gap.max(s - busy_until);
        }
        busy_until = busy_until.max(e);
    }
    max_gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    #[test]
    fn trace_records_in_order() {
        let mut tr = Trace::new();
        let f = Frame::control(
            FrameKind::Rts,
            NodeId(0),
            Dest::Node(NodeId(1)),
            0,
            MsgId::new(NodeId(0), 0),
        );
        tr.tx_start(3, &f);
        tr.push(TraceEvent::RxOk {
            slot: 4,
            node: NodeId(1),
            from: NodeId(0),
            kind: FrameKind::Rts,
            captured: false,
        });
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].slot(), 3);
        assert_eq!(tr.events()[1].slot(), 4);
    }

    #[test]
    fn airtime_accounting() {
        let mut tr = Trace::new();
        let msg = MsgId::new(NodeId(0), 0);
        tr.tx_start(
            0,
            &Frame::control(FrameKind::Rts, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
        );
        tr.tx_start(2, &Frame::data(NodeId(0), Dest::Node(NodeId(1)), 0, msg, 5));
        tr.tx_start(
            8,
            &Frame::control(FrameKind::Ack, NodeId(1), Dest::Node(NodeId(0)), 0, msg),
        );
        let airtime = airtime_by_kind(tr.events());
        assert_eq!(airtime[&FrameKind::Rts], 1);
        assert_eq!(airtime[&FrameKind::Data], 5);
        assert_eq!(airtime[&FrameKind::Ack], 1);
    }

    #[test]
    fn idle_gap_measurement() {
        let mut tr = Trace::new();
        let msg = MsgId::new(NodeId(0), 0);
        // Tx at [0,1), [2,3) (gap 1), [10,11) (gap 7).
        for (slot, kind) in [
            (0, FrameKind::Rts),
            (2, FrameKind::Cts),
            (10, FrameKind::Ack),
        ] {
            tr.tx_start(
                slot,
                &Frame::control(kind, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
            );
        }
        assert_eq!(max_idle_gap(tr.events(), 0, 20), 7);
        assert_eq!(max_idle_gap(tr.events(), 0, 9), 1);
        assert_eq!(max_idle_gap(tr.events(), 0, 1), 0);
        assert_eq!(max_idle_gap(&[], 0, 10), 0);
    }

    #[test]
    fn interval_extraction_is_per_node_and_sorted() {
        let mut tr = Trace::new();
        let msg = MsgId::new(NodeId(0), 0);
        tr.tx_start(
            5,
            &Frame::control(FrameKind::Cts, NodeId(1), Dest::Node(NodeId(0)), 0, msg),
        );
        tr.tx_start(
            1,
            &Frame::control(FrameKind::Rts, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
        );
        tr.tx_start(
            8,
            &Frame::control(FrameKind::Rak, NodeId(0), Dest::Node(NodeId(1)), 0, msg),
        );
        assert_eq!(
            tx_intervals_of(tr.events(), NodeId(0), 0, 20),
            vec![(1, 2), (8, 9)]
        );
        assert_eq!(tx_intervals_of(tr.events(), NodeId(1), 0, 20), vec![(5, 6)]);
        assert_eq!(tx_intervals_of(tr.events(), NodeId(0), 0, 5), vec![(1, 2)]);
    }

    #[test]
    fn timeline_mentions_frames() {
        let mut tr = Trace::new();
        let f = Frame::data(
            NodeId(2),
            Dest::group(vec![NodeId(3)]),
            0,
            MsgId::new(NodeId(2), 1),
            5,
        );
        tr.tx_start(10, &f);
        let line = tr.render_timeline();
        assert!(line.contains("slot    10"));
        assert!(line.contains("n2"));
        assert!(line.contains("Data"));
        assert!(line.contains("grp"));
        assert!(line.contains("5 slots"));
    }

    #[test]
    fn timeline_renders_collisions_and_decodes() {
        let mut tr = Trace::new();
        tr.push(TraceEvent::RxOk {
            slot: 4,
            node: NodeId(3),
            from: NodeId(2),
            kind: FrameKind::Cts,
            captured: true,
        });
        tr.push(TraceEvent::Collision {
            slot: 7,
            node: NodeId(3),
            senders: vec![NodeId(1), NodeId(2)],
        });
        // A protocol-phase event must not add a timeline line.
        tr.push(TraceEvent::NavDefer {
            slot: 8,
            node: NodeId(4),
            msg: MsgId::new(NodeId(2), 0),
            until: 12,
        });
        let rendered = tr.render_timeline();
        let lines: Vec<&str> = rendered.lines().map(str::trim_end).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("n3 <- n2"));
        assert!(lines[0].contains("Cts rx (captured)"));
        assert_eq!(lines[1], "slot     7  ** collision at n3 [n1,n2]");
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let msg = MsgId::new(NodeId(0), 7);
        let mut tr = Trace::new();
        for ev in [
            TraceEvent::TxStart {
                slot: 0,
                node: NodeId(0),
                kind: FrameKind::Rts,
                dest: Some(NodeId(1)),
                msg,
                slots: 1,
            },
            TraceEvent::RxOk {
                slot: 1,
                node: NodeId(1),
                from: NodeId(0),
                kind: FrameKind::Rts,
                captured: false,
            },
            TraceEvent::Collision {
                slot: 2,
                node: NodeId(2),
                senders: vec![NodeId(0), NodeId(3)],
            },
            TraceEvent::ContentionStart {
                slot: 3,
                node: NodeId(0),
                msg,
                attempts: 1,
                backoff_slots: 4,
            },
            TraceEvent::ContentionEnd {
                slot: 7,
                node: NodeId(0),
                msg,
                attempts: 1,
            },
            TraceEvent::BatchStart {
                slot: 7,
                node: NodeId(0),
                msg,
                round: 1,
                batch: vec![NodeId(1), NodeId(2)],
            },
            TraceEvent::PollSent {
                slot: 7,
                node: NodeId(0),
                msg,
                kind: FrameKind::Rak,
                target: NodeId(1),
            },
            TraceEvent::AckMissed {
                slot: 9,
                node: NodeId(0),
                msg,
                target: NodeId(2),
            },
            TraceEvent::BatchEnd {
                slot: 9,
                node: NodeId(0),
                msg,
                round: 1,
                batch: vec![NodeId(1), NodeId(2)],
                acked: vec![NodeId(1)],
            },
            TraceEvent::CoverSetComputed {
                slot: 10,
                node: NodeId(0),
                msg,
                full: vec![NodeId(1), NodeId(2)],
                cover: vec![NodeId(1)],
            },
            TraceEvent::Retry {
                slot: 11,
                node: NodeId(0),
                msg,
                round: 2,
            },
            TraceEvent::GiveUp {
                slot: 11,
                node: NodeId(0),
                msg,
                dst: NodeId(2),
                after_retries: 7,
            },
            TraceEvent::NavDefer {
                slot: 11,
                node: NodeId(4),
                msg,
                until: 20,
            },
        ] {
            tr.push(ev);
        }
        let jsonl = tr.to_jsonl();
        assert_eq!(jsonl.lines().count(), tr.events().len());
        let parsed = Trace::from_jsonl(&jsonl).expect("parses back");
        assert_eq!(parsed.events(), tr.events());
        // write_jsonl produces the same bytes as to_jsonl.
        let mut buf = Vec::new();
        tr.write_jsonl(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), jsonl);
        // Blank lines are tolerated; garbage is not.
        let padded = format!("\n{jsonl}\n\n");
        assert_eq!(Trace::from_jsonl(&padded).unwrap().events(), tr.events());
        assert!(Trace::from_jsonl("not json\n").is_err());
    }
}
