//! MAC frames.
//!
//! The paper deliberately reuses the IEEE 802.11 control frame formats
//! (RTS, CTS, ACK) and adds one new type, **RAK** (*Request for ACK*),
//! with the same format as ACK: frame control, Duration, receiver address
//! and FCS. We model exactly the fields the protocols read: kind,
//! transmitter, receiver address(es), the Duration/NAV field (in slots)
//! and the message id. Airtime is expressed in slots (control = 1 slot,
//! data = 5 slots in the paper's simulation).

use crate::ids::{MsgId, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The frame types used by the protocol suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Request To Send.
    Rts,
    /// Clear To Send.
    Cts,
    /// Data frame (payload).
    Data,
    /// Acknowledgement.
    Ack,
    /// Request for ACK — the control frame BMMM introduces to serialize
    /// receiver acknowledgements (same format as ACK).
    Rak,
    /// Negative acknowledgement (BSMA only).
    Nak,
}

impl FrameKind {
    /// Every frame kind, in declaration order (indexable via
    /// [`FrameKind::index`]).
    pub const ALL: [FrameKind; 6] = [
        FrameKind::Rts,
        FrameKind::Cts,
        FrameKind::Data,
        FrameKind::Ack,
        FrameKind::Rak,
        FrameKind::Nak,
    ];

    /// Whether this is a control frame (everything except `Data`).
    #[inline]
    pub fn is_control(self) -> bool {
        !matches!(self, FrameKind::Data)
    }

    /// Position of this kind in [`FrameKind::ALL`] — a dense index for
    /// per-kind accounting arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FrameKind::Rts => 0,
            FrameKind::Cts => 1,
            FrameKind::Data => 2,
            FrameKind::Ack => 3,
            FrameKind::Rak => 4,
            FrameKind::Nak => 5,
        }
    }
}

/// Receiver address of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dest {
    /// A single addressed station (RA field).
    Node(NodeId),
    /// A multicast group (shared so group frames stay cheap to clone).
    Group(Arc<[NodeId]>),
}

impl Dest {
    /// Builds a group destination from a vector of receivers.
    pub fn group(receivers: Vec<NodeId>) -> Self {
        Dest::Group(receivers.into())
    }

    /// Whether `node` is an addressed receiver of this frame.
    pub fn addresses(&self, node: NodeId) -> bool {
        match self {
            Dest::Node(n) => *n == node,
            Dest::Group(g) => g.contains(&node),
        }
    }

    /// The single addressed node, if unicast-addressed.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Dest::Node(n) => Some(*n),
            Dest::Group(_) => None,
        }
    }
}

/// Protocol-specific extra frame content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameInfo {
    /// No extra content.
    None,
    /// BMW CTS: `have = true` suppresses the data transmission because the
    /// receiver already holds every frame up to the advertised sequence.
    BmwCts {
        /// Receiver already has the message.
        have: bool,
    },
}

/// A MAC frame on the air.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// Transmitting station (TA).
    pub src: NodeId,
    /// Receiver address(es) (RA).
    pub dest: Dest,
    /// 802.11 Duration field: slots of NAV the frame reserves *after* its
    /// own airtime. Overhearing stations yield this long.
    pub duration: u32,
    /// The message this frame belongs to.
    pub msg: MsgId,
    /// Airtime in slots (control frames take 1 slot, data 5 by default).
    pub slots: u32,
    /// Protocol-specific payload.
    pub info: FrameInfo,
}

impl Frame {
    /// Convenience constructor for a 1-slot control frame.
    pub fn control(kind: FrameKind, src: NodeId, dest: Dest, duration: u32, msg: MsgId) -> Self {
        debug_assert!(kind.is_control());
        Frame {
            kind,
            src,
            dest,
            duration,
            msg,
            slots: 1,
            info: FrameInfo::None,
        }
    }

    /// Convenience constructor for a data frame of `slots` airtime.
    pub fn data(src: NodeId, dest: Dest, duration: u32, msg: MsgId, slots: u32) -> Self {
        Frame {
            kind: FrameKind::Data,
            src,
            dest,
            duration,
            msg,
            slots,
            info: FrameInfo::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: u32) -> NodeId {
        NodeId(n)
    }

    #[test]
    fn control_frames_are_one_slot() {
        let f = Frame::control(
            FrameKind::Rts,
            nid(0),
            Dest::Node(nid(1)),
            9,
            MsgId::new(nid(0), 0),
        );
        assert_eq!(f.slots, 1);
        assert!(f.kind.is_control());
    }

    #[test]
    fn data_frames_are_not_control() {
        assert!(!FrameKind::Data.is_control());
        for k in [
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Ack,
            FrameKind::Rak,
            FrameKind::Nak,
        ] {
            assert!(k.is_control());
        }
    }

    #[test]
    fn dest_node_addresses_only_that_node() {
        let d = Dest::Node(nid(3));
        assert!(d.addresses(nid(3)));
        assert!(!d.addresses(nid(4)));
        assert_eq!(d.node(), Some(nid(3)));
    }

    #[test]
    fn dest_group_addresses_members() {
        let d = Dest::group(vec![nid(1), nid(2), nid(5)]);
        assert!(d.addresses(nid(1)));
        assert!(d.addresses(nid(5)));
        assert!(!d.addresses(nid(3)));
        assert_eq!(d.node(), None);
    }

    #[test]
    fn group_clone_is_shallow() {
        let d = Dest::group((0..64).map(nid).collect());
        let d2 = d.clone();
        match (&d, &d2) {
            (Dest::Group(a), Dest::Group(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn data_constructor_sets_airtime() {
        let f = Frame::data(
            nid(0),
            Dest::group(vec![nid(1)]),
            0,
            MsgId::new(nid(0), 7),
            5,
        );
        assert_eq!(f.slots, 5);
        assert_eq!(f.kind, FrameKind::Data);
    }
}
