//! Direct-sequence capture models.
//!
//! The Tang–Gerla protocols assume the radio can "capture" the strongest
//! of several colliding frames. The paper (citing Zorzi & Rao, IEEE JSAC
//! 1994) reports a capture probability of ≈0.55 for two competing nodes,
//! dropping to ≈0.3 at five and ≈0.2 beyond. We provide:
//!
//! * [`zorzi_rao_capture`] — a calibrated curve that passes through those
//!   published anchor points and is used both here and by the analytical
//!   model (Table 1 of the paper),
//! * [`Capture`] — the runtime selector: no capture, the calibrated curve,
//!   or a physically derived Rayleigh-fading model for ablations.

use serde::{Deserialize, Serialize};

/// Calibrated Zorzi–Rao capture probability for `k` simultaneous
/// equal-power control frames.
///
/// `C_1 = 1` (no contention), and for `k ≥ 2`:
/// `C_k = 0.2 + 0.35 / (k - 1)^0.9`, which reproduces the anchor values
/// the paper quotes: `C_2 = 0.55`, `C_5 ≈ 0.29`, `C_k → 0.2`. With this
/// curve the analytical Table 1 values match the paper (3.27 and 4.08
/// expected contention phases for BSMA at `q = 0.05`, `n = 5, 10`).
pub fn zorzi_rao_capture(k: usize) -> f64 {
    match k {
        0 => 0.0,
        1 => 1.0,
        k => 0.2 + 0.35 / ((k - 1) as f64).powf(0.9),
    }
}

/// Capture probability under Rayleigh fading: the strongest of `k`
/// same-cell signals must exceed the sum of the rest by the SIR threshold
/// `z0` (linear). This uses the classical result for i.i.d. exponential
/// received powers: the probability that one designated signal beats the
/// other `k-1` combined is `(1 + z0)^-(k-1)`; any of the `k` may win.
pub fn rayleigh_capture(k: usize, z0: f64) -> f64 {
    match k {
        0 => 0.0,
        1 => 1.0,
        k => (k as f64) * (1.0 + z0).powi(-((k - 1) as i32)),
    }
}

/// Runtime capture model selector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Capture {
    /// Collisions always destroy all frames involved.
    None,
    /// The calibrated Zorzi–Rao curve (the paper's simulation setting:
    /// "the probability of capturing a collided CTS frame was set
    /// according to \[23\]").
    #[default]
    ZorziRao,
    /// Rayleigh-fading capture with the given linear SIR threshold
    /// (10 dB ⇒ `z0 = 10.0`). Used by the capture ablation bench.
    Rayleigh {
        /// Linear SIR threshold required for capture.
        z0: f64,
    },
}

impl Capture {
    /// Probability that the strongest of `k` simultaneous equal-length
    /// control frames is successfully decoded.
    pub fn capture_prob(&self, k: usize) -> f64 {
        match self {
            Capture::None => {
                if k <= 1 {
                    1.0
                } else {
                    0.0
                }
            }
            Capture::ZorziRao => zorzi_rao_capture(k),
            Capture::Rayleigh { z0 } => rayleigh_capture(k, *z0).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zorzi_rao_anchor_points() {
        assert_eq!(zorzi_rao_capture(1), 1.0);
        assert!((zorzi_rao_capture(2) - 0.55).abs() < 1e-12);
        // Paper: "drops to 0.3 at the presence of 5 nodes".
        assert!((zorzi_rao_capture(5) - 0.3).abs() < 0.02);
        // "then further drops to 0.2".
        assert!((zorzi_rao_capture(50) - 0.2).abs() < 0.02);
    }

    #[test]
    fn zorzi_rao_is_monotone_decreasing() {
        for k in 1..40 {
            assert!(zorzi_rao_capture(k) >= zorzi_rao_capture(k + 1));
        }
    }

    #[test]
    fn zorzi_rao_is_a_probability() {
        for k in 0..100 {
            let c = zorzi_rao_capture(k);
            assert!((0.0..=1.0).contains(&c), "C_{k} = {c} out of range");
        }
    }

    #[test]
    fn rayleigh_two_signals_at_10db() {
        // 2 signals, z0 = 10: 2 / 11 ≈ 0.18.
        assert!((rayleigh_capture(2, 10.0) - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_decays_fast() {
        assert!(rayleigh_capture(5, 10.0) < 0.001);
    }

    #[test]
    fn capture_none_only_passes_singletons() {
        assert_eq!(Capture::None.capture_prob(1), 1.0);
        assert_eq!(Capture::None.capture_prob(2), 0.0);
        assert_eq!(Capture::None.capture_prob(7), 0.0);
    }

    #[test]
    fn capture_selector_matches_curves() {
        assert_eq!(Capture::ZorziRao.capture_prob(3), zorzi_rao_capture(3));
        assert_eq!(
            Capture::Rayleigh { z0: 10.0 }.capture_prob(2),
            rayleigh_capture(2, 10.0)
        );
    }

    #[test]
    fn default_is_zorzi_rao() {
        assert_eq!(Capture::default(), Capture::ZorziRao);
    }
}
