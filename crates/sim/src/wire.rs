//! IEEE 802.11 wire formats for the control and data frames the
//! protocols exchange.
//!
//! A key design point of the paper is that BMMM/LAMM need **no new frame
//! formats**: RTS, CTS, ACK and DATA are the 1997-spec formats, and the
//! new RAK frame (paper Figure 1) reuses the ACK format — frame control,
//! Duration, receiver address (RA), FCS. That is what lets the reliable
//! multicast MAC co-exist with stock 802.11 stations. This module makes
//! the claim concrete: it encodes and decodes the exact octet layouts,
//! including a real CRC-32 frame check sequence.
//!
//! The simulator itself runs on the abstract [`Frame`]
//! representation (slot-denominated airtime); this codec is the bridge to
//! byte-level tooling and is exercised by round-trip and corruption
//! tests. Group membership (which stations a multicast RA refers to) is
//! upper-layer state in 802.11, so encoding a group-addressed frame
//! yields a multicast RA derived from the message id, not the member
//! list.

use crate::frame::{Dest, Frame, FrameKind};
use crate::ids::{MsgId, NodeId};
use bytes::{Buf, BufMut, BytesMut};

/// A 48-bit IEEE MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The locally-administered unicast address of a station:
    /// `02:52:4D:4D:hh:ll` ("RM M" OUI-ish tag + the 16-bit station id).
    pub fn from_node(node: NodeId) -> MacAddr {
        let id = node.0;
        MacAddr([0x02, 0x52, 0x4D, 0x4D, (id >> 8) as u8, id as u8])
    }

    /// A multicast (group) address derived from a message id:
    /// `01:52:4D:4D:hh:ll` with the low 16 bits of a mix of source and
    /// sequence. Group membership itself is upper-layer state.
    pub fn group(msg: MsgId) -> MacAddr {
        let mix = msg.src.0.wrapping_mul(0x9e37).wrapping_add(msg.seq);
        MacAddr([0x01, 0x52, 0x4D, 0x4D, (mix >> 8) as u8, mix as u8])
    }

    /// Whether the group (multicast) bit is set.
    pub fn is_group(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// The station id encoded in a unicast address, if recognizable.
    pub fn node(&self) -> Option<NodeId> {
        if self.0[0] == 0x02 && self.0[1..4] == [0x52, 0x4D, 0x4D] {
            Some(NodeId((u32::from(self.0[4]) << 8) | u32::from(self.0[5])))
        } else {
            None
        }
    }
}

/// 802.11 frame type field (2 bits).
const TYPE_CONTROL: u8 = 0b01;
const TYPE_DATA: u8 = 0b10;

/// Control subtypes (1997 spec), plus the two reserved subtypes this
/// protocol suite assigns: RAK (the paper's new frame) and NAK (BSMA).
const SUBTYPE_RTS: u8 = 0b1011;
const SUBTYPE_CTS: u8 = 0b1100;
const SUBTYPE_ACK: u8 = 0b1101;
/// Reserved control subtype adopted for the paper's RAK frame.
const SUBTYPE_RAK: u8 = 0b0111;
/// Reserved control subtype adopted for BSMA's NAK frame.
const SUBTYPE_NAK: u8 = 0b0110;
const SUBTYPE_DATA: u8 = 0b0000;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer octets than the smallest valid frame.
    Truncated,
    /// FCS mismatch: the frame was corrupted in flight.
    BadFcs,
    /// Unknown type/subtype combination.
    UnknownType(u8, u8),
    /// Protocol version bits were not zero.
    BadVersion(u8),
}

/// A decoded 802.11 frame header (the fields the MAC reads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Duration field in microseconds.
    pub duration_us: u16,
    /// Receiver address.
    pub ra: MacAddr,
    /// Transmitter address (present in RTS and DATA).
    pub ta: Option<MacAddr>,
    /// Sequence number (DATA frames; carries the MsgId sequence, which
    /// BMW's receive-buffer logic reads).
    pub seq: Option<u16>,
    /// Payload length in octets (DATA frames).
    pub body_len: usize,
}

/// IEEE CRC-32 (as used for the 802.11 FCS), bitwise reflected
/// implementation — small and dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn frame_control(kind: FrameKind) -> [u8; 2] {
    let (typ, subtype) = match kind {
        FrameKind::Rts => (TYPE_CONTROL, SUBTYPE_RTS),
        FrameKind::Cts => (TYPE_CONTROL, SUBTYPE_CTS),
        FrameKind::Ack => (TYPE_CONTROL, SUBTYPE_ACK),
        FrameKind::Rak => (TYPE_CONTROL, SUBTYPE_RAK),
        FrameKind::Nak => (TYPE_CONTROL, SUBTYPE_NAK),
        FrameKind::Data => (TYPE_DATA, SUBTYPE_DATA),
    };
    // version (2 bits) | type (2 bits) | subtype (4 bits), then flags.
    [(subtype << 4) | (typ << 2), 0x00]
}

fn kind_of(fc0: u8) -> Result<FrameKind, WireError> {
    let version = fc0 & 0b11;
    if version != 0 {
        return Err(WireError::BadVersion(version));
    }
    let typ = (fc0 >> 2) & 0b11;
    let subtype = fc0 >> 4;
    match (typ, subtype) {
        (TYPE_CONTROL, SUBTYPE_RTS) => Ok(FrameKind::Rts),
        (TYPE_CONTROL, SUBTYPE_CTS) => Ok(FrameKind::Cts),
        (TYPE_CONTROL, SUBTYPE_ACK) => Ok(FrameKind::Ack),
        (TYPE_CONTROL, SUBTYPE_RAK) => Ok(FrameKind::Rak),
        (TYPE_CONTROL, SUBTYPE_NAK) => Ok(FrameKind::Nak),
        (TYPE_DATA, SUBTYPE_DATA) => Ok(FrameKind::Data),
        (t, s) => Err(WireError::UnknownType(t, s)),
    }
}

/// Receiver address of an abstract frame.
fn ra_of(frame: &Frame) -> MacAddr {
    match &frame.dest {
        Dest::Node(n) => MacAddr::from_node(*n),
        Dest::Group(_) => MacAddr::group(frame.msg),
    }
}

/// Encodes an abstract simulator [`Frame`] into its 802.11 octets.
///
/// * RTS: FC(2) Dur(2) RA(6) TA(6) FCS(4) = 20 octets.
/// * CTS/ACK/RAK/NAK: FC(2) Dur(2) RA(6) FCS(4) = 14 octets.
/// * DATA: FC(2) Dur(2) RA(6) TA(6) BSSID(6) SeqCtl(2) body FCS(4).
///
/// `us_per_slot` converts the slot-denominated Duration into the
/// microsecond field the spec carries (50 µs for FHSS);
/// `body_per_data_slot` sizes the payload of data frames.
pub fn encode(frame: &Frame, us_per_slot: f64, body_per_data_slot: usize) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_slice(&frame_control(frame.kind));
    let duration_us = (f64::from(frame.duration) * us_per_slot).round() as u16;
    buf.put_u16_le(duration_us);
    buf.put_slice(&ra_of(frame).0);
    match frame.kind {
        FrameKind::Rts => {
            buf.put_slice(&MacAddr::from_node(frame.src).0);
        }
        FrameKind::Cts | FrameKind::Ack | FrameKind::Rak | FrameKind::Nak => {}
        FrameKind::Data => {
            buf.put_slice(&MacAddr::from_node(frame.src).0);
            // BSSID: the ad hoc cell id; we use the broadcast BSSID.
            buf.put_slice(&[0xFF; 6]);
            // Sequence control: the per-station sequence number << 4
            // (fragment number 0).
            buf.put_u16_le((frame.msg.seq as u16) << 4);
            let body = frame.slots as usize * body_per_data_slot;
            buf.put_bytes(0xA5, body);
        }
    }
    let fcs = crc32(&buf);
    buf.put_u32_le(fcs);
    buf.to_vec()
}

/// Decodes 802.11 octets back into a [`WireFrame`], verifying the FCS.
///
/// ```
/// use rmm_sim::{decode_frame, encode_frame, Dest, Frame, FrameKind, MsgId, NodeId};
/// // The paper's RAK frame reuses the 14-octet ACK layout.
/// let rak = Frame::control(
///     FrameKind::Rak,
///     NodeId(0),
///     Dest::Node(NodeId(1)),
///     3,
///     MsgId::new(NodeId(0), 0),
/// );
/// let octets = encode_frame(&rak, 50.0, 0);
/// assert_eq!(octets.len(), 14);
/// let wire = decode_frame(&octets).unwrap();
/// assert_eq!(wire.kind, FrameKind::Rak);
/// assert_eq!(wire.duration_us, 150);
/// ```
pub fn decode(octets: &[u8]) -> Result<WireFrame, WireError> {
    if octets.len() < 14 {
        return Err(WireError::Truncated);
    }
    let (body, fcs_bytes) = octets.split_at(octets.len() - 4);
    let want = u32::from_le_bytes(fcs_bytes.try_into().expect("4 bytes"));
    if crc32(body) != want {
        return Err(WireError::BadFcs);
    }
    let mut buf = body;
    let fc0 = buf.get_u8();
    let _flags = buf.get_u8();
    let kind = kind_of(fc0)?;
    let duration_us = buf.get_u16_le();
    let mut ra = [0u8; 6];
    buf.copy_to_slice(&mut ra);
    let ra = MacAddr(ra);
    let (ta, seq, body_len) = match kind {
        FrameKind::Rts => {
            if buf.remaining() < 6 {
                return Err(WireError::Truncated);
            }
            let mut ta = [0u8; 6];
            buf.copy_to_slice(&mut ta);
            (Some(MacAddr(ta)), None, 0)
        }
        FrameKind::Data => {
            if buf.remaining() < 14 {
                return Err(WireError::Truncated);
            }
            let mut ta = [0u8; 6];
            buf.copy_to_slice(&mut ta);
            let mut _bssid = [0u8; 6];
            buf.copy_to_slice(&mut _bssid);
            let seq_ctl = buf.get_u16_le();
            (Some(MacAddr(ta)), Some(seq_ctl >> 4), buf.remaining())
        }
        _ => (None, None, 0),
    };
    Ok(WireFrame {
        kind,
        duration_us,
        ra,
        ta,
        seq,
        body_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Dest;

    fn nid(n: u32) -> NodeId {
        NodeId(n)
    }

    fn mid(n: u32, s: u32) -> MsgId {
        MsgId::new(nid(n), s)
    }

    const US: f64 = 50.0; // FHSS slot time

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
    }

    #[test]
    fn rts_is_twenty_octets() {
        let f = Frame::control(FrameKind::Rts, nid(1), Dest::Node(nid(2)), 7, mid(1, 0));
        assert_eq!(encode(&f, US, 0).len(), 20);
    }

    #[test]
    fn cts_ack_rak_nak_are_fourteen_octets() {
        for kind in [
            FrameKind::Cts,
            FrameKind::Ack,
            FrameKind::Rak,
            FrameKind::Nak,
        ] {
            let f = Frame::control(kind, nid(1), Dest::Node(nid(2)), 3, mid(1, 0));
            assert_eq!(encode(&f, US, 0).len(), 14, "{kind:?}");
        }
    }

    #[test]
    fn rak_format_equals_ack_format() {
        // Paper Figure 1: the RAK frame has the same format as ACK —
        // identical length and layout, only the subtype differs.
        let rak = Frame::control(FrameKind::Rak, nid(1), Dest::Node(nid(2)), 3, mid(1, 0));
        let ack = Frame::control(FrameKind::Ack, nid(1), Dest::Node(nid(2)), 3, mid(1, 0));
        let rak_b = encode(&rak, US, 0);
        let ack_b = encode(&ack, US, 0);
        assert_eq!(rak_b.len(), ack_b.len());
        // Everything except the frame-control octet and the FCS agrees.
        assert_eq!(rak_b[1..10], ack_b[1..10]);
        assert_ne!(rak_b[0], ack_b[0]);
    }

    #[test]
    fn control_roundtrip() {
        for kind in [
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Ack,
            FrameKind::Rak,
            FrameKind::Nak,
        ] {
            let f = Frame::control(kind, nid(7), Dest::Node(nid(9)), 13, mid(7, 5));
            let w = decode(&encode(&f, US, 0)).unwrap();
            assert_eq!(w.kind, kind);
            assert_eq!(w.duration_us, 13 * 50);
            assert_eq!(w.ra.node(), Some(nid(9)));
            if kind == FrameKind::Rts {
                assert_eq!(w.ta.unwrap().node(), Some(nid(7)));
            } else {
                assert_eq!(w.ta, None);
            }
        }
    }

    #[test]
    fn data_roundtrip_carries_sequence_and_body() {
        let f = Frame::data(nid(3), Dest::Node(nid(4)), 2, mid(3, 41), 5);
        let octets = encode(&f, US, 200);
        let w = decode(&octets).unwrap();
        assert_eq!(w.kind, FrameKind::Data);
        assert_eq!(w.seq, Some(41));
        assert_eq!(w.body_len, 1000);
        assert_eq!(w.ta.unwrap().node(), Some(nid(3)));
        assert_eq!(w.ra.node(), Some(nid(4)));
    }

    #[test]
    fn group_frames_get_multicast_ra() {
        let f = Frame::data(nid(3), Dest::group(vec![nid(4), nid(5)]), 0, mid(3, 1), 5);
        let w = decode(&encode(&f, US, 100)).unwrap();
        assert!(w.ra.is_group());
        assert_eq!(w.ra.node(), None);
    }

    #[test]
    fn corrupted_fcs_is_rejected() {
        let f = Frame::control(FrameKind::Cts, nid(1), Dest::Node(nid(2)), 3, mid(1, 0));
        let mut octets = encode(&f, US, 0);
        // Flip one payload bit.
        octets[5] ^= 0x10;
        assert_eq!(decode(&octets), Err(WireError::BadFcs));
    }

    #[test]
    fn corrupted_fcs_field_is_rejected() {
        let f = Frame::control(FrameKind::Ack, nid(1), Dest::Node(nid(2)), 3, mid(1, 0));
        let mut octets = encode(&f, US, 0);
        let last = octets.len() - 1;
        octets[last] ^= 0xFF;
        assert_eq!(decode(&octets), Err(WireError::BadFcs));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert_eq!(decode(&[0u8; 5]), Err(WireError::Truncated));
        assert_eq!(decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn nonzero_version_is_rejected() {
        let f = Frame::control(FrameKind::Cts, nid(1), Dest::Node(nid(2)), 3, mid(1, 0));
        let mut octets = encode(&f, US, 0);
        octets[0] |= 0b01; // set a version bit
                           // Recompute the FCS so only the version check can fire.
        let n = octets.len();
        let fcs = crc32(&octets[..n - 4]);
        octets[n - 4..].copy_from_slice(&fcs.to_le_bytes());
        assert!(matches!(decode(&octets), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn mac_addr_node_roundtrip() {
        for id in [0u32, 1, 255, 65_535] {
            assert_eq!(MacAddr::from_node(nid(id)).node(), Some(nid(id)));
        }
        assert!(!MacAddr::from_node(nid(3)).is_group());
        assert!(MacAddr::group(mid(1, 2)).is_group());
    }

    #[test]
    fn distinct_messages_get_distinct_group_addresses() {
        let a = MacAddr::group(mid(1, 0));
        let b = MacAddr::group(mid(1, 1));
        let c = MacAddr::group(mid(2, 0));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
