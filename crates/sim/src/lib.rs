//! Slotted discrete-event wireless LAN simulator.
//!
//! This crate is the substrate the paper's evaluation runs on: the authors
//! "developed \[their\] own wireless LAN simulator" with slotted time where
//! "the event (e.g., message sending and receiving) happens at the
//! beginning of a slot". We reproduce that model:
//!
//! * time advances in integer [`Slot`]s,
//! * stations are half-duplex disk radios with a shared transmission
//!   radius (`R = 0.2` in a unit square by default),
//! * a frame is decoded at a receiver iff the receiver is in range, not
//!   itself transmitting, and no other audible transmission overlaps the
//!   frame — unless the *direct-sequence capture* model rescues one frame
//!   of a control-frame pile-up ([`capture`]),
//! * carrier sense reports the channel state of the *previous* slot, so
//!   two stations that start in the same slot collide (classic slotted
//!   CSMA behaviour).
//!
//! MAC protocols implement the [`Station`] trait (see the `rmm-mac`
//! crate); the [`Engine`] drives all stations one slot at a time and
//! resolves the channel.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod channel;
pub mod engine;
pub mod fault;
pub mod frame;
pub mod ids;
pub mod ledger;
pub mod topology;
pub mod trace;
pub mod wire;

pub use capture::{zorzi_rao_capture, Capture};
pub use channel::{Channel, Reception, Transmission};
pub use engine::{Ctx, Engine, Station};
pub use fault::{BurstChain, FaultKind, FaultPlan, GilbertElliott, NodeFault, SpecError};
pub use frame::{Dest, Frame, FrameInfo, FrameKind};
pub use ids::{BuildIdHasher, IdHasher, MsgId, MsgSet, NodeId, Slot};
pub use ledger::{AirtimeBreakdown, AirtimeByKind, AirtimeLedger};
pub use topology::Topology;
pub use trace::{airtime_by_kind, max_idle_gap, tx_intervals_of, EventSink, Trace, TraceEvent};
pub use wire::{
    crc32, decode as decode_frame, encode as encode_frame, MacAddr, WireError, WireFrame,
};
