//! Per-slot channel airtime ledger.
//!
//! The [`Channel`](crate::Channel) stamps every transmission and every
//! collision into an [`AirtimeLedger`] as the run executes, so afterwards
//! each slot of the run can be classified exactly one way:
//!
//! * **idle** — no transmission occupied the slot,
//! * **collision** — at least one frame occupying the slot was destroyed
//!   by overlap at some receiver,
//! * **data** — a DATA frame occupied the slot and nothing collided,
//! * **control** — only control frames (RTS/CTS/ACK/RAK/NAK) occupied
//!   the slot, collision-free.
//!
//! The classification partitions the run (`idle + data + control +
//! collision == total_slots`, property-tested across every protocol),
//! which makes [`AirtimeBreakdown`] the single source of truth for the
//! paper's utilization/overhead axis: goodput airtime vs. the control
//! overhead each reliable-multicast scheme pays for it.
//!
//! Recording is a pure observation of what the channel already decided —
//! it draws no randomness and never perturbs dynamics, so enabling or
//! consulting the ledger cannot change a run.

use crate::frame::FrameKind;
use crate::ids::Slot;
use serde::{Deserialize, Serialize};

const CONTROL: u8 = 1;
const DATA: u8 = 2;
const COLLIDED: u8 = 4;

/// Accumulates per-slot occupancy flags and per-kind airtime while a run
/// executes. Owned by the [`Channel`](crate::Channel).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AirtimeLedger {
    /// One flag byte per absolute slot, grown on demand.
    flags: Vec<u8>,
    /// Total airtime (slots) transmitted per frame kind, indexed by
    /// [`FrameKind::index`]. Counts every frame's full airtime, even
    /// slots past the end of the run.
    kind_slots: [u64; 6],
}

impl AirtimeLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        AirtimeLedger::default()
    }

    #[inline]
    fn flag_range(&mut self, start: Slot, end: Slot, bit: u8) {
        let (start, end) = (start as usize, end as usize);
        if self.flags.len() < end {
            self.flags.resize(end, 0);
        }
        for f in &mut self.flags[start..end] {
            *f |= bit;
        }
    }

    /// Records a transmission of `kind` occupying slots `[start, end)`.
    pub fn mark_tx(&mut self, kind: FrameKind, start: Slot, end: Slot) {
        self.kind_slots[kind.index()] += end - start;
        self.flag_range(start, end, if kind.is_control() { CONTROL } else { DATA });
    }

    /// Records that a frame occupying `[start, end)` was involved in a
    /// collision at some receiver. Idempotent — re-marking the same
    /// interval (the same frame colliding at several receivers, or both
    /// parties of a pile-up) changes nothing.
    pub fn mark_collided(&mut self, start: Slot, end: Slot) {
        self.flag_range(start, end, COLLIDED);
    }

    /// Total airtime transmitted per frame kind, in [`FrameKind::ALL`]
    /// order. Unclamped: a frame still on the air when the run ends
    /// contributes its full length.
    pub fn kind_slots(&self) -> [u64; 6] {
        self.kind_slots
    }

    /// Classifies the first `total_slots` slots of the run. Slots flagged
    /// beyond `total_slots` (frames cut off by the end of the run) are
    /// ignored so the partition always sums to `total_slots`.
    pub fn breakdown(&self, total_slots: Slot) -> AirtimeBreakdown {
        let mut b = AirtimeBreakdown {
            total_slots,
            by_kind: AirtimeByKind {
                rts: self.kind_slots[FrameKind::Rts.index()],
                cts: self.kind_slots[FrameKind::Cts.index()],
                data: self.kind_slots[FrameKind::Data.index()],
                ack: self.kind_slots[FrameKind::Ack.index()],
                rak: self.kind_slots[FrameKind::Rak.index()],
                nak: self.kind_slots[FrameKind::Nak.index()],
            },
            ..AirtimeBreakdown::default()
        };
        let horizon = (total_slots as usize).min(self.flags.len());
        for &f in &self.flags[..horizon] {
            if f == 0 {
                b.idle_slots += 1;
            } else if f & COLLIDED != 0 {
                b.collision_slots += 1;
            } else if f & DATA != 0 {
                b.data_slots += 1;
            } else {
                b.control_slots += 1;
            }
        }
        // Slots past the flagged range are idle by definition.
        b.idle_slots += total_slots - horizon as Slot;
        b
    }
}

/// Per-kind transmitted airtime, in slots (unclamped — includes airtime
/// past the end of the run for frames cut off by it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AirtimeByKind {
    /// RTS airtime.
    pub rts: u64,
    /// CTS airtime.
    pub cts: u64,
    /// DATA airtime.
    pub data: u64,
    /// ACK airtime.
    pub ack: u64,
    /// RAK airtime.
    pub rak: u64,
    /// NAK airtime.
    pub nak: u64,
}

impl AirtimeByKind {
    /// Control airtime: everything except DATA.
    pub fn control(&self) -> u64 {
        self.rts + self.cts + self.ack + self.rak + self.nak
    }

    /// Total transmitted airtime across all kinds.
    pub fn total(&self) -> u64 {
        self.control() + self.data
    }
}

/// Exact per-slot classification of one run's channel time.
///
/// `idle_slots + data_slots + control_slots + collision_slots` always
/// equals `total_slots`; `data_slots + control_slots + collision_slots`
/// equals the channel's `busy_slots` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AirtimeBreakdown {
    /// Slots the run simulated.
    pub total_slots: Slot,
    /// Slots with nothing on the air anywhere in the network.
    pub idle_slots: u64,
    /// Collision-free slots occupied by at least one DATA frame.
    pub data_slots: u64,
    /// Collision-free slots occupied only by control frames.
    pub control_slots: u64,
    /// Slots occupied by at least one frame that a collision destroyed.
    pub collision_slots: u64,
    /// Transmitted airtime per frame kind (unclamped).
    pub by_kind: AirtimeByKind,
}

impl AirtimeBreakdown {
    /// Slots with anything on the air: the complement of idle.
    pub fn busy_slots(&self) -> u64 {
        self.data_slots + self.control_slots + self.collision_slots
    }

    /// Fraction of the run carrying collision-free DATA airtime — the
    /// goodput side of the paper's overhead comparison.
    pub fn utilization(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        self.data_slots as f64 / self.total_slots as f64
    }

    /// Fraction of *busy* airtime spent on collision-free control frames
    /// (RTS/CTS/RAK/poll/ACK trains) — the protocol's overhead price.
    pub fn control_overhead_fraction(&self) -> f64 {
        let busy = self.busy_slots();
        if busy == 0 {
            return 0.0;
        }
        self.control_slots as f64 / busy as f64
    }

    /// Fraction of busy airtime destroyed by collisions.
    pub fn collision_fraction(&self) -> f64 {
        let busy = self.busy_slots();
        if busy == 0 {
            return 0.0;
        }
        self.collision_slots as f64 / busy as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exact() {
        let mut l = AirtimeLedger::new();
        l.mark_tx(FrameKind::Rts, 0, 1);
        l.mark_tx(FrameKind::Data, 3, 8);
        l.mark_tx(FrameKind::Ack, 9, 10);
        l.mark_collided(9, 10);
        let b = l.breakdown(20);
        assert_eq!(b.total_slots, 20);
        assert_eq!(b.control_slots, 1);
        assert_eq!(b.data_slots, 5);
        assert_eq!(b.collision_slots, 1);
        assert_eq!(b.idle_slots, 13);
        assert_eq!(
            b.idle_slots + b.data_slots + b.control_slots + b.collision_slots,
            b.total_slots
        );
        assert_eq!(b.busy_slots(), 7);
    }

    #[test]
    fn collision_outranks_data_outranks_control() {
        let mut l = AirtimeLedger::new();
        // Control and data share slot 2 (spatial reuse, no collision).
        l.mark_tx(FrameKind::Cts, 2, 3);
        l.mark_tx(FrameKind::Data, 0, 5);
        // Slot 4 additionally carries a collided frame.
        l.mark_collided(4, 5);
        let b = l.breakdown(5);
        assert_eq!(b.data_slots, 4, "data wins the shared slot");
        assert_eq!(b.control_slots, 0);
        assert_eq!(b.collision_slots, 1);
        assert_eq!(b.idle_slots, 0);
    }

    #[test]
    fn breakdown_clamps_to_run_end_but_kind_slots_do_not() {
        let mut l = AirtimeLedger::new();
        l.mark_tx(FrameKind::Data, 8, 13); // runs past the 10-slot run
        let b = l.breakdown(10);
        assert_eq!(b.data_slots, 2);
        assert_eq!(b.idle_slots, 8);
        assert_eq!(b.by_kind.data, 5, "per-kind airtime stays unclamped");
        assert_eq!(b.by_kind.total(), 5);
    }

    #[test]
    fn mark_collided_is_idempotent() {
        let mut l = AirtimeLedger::new();
        l.mark_tx(FrameKind::Rts, 0, 1);
        l.mark_collided(0, 1);
        l.mark_collided(0, 1);
        let b = l.breakdown(1);
        assert_eq!(b.collision_slots, 1);
        assert_eq!(b.busy_slots(), 1);
    }

    #[test]
    fn empty_ledger_is_all_idle() {
        let b = AirtimeLedger::new().breakdown(7);
        assert_eq!(b.idle_slots, 7);
        assert_eq!(b.busy_slots(), 0);
        assert_eq!(b.utilization(), 0.0);
        assert_eq!(b.control_overhead_fraction(), 0.0);
        assert_eq!(b.collision_fraction(), 0.0);
    }

    #[test]
    fn fractions_reference_the_right_denominators() {
        let mut l = AirtimeLedger::new();
        l.mark_tx(FrameKind::Data, 0, 5);
        l.mark_tx(FrameKind::Rts, 6, 7);
        l.mark_tx(FrameKind::Cts, 8, 9);
        l.mark_tx(FrameKind::Rts, 9, 10);
        l.mark_collided(9, 10);
        let b = l.breakdown(10);
        // busy = 5 data + 2 control + 1 collision = 8.
        assert!((b.utilization() - 0.5).abs() < 1e-12);
        assert!((b.control_overhead_fraction() - 2.0 / 8.0).abs() < 1e-12);
        assert!((b.collision_fraction() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_round_trips_through_json() {
        let mut l = AirtimeLedger::new();
        l.mark_tx(FrameKind::Rak, 0, 1);
        let b = l.breakdown(4);
        let json = serde_json::to_string(&b).unwrap();
        let back: AirtimeBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.by_kind.rak, 1);
        assert_eq!(back.by_kind.control(), 1);
    }
}
