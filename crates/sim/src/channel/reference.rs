//! Naive full-rescan reference implementation of the channel.
//!
//! This is the pre-optimization algorithm kept verbatim: a flat
//! transmission list scanned per ended frame and per receiver. It is the
//! differential oracle for the incremental bookkeeping in [`Channel`] —
//! [`Channel::enable_crosscheck`] shadows every launch and resolution
//! against it, and the channel proptests drive both implementations with
//! cloned RNGs and assert byte-identical outcomes.
//!
//! Being the oracle, this module trades speed for obviousness on purpose:
//! keep it dumb.
//!
//! [`Channel`]: super::Channel
//! [`Channel::enable_crosscheck`]: super::Channel::enable_crosscheck

use super::{BurstState, CollisionEvent, Reception, SlotOutcome, Transmission};
use crate::capture::Capture;
use crate::fault::GilbertElliott;
use crate::frame::Frame;
use crate::ids::{NodeId, Slot};
use crate::ledger::AirtimeLedger;
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The shared radio medium, resolved by exhaustive rescans.
#[derive(Debug)]
pub struct ReferenceChannel {
    transmissions: Vec<Transmission>,
    capture: Capture,
    max_len: u32,
    latest_end: Slot,
    ledger: AirtimeLedger,
    fer: f64,
    burst: Option<BurstState>,
    /// Count of frame receptions destroyed by the burst-error channel.
    pub burst_errors_total: u64,
}

impl ReferenceChannel {
    /// Creates an idle reference channel with the given capture model.
    pub fn new(capture: Capture) -> Self {
        ReferenceChannel {
            transmissions: Vec::new(),
            capture,
            max_len: 1,
            latest_end: 0,
            ledger: AirtimeLedger::new(),
            fer: 0.0,
            burst: None,
            burst_errors_total: 0,
        }
    }

    /// Sets the independent per-reception frame error rate.
    pub fn set_fer(&mut self, fer: f64) {
        assert!(
            (0.0..1.0).contains(&fer),
            "frame error rate must be in [0, 1)"
        );
        self.fer = fer;
    }

    /// Enables the Gilbert–Elliott burst-error channel with its own
    /// seeded RNG stream.
    pub fn set_burst(&mut self, model: GilbertElliott, seed: u64) {
        let model = GilbertElliott::new(model.p, model.r);
        self.burst = Some(BurstState {
            model,
            rng: SmallRng::seed_from_u64(seed),
            chains: Vec::new(),
        });
    }

    /// Adopts a snapshot of the fast channel's burst state so both sides
    /// continue the same chain/RNG trajectories (crosscheck plumbing).
    pub(super) fn mirror_burst(&mut self, burst: Option<BurstState>) {
        self.burst = burst;
    }

    /// Starts a transmission at slot `now`.
    pub fn begin_tx(&mut self, frame: Frame, now: Slot) {
        debug_assert!(
            !self
                .transmissions
                .iter()
                .any(|t| t.frame.src == frame.src && t.end > now),
            "station {} started a transmission while already transmitting",
            frame.src
        );
        let len = frame.slots.max(1);
        self.max_len = self.max_len.max(len);
        let end = now + Slot::from(len);
        self.latest_end = self.latest_end.max(end);
        self.ledger.mark_tx(frame.kind, now, end);
        self.transmissions.push(Transmission {
            frame: Arc::new(frame),
            start: now,
            end,
        });
    }

    /// The per-slot airtime ledger accumulated so far.
    pub fn ledger(&self) -> &AirtimeLedger {
        &self.ledger
    }

    /// Whether slot `slot` is dead air for every station.
    pub fn quiescent_at(&self, slot: Slot) -> bool {
        self.latest_end < slot
    }

    /// Whether the medium at `node` was busy during slot `now - 1`,
    /// by scanning every retained transmission.
    pub fn busy_prev_slot(&self, node: NodeId, now: Slot, topo: &Topology) -> bool {
        if now == 0 {
            return false;
        }
        let prev = now - 1;
        self.transmissions
            .iter()
            .any(|t| t.occupies(prev) && (t.frame.src == node || topo.in_range(node, t.frame.src)))
    }

    /// Whether `node` has a frame of its own on the air at slot `now`.
    pub fn is_transmitting(&self, node: NodeId, now: Slot) -> bool {
        self.transmissions
            .iter()
            .any(|t| t.frame.src == node && t.occupies(now))
    }

    /// Resolves all transmissions ending at slot `now` (convenience
    /// wrapper returning a fresh [`SlotOutcome`]).
    pub fn resolve_ended(&mut self, now: Slot, topo: &Topology, rng: &mut SmallRng) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        self.resolve_ended_into(now, topo, rng, &mut outcome);
        outcome
    }

    /// Wrapper used by the crosscheck: resolves into a fresh outcome and
    /// returns it for comparison.
    pub(super) fn resolve_shadow(
        &mut self,
        now: Slot,
        topo: &Topology,
        rng: &mut SmallRng,
    ) -> SlotOutcome {
        self.resolve_ended(now, topo, rng)
    }

    /// Resolves all transmissions whose airtime ends at slot `now` into
    /// `outcome`, scanning the full transmission list per receiver.
    pub fn resolve_ended_into(
        &mut self,
        now: Slot,
        topo: &Topology,
        rng: &mut SmallRng,
        outcome: &mut SlotOutcome,
    ) {
        outcome.clear();
        if self.quiescent_at(now) {
            return;
        }
        let ended: Vec<usize> = self
            .transmissions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.end == now)
            .map(|(i, _)| i)
            .collect();
        let mut interferers: Vec<usize> = Vec::new();
        let mut collided: Vec<(Slot, Slot)> = Vec::new();
        for &fi in &ended {
            let src = self.transmissions[fi].frame.src;
            for &r in topo.neighbors(src) {
                self.resolve_at_receiver(
                    fi,
                    r,
                    topo,
                    rng,
                    outcome,
                    &mut interferers,
                    &mut collided,
                );
            }
        }
        for &(s, e) in &collided {
            self.ledger.mark_collided(s, e);
        }
        if let Some(burst) = &mut self.burst {
            self.burst_errors_total += burst.apply(outcome);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_at_receiver(
        &self,
        fi: usize,
        receiver: NodeId,
        topo: &Topology,
        rng: &mut SmallRng,
        outcome: &mut SlotOutcome,
        interferers: &mut Vec<usize>,
        collided: &mut Vec<(Slot, Slot)>,
    ) {
        let f = &self.transmissions[fi];
        // Half-duplex: a station transmitting during the frame hears
        // nothing of it.
        if self
            .transmissions
            .iter()
            .any(|t| t.frame.src == receiver && t.overlaps(f))
        {
            return;
        }
        // Interferers: other transmissions audible at the receiver that
        // overlap this frame in time.
        interferers.clear();
        interferers.extend(self.transmissions.iter().enumerate().filter_map(|(ti, t)| {
            (ti != fi && t.overlaps(f) && topo.in_range(receiver, t.frame.src)).then_some(ti)
        }));
        if interferers.is_empty() {
            if self.fer > 0.0 && rng.random::<f64>() < self.fer {
                outcome.frame_errors.push(receiver);
                return;
            }
            outcome.receptions.push(Reception {
                receiver,
                frame: Arc::clone(&f.frame),
                captured: false,
            });
            return;
        }

        collided.push((f.start, f.end));
        for &ti in interferers.iter() {
            let t = &self.transmissions[ti];
            collided.push((t.start, t.end));
        }

        let synchronized = f.frame.kind.is_control()
            && interferers.iter().all(|&ti| {
                let t = &self.transmissions[ti];
                t.frame.kind.is_control() && t.start == f.start && t.end == f.end
            });

        let mut captured = None;
        if synchronized {
            let strongest = interferers
                .iter()
                .map(|&ti| self.transmissions[ti].frame.src)
                .chain(std::iter::once(f.frame.src))
                .min_by(|&a, &b| {
                    topo.distance(receiver, a)
                        .partial_cmp(&topo.distance(receiver, b))
                        .expect("distances are finite")
                        .then(a.cmp(&b))
                })
                .expect("at least one sender");
            if strongest == f.frame.src {
                let k = interferers.len() + 1;
                if rng.random::<f64>() < self.capture.capture_prob(k)
                    && (self.fer == 0.0 || rng.random::<f64>() >= self.fer)
                {
                    captured = Some(strongest);
                    outcome.receptions.push(Reception {
                        receiver,
                        frame: Arc::clone(&f.frame),
                        captured: true,
                    });
                }
                let mut senders: Vec<NodeId> = interferers
                    .iter()
                    .map(|&ti| self.transmissions[ti].frame.src)
                    .collect();
                senders.push(f.frame.src);
                senders.sort();
                outcome.collisions.push(CollisionEvent {
                    receiver,
                    senders,
                    captured,
                });
            }
        } else {
            let mut senders: Vec<NodeId> = interferers
                .iter()
                .map(|&ti| self.transmissions[ti].frame.src)
                .collect();
            senders.push(f.frame.src);
            senders.sort();
            outcome.collisions.push(CollisionEvent {
                receiver,
                senders,
                captured: None,
            });
        }
    }

    /// Drops transmissions that can no longer interfere with anything.
    pub fn prune(&mut self, now: Slot) {
        let max_len = Slot::from(self.max_len);
        self.transmissions.retain(|t| t.end + max_len > now);
    }

    /// Number of transmission records currently retained.
    pub fn records(&self) -> usize {
        self.transmissions.len()
    }

    /// Whether any transmission is on the air at slot `now`.
    pub fn any_active(&self, now: Slot) -> bool {
        self.transmissions.iter().any(|t| t.occupies(now))
    }
}
