//! Deterministic fault injection: scheduled per-node radio faults and
//! the Gilbert–Elliott burst-error channel.
//!
//! Both impairments are *additive* to the healthy simulation: a run with
//! an empty [`FaultPlan`] and no burst model configured draws from
//! exactly the same RNG streams as before and is bit-identical to a run
//! on a build without this module. Faults are pure predicates of
//! `(node, slot)` enforced by the engine (so the naive and event-horizon
//! steppers agree by construction), and the burst chain advances only on
//! reception attempts, from its own dedicated RNG stream.
//!
//! The one non-predicate fault is [`FaultKind::Reboot`]: the blackout
//! window is a pure predicate like the others, but when it ends the
//! engine cold-resets the station's MAC at the top of the recovery slot
//! (and the event-horizon stepper clamps its skip target to that slot),
//! so both steppers still agree by construction.

use crate::ids::{NodeId, Slot};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kind of an injected node fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node's radio dies at `from` and never recovers: nothing it
    /// sends reaches the air and it decodes nothing. `until` is ignored.
    Crash,
    /// Receive path dead during the window: the node decodes no frames.
    /// Carrier sense still works — deafness models a broken decoder (or
    /// persistent in-band interference), not a missing antenna.
    Deaf,
    /// Transmit path dead during the window: the node's frames are
    /// silently dropped before they reach the air. The node itself still
    /// believes it transmitted (a dead power amplifier is invisible to
    /// the MAC), so its counters and half-duplex bookkeeping advance.
    TxMute,
    /// Crash-with-recovery: the radio is fully dead (no rx, no tx)
    /// during `[from, until)`, and at `until` the station comes back
    /// with its MAC **cold-reset**. The engine performs the reset (via
    /// [`crate::Station::on_reset`]) at the top of slot `until`, before
    /// anything else happens in that slot, so the naive and
    /// event-horizon steppers agree by construction. `until` is
    /// mandatory — a reboot that never completes is a [`FaultKind::Crash`].
    Reboot,
}

impl FaultKind {
    fn tag(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Deaf => "deaf",
            FaultKind::TxMute => "mute",
            FaultKind::Reboot => "reboot",
        }
    }
}

/// One scheduled fault: `kind` afflicts `node` during `[from, until)`
/// (`until = None` means forever; `Crash` is always forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFault {
    /// Afflicted station.
    pub node: NodeId,
    /// What breaks.
    pub kind: FaultKind,
    /// First faulty slot.
    pub from: Slot,
    /// One past the last faulty slot; `None` = never recovers.
    pub until: Option<Slot>,
}

impl NodeFault {
    /// One past the last faulty slot, `None` meaning forever. `Crash`
    /// is forever by definition, whatever its `until` field says.
    fn end(&self) -> Option<Slot> {
        match self.kind {
            FaultKind::Crash => None,
            _ => self.until,
        }
    }

    fn active_at(&self, slot: Slot) -> bool {
        slot >= self.from && self.end().is_none_or(|u| slot < u)
    }

    /// Whether the fault is active anywhere in `[from, to)`.
    fn active_during(&self, from: Slot, to: Slot) -> bool {
        to > self.from && self.end().is_none_or(|u| from < u)
    }

    /// Whether two faults' active windows intersect.
    fn overlaps(&self, other: &NodeFault) -> bool {
        self.end().is_none_or(|u| other.from < u) && other.end().is_none_or(|u| self.from < u)
    }

    /// Renders this fault in the [`FaultPlan::parse`] entry syntax.
    fn entry_spec(&self) -> String {
        match (self.kind, self.until) {
            (FaultKind::Crash, _) | (_, None) => {
                format!("{}:{}@{}", self.kind.tag(), self.node.0, self.from)
            }
            (_, Some(u)) => format!("{}:{}@{}..{}", self.kind.tag(), self.node.0, self.from, u),
        }
    }
}

/// A [`FaultPlan::parse`] error, carrying the byte span of the
/// offending token within the original spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Byte offset of the offending token in the spec string.
    pub offset: usize,
    /// Byte length of the offending token (at least 1).
    pub len: usize,
    /// What went wrong.
    pub msg: String,
}

impl SpecError {
    /// Builds an error whose span is `token`, which must be a subslice
    /// of `spec` (as every token produced by a `split`-based parser is).
    /// Shared by the fault and churn spec parsers.
    pub fn at(spec: &str, token: &str, msg: impl Into<String>) -> SpecError {
        let offset = (token.as_ptr() as usize).saturating_sub(spec.as_ptr() as usize);
        SpecError {
            offset: offset.min(spec.len()),
            len: token.len().max(1),
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "at {}..{}: {}",
            self.offset,
            self.offset + self.len,
            self.msg
        )
    }
}

impl std::error::Error for SpecError {}

/// A deterministic schedule of node faults, applied by the engine.
///
/// The plan is a pure function of `(node, slot)`: it draws no randomness
/// at simulation time, so fast and naive stepping see identical fault
/// states, and an empty plan changes nothing at all.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<NodeFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a permanent crash of `node` starting at `at`.
    pub fn crash(mut self, node: NodeId, at: Slot) -> Self {
        self.faults.push(NodeFault {
            node,
            kind: FaultKind::Crash,
            from: at,
            until: None,
        });
        self
    }

    /// Adds a deafness window `[from, until)` for `node`.
    pub fn deaf(mut self, node: NodeId, from: Slot, until: Slot) -> Self {
        self.faults.push(NodeFault {
            node,
            kind: FaultKind::Deaf,
            from,
            until: Some(until),
        });
        self
    }

    /// Adds a TX-mute window `[from, until)` for `node`.
    pub fn mute(mut self, node: NodeId, from: Slot, until: Slot) -> Self {
        self.faults.push(NodeFault {
            node,
            kind: FaultKind::TxMute,
            from,
            until: Some(until),
        });
        self
    }

    /// Adds a reboot of `node`: radio fully dead during `[from, until)`,
    /// MAC cold-reset by the engine at `until`.
    pub fn reboot(mut self, node: NodeId, from: Slot, until: Slot) -> Self {
        assert!(until > from, "reboot window must be non-empty");
        self.faults.push(NodeFault {
            node,
            kind: FaultKind::Reboot,
            from,
            until: Some(until),
        });
        self
    }

    /// Whether `node` cannot decode frames at `slot` (crashed, deaf, or
    /// mid-reboot).
    pub fn blocks_rx(&self, node: NodeId, slot: Slot) -> bool {
        self.faults.iter().any(|f| {
            f.node == node
                && matches!(
                    f.kind,
                    FaultKind::Crash | FaultKind::Deaf | FaultKind::Reboot
                )
                && f.active_at(slot)
        })
    }

    /// Whether frames sent by `node` at `slot` are dropped before the
    /// air (crashed, TX-muted, or mid-reboot).
    pub fn blocks_tx(&self, node: NodeId, slot: Slot) -> bool {
        self.faults.iter().any(|f| {
            f.node == node
                && matches!(
                    f.kind,
                    FaultKind::Crash | FaultKind::TxMute | FaultKind::Reboot
                )
                && f.active_at(slot)
        })
    }

    /// Fills word-packed per-station fault masks for `slot`: bit `i` of
    /// `rx_blocked` / `tx_blocked` is set iff [`FaultPlan::blocks_rx`] /
    /// [`FaultPlan::blocks_tx`] holds for `NodeId(i)`. One pass over the
    /// fault list per slot, so the engine's per-reception and per-frame
    /// checks are bit tests instead of list scans. The caller supplies
    /// the buffers sized to `n_nodes.div_ceil(64)` words.
    pub fn fill_masks(&self, slot: Slot, rx_blocked: &mut [u64], tx_blocked: &mut [u64]) {
        rx_blocked.fill(0);
        tx_blocked.fill(0);
        for f in &self.faults {
            if !f.active_at(slot) {
                continue;
            }
            let (w, b) = (f.node.index() >> 6, 1u64 << (f.node.index() & 63));
            match f.kind {
                FaultKind::Crash | FaultKind::Reboot => {
                    rx_blocked[w] |= b;
                    tx_blocked[w] |= b;
                }
                FaultKind::Deaf => rx_blocked[w] |= b,
                FaultKind::TxMute => tx_blocked[w] |= b,
            }
        }
    }

    /// Whether the plan schedules any reboot (cheap gate so the engine
    /// pays nothing for reboot bookkeeping when there are none).
    pub fn has_reboots(&self) -> bool {
        self.faults.iter().any(|f| f.kind == FaultKind::Reboot)
    }

    /// Nodes whose reboot window ends exactly at `slot` — stations the
    /// engine must cold-reset at the top of `slot`, before anything else
    /// happens in it.
    pub fn reboots_completing_at(&self, slot: Slot) -> impl Iterator<Item = NodeId> + '_ {
        self.faults
            .iter()
            .filter(move |f| f.kind == FaultKind::Reboot && f.until == Some(slot))
            .map(|f| f.node)
    }

    /// The earliest reboot completion at or after `slot`, if any. The
    /// event-horizon stepper clamps its skip target to this so the reset
    /// slot is actually stepped, keeping naive and fast stepping in
    /// agreement by construction.
    pub fn next_reboot_completion(&self, slot: Slot) -> Option<Slot> {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultKind::Reboot)
            .filter_map(|f| f.until)
            .filter(|&u| u >= slot)
            .min()
    }

    /// Validates the plan against a network of `n_nodes` stations:
    /// every `NodeId` must be in range, every reboot must carry a
    /// recovery slot, windows must be non-empty, and no two same-kind
    /// faults on one node may overlap (an overlapping pair is almost
    /// always a schedule typo, and it would make reboot-completion
    /// bookkeeping ambiguous).
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        for f in &self.faults {
            if f.node.index() >= n_nodes {
                return Err(format!(
                    "fault `{}` names node {} but the network has {} nodes (ids 0..={})",
                    f.entry_spec(),
                    f.node.0,
                    n_nodes,
                    n_nodes.saturating_sub(1)
                ));
            }
            if f.kind == FaultKind::Reboot && f.until.is_none() {
                return Err(format!(
                    "reboot of node {} at {} has no recovery slot; a permanent outage is `crash:{}@{}`",
                    f.node.0, f.from, f.node.0, f.from
                ));
            }
            if f.until.is_some_and(|u| u <= f.from) {
                return Err(format!("empty fault window `{}`", f.entry_spec()));
            }
        }
        for (i, a) in self.faults.iter().enumerate() {
            for b in &self.faults[i + 1..] {
                if a.node == b.node && a.kind == b.kind && a.overlaps(b) {
                    return Err(format!(
                        "overlapping {} windows on node {}: `{}` and `{}`",
                        a.kind.tag(),
                        a.node.0,
                        a.entry_spec(),
                        b.entry_spec()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether `node` is crashed at `slot`.
    pub fn crashed(&self, node: NodeId, slot: Slot) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.kind == FaultKind::Crash && f.active_at(slot))
    }

    /// Whether any fault impairs `node` at any point during `[from, to)`.
    /// Used to split delivery metrics into reachable vs. faulted
    /// receivers: a receiver counts as reachable for a message only if it
    /// was healthy for the message's whole service window.
    pub fn impaired_during(&self, node: NodeId, from: Slot, to: Slot) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.active_during(from, to))
    }

    /// A plan crashing `count` distinct nodes drawn from `1..n_nodes`
    /// (node 0 is spared so at least one healthy sender remains) at slot
    /// `at`, using a dedicated RNG stream derived from `seed`. The same
    /// seed always yields the same victims.
    pub fn random_crashes(n_nodes: usize, count: usize, at: Slot, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6661_756c_7473); // "faults"
        let mut victims: Vec<u32> = Vec::new();
        let pool = n_nodes.saturating_sub(1);
        let count = count.min(pool);
        while victims.len() < count {
            let v = rng.random_range(1..n_nodes) as u32;
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        victims.sort_unstable();
        let mut plan = FaultPlan::new();
        for v in victims {
            plan = plan.crash(NodeId(v), at);
        }
        plan
    }

    /// Parses a semicolon-separated fault spec, e.g.
    /// `crash:5@1000;deaf:3@200..800;reboot:7@0..500`. Each entry is
    /// `kind:node@from` (permanent: crash, or deaf/mute with no window
    /// end) or `kind:node@from..until` (windowed). `crash` takes no
    /// window — a crash that recovers is spelled `reboot` — and `reboot`
    /// requires one. Errors carry the byte span of the offending token
    /// in `spec`.
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind_s, rest) = entry.split_once(':').ok_or_else(|| {
                SpecError::at(
                    spec,
                    entry,
                    format!("fault entry `{entry}` missing `kind:`"),
                )
            })?;
            let kind = match kind_s {
                "crash" => FaultKind::Crash,
                "deaf" => FaultKind::Deaf,
                "mute" => FaultKind::TxMute,
                "reboot" => FaultKind::Reboot,
                other => {
                    return Err(SpecError::at(
                        spec,
                        kind_s,
                        format!(
                            "unknown fault kind `{other}` (expected crash, deaf, mute, or reboot)"
                        ),
                    ))
                }
            };
            let (node_s, when_s) = rest.split_once('@').ok_or_else(|| {
                SpecError::at(
                    spec,
                    entry,
                    format!("fault entry `{entry}` missing `@slot`"),
                )
            })?;
            let node: u32 = node_s
                .parse()
                .map_err(|_| SpecError::at(spec, node_s, format!("bad node id `{node_s}`")))?;
            let (from, until) = match when_s.split_once("..") {
                Some((a, b)) => {
                    let from = a
                        .parse()
                        .map_err(|_| SpecError::at(spec, a, format!("bad slot `{a}`")))?;
                    let until = b
                        .parse()
                        .map_err(|_| SpecError::at(spec, b, format!("bad slot `{b}`")))?;
                    (from, Some(until))
                }
                None => {
                    let from = when_s
                        .parse()
                        .map_err(|_| SpecError::at(spec, when_s, format!("bad slot `{when_s}`")))?;
                    (from, None)
                }
            };
            if kind == FaultKind::Crash {
                if let Some(u) = until {
                    return Err(SpecError::at(
                        spec,
                        when_s,
                        format!(
                            "crash is permanent and takes no `..until` window; \
                             a crash that recovers is `reboot:{node}@{from}..{u}`"
                        ),
                    ));
                }
            }
            if kind == FaultKind::Reboot && until.is_none() {
                return Err(SpecError::at(
                    spec,
                    when_s,
                    format!(
                        "reboot needs a recovery slot: `reboot:{node}@{from}..until` \
                         (a permanent outage is `crash:{node}@{from}`)"
                    ),
                ));
            }
            if until.is_some_and(|u| u <= from) {
                return Err(SpecError::at(
                    spec,
                    when_s,
                    format!("empty fault window `{when_s}`"),
                ));
            }
            plan.faults.push(NodeFault {
                node: NodeId(node),
                kind,
                from,
                until,
            });
        }
        Ok(plan)
    }

    /// Renders the plan back into the [`FaultPlan::parse`] spec syntax.
    pub fn spec(&self) -> String {
        self.faults
            .iter()
            .map(NodeFault::entry_spec)
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// The two-state Gilbert–Elliott burst-loss model.
///
/// Each receiver carries an independent two-state Markov chain (Good /
/// Bad). The chain is stepped once per frame that would otherwise be
/// decoded at that receiver: first the state transitions (Good→Bad with
/// probability `p`, Bad→Good with probability `r`), then the frame is
/// lost iff the new state is Bad. The stationary loss rate is
/// `p / (p + r)`; mean burst length is `1 / r` frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(Good → Bad) per reception attempt.
    pub p: f64,
    /// P(Bad → Good) per reception attempt.
    pub r: f64,
}

impl GilbertElliott {
    /// Creates a model, validating both probabilities.
    pub fn new(p: f64, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        assert!((0.0..=1.0).contains(&r), "r must be in [0, 1]");
        GilbertElliott { p, r }
    }

    /// The closed-form stationary loss rate `p / (p + r)` (0 when both
    /// probabilities are 0: the chain starts Good and never leaves).
    pub fn stationary_loss(&self) -> f64 {
        if self.p + self.r == 0.0 {
            0.0
        } else {
            self.p / (self.p + self.r)
        }
    }
}

/// One receiver's chain state. Starts in the Good state.
#[derive(Debug, Clone, Copy)]
pub struct BurstChain {
    model: GilbertElliott,
    bad: bool,
}

impl BurstChain {
    /// A fresh chain in the Good state.
    pub fn new(model: GilbertElliott) -> Self {
        BurstChain { model, bad: false }
    }

    /// Advances the chain by one reception attempt and returns whether
    /// the frame is lost (the chain is in the Bad state after the
    /// transition). Exactly one RNG draw per step, regardless of state.
    pub fn step(&mut self, rng: &mut SmallRng) -> bool {
        let u: f64 = rng.random();
        self.bad = if self.bad {
            u >= self.model.r
        } else {
            u < self.model.p
        };
        self.bad
    }

    /// Whether the chain is currently in the Bad (lossy) state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stationary_loss_matches_closed_form() {
        for &(p, r) in &[(0.05, 0.25), (0.1, 0.1), (0.02, 0.5)] {
            let model = GilbertElliott::new(p, r);
            let mut chain = BurstChain::new(model);
            let mut rng = SmallRng::seed_from_u64(7);
            let trials = 200_000;
            let lost = (0..trials).filter(|_| chain.step(&mut rng)).count();
            let rate = lost as f64 / trials as f64;
            let want = model.stationary_loss();
            assert!(
                (rate - want).abs() < 0.01,
                "p={p} r={r}: empirical {rate} vs closed-form {want}"
            );
        }
    }

    #[test]
    fn degenerate_p_zero_never_loses() {
        let mut chain = BurstChain::new(GilbertElliott::new(0.0, 0.3));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..10_000).all(|_| !chain.step(&mut rng)));
        assert_eq!(GilbertElliott::new(0.0, 0.3).stationary_loss(), 0.0);
        assert_eq!(GilbertElliott::new(0.0, 0.0).stationary_loss(), 0.0);
    }

    #[test]
    fn degenerate_r_zero_absorbs_into_bad() {
        // With r = 0 the Bad state is absorbing: once the first G→B
        // transition fires, every later frame is lost.
        let mut chain = BurstChain::new(GilbertElliott::new(1.0, 0.0));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1000).all(|_| chain.step(&mut rng)));
        assert_eq!(GilbertElliott::new(0.4, 0.0).stationary_loss(), 1.0);
    }

    #[test]
    fn fault_predicates_respect_windows() {
        let plan = FaultPlan::new()
            .crash(NodeId(1), 100)
            .deaf(NodeId(2), 10, 20)
            .mute(NodeId(3), 30, 40);
        // Crash: rx and tx blocked from 100 on, forever.
        assert!(!plan.blocks_rx(NodeId(1), 99));
        assert!(plan.blocks_rx(NodeId(1), 100));
        assert!(plan.blocks_tx(NodeId(1), 1_000_000));
        assert!(plan.crashed(NodeId(1), 100));
        assert!(!plan.crashed(NodeId(2), 15));
        // Deaf: rx blocked only inside the window; tx unaffected.
        assert!(plan.blocks_rx(NodeId(2), 10));
        assert!(plan.blocks_rx(NodeId(2), 19));
        assert!(!plan.blocks_rx(NodeId(2), 20));
        assert!(!plan.blocks_tx(NodeId(2), 15));
        // Mute: tx blocked only inside the window; rx unaffected.
        assert!(plan.blocks_tx(NodeId(3), 30));
        assert!(!plan.blocks_tx(NodeId(3), 40));
        assert!(!plan.blocks_rx(NodeId(3), 35));
        // Healthy node untouched.
        assert!(!plan.blocks_rx(NodeId(0), 500));
    }

    #[test]
    fn impaired_during_covers_window_overlap() {
        let plan = FaultPlan::new()
            .deaf(NodeId(2), 10, 20)
            .crash(NodeId(1), 50);
        assert!(!plan.impaired_during(NodeId(2), 0, 10));
        assert!(plan.impaired_during(NodeId(2), 0, 11));
        assert!(plan.impaired_during(NodeId(2), 19, 100));
        assert!(!plan.impaired_during(NodeId(2), 20, 100));
        assert!(!plan.impaired_during(NodeId(1), 0, 50));
        assert!(plan.impaired_during(NodeId(1), 49, 51));
        assert!(plan.impaired_during(NodeId(1), 1000, 1001));
    }

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan::parse("crash:5@1000; deaf:3@200..800;mute:7@0..500;reboot:2@10..90")
            .unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(
            plan.spec(),
            "crash:5@1000;deaf:3@200..800;mute:7@0..500;reboot:2@10..90"
        );
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("bogus:1@2").is_err());
        assert!(FaultPlan::parse("deaf:1").is_err());
        assert!(FaultPlan::parse("deaf:1@9..9").is_err());
        assert!(FaultPlan::parse("deaf:x@9").is_err());
    }

    #[test]
    fn parse_rejects_crash_window_pointing_at_reboot() {
        let err = FaultPlan::parse("crash:5@100..900").unwrap_err();
        assert!(
            err.msg.contains("reboot:5@100..900"),
            "error should spell out the reboot alternative: {err}"
        );
        let err = FaultPlan::parse("reboot:5@100").unwrap_err();
        assert!(
            err.msg.contains("recovery slot"),
            "windowless reboot should demand a recovery slot: {err}"
        );
    }

    #[test]
    fn parse_errors_carry_spans() {
        // The span points at the offending token, not the whole spec.
        let spec = "deaf:3@200..800;mute:xx@0..500";
        let err = FaultPlan::parse(spec).unwrap_err();
        assert_eq!(&spec[err.offset..err.offset + err.len], "xx");
        let spec = "crash:5@100..900";
        let err = FaultPlan::parse(spec).unwrap_err();
        assert_eq!(&spec[err.offset..err.offset + err.len], "100..900");
        let spec = "deaf:1@9..9;crash:2@5";
        let err = FaultPlan::parse(spec).unwrap_err();
        assert_eq!(&spec[err.offset..err.offset + err.len], "9..9");
        let spec = "wobble:1@2";
        let err = FaultPlan::parse(spec).unwrap_err();
        assert_eq!(&spec[err.offset..err.offset + err.len], "wobble");
        assert!(err.to_string().starts_with("at 0..6:"), "{err}");
    }

    #[test]
    fn reboot_blocks_both_paths_only_inside_window() {
        let plan = FaultPlan::new().reboot(NodeId(4), 50, 120);
        assert!(!plan.blocks_rx(NodeId(4), 49));
        assert!(!plan.blocks_tx(NodeId(4), 49));
        assert!(plan.blocks_rx(NodeId(4), 50));
        assert!(plan.blocks_tx(NodeId(4), 119));
        assert!(!plan.blocks_rx(NodeId(4), 120));
        assert!(!plan.blocks_tx(NodeId(4), 120));
        assert!(
            !plan.crashed(NodeId(4), 60),
            "a rebooting node is not crashed"
        );
        assert!(plan.impaired_during(NodeId(4), 0, 51));
        assert!(!plan.impaired_during(NodeId(4), 120, 500));
        assert!(plan.has_reboots());
        assert!(!FaultPlan::new().crash(NodeId(1), 5).has_reboots());
        assert_eq!(
            plan.reboots_completing_at(120).collect::<Vec<_>>(),
            vec![NodeId(4)]
        );
        assert_eq!(plan.reboots_completing_at(119).count(), 0);
        assert_eq!(plan.next_reboot_completion(0), Some(120));
        assert_eq!(plan.next_reboot_completion(120), Some(120));
        assert_eq!(plan.next_reboot_completion(121), None);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        // Out-of-range node.
        let plan = FaultPlan::new().crash(NodeId(9), 10);
        assert!(plan.validate(10).is_ok());
        let err = plan.validate(9).unwrap_err();
        assert!(err.contains("node 9") && err.contains("ids 0..=8"), "{err}");
        // Overlapping same-kind windows on one node.
        let plan = FaultPlan::new()
            .deaf(NodeId(2), 10, 50)
            .deaf(NodeId(2), 40, 80);
        let err = plan.validate(10).unwrap_err();
        assert!(err.contains("overlapping deaf windows on node 2"), "{err}");
        // Two crashes on one node always overlap (both are forever).
        let plan = FaultPlan::new().crash(NodeId(1), 10).crash(NodeId(1), 900);
        assert!(plan.validate(10).is_err());
        // Same node, different kinds: fine. Same kind, disjoint: fine.
        assert!(FaultPlan::new()
            .deaf(NodeId(2), 10, 50)
            .mute(NodeId(2), 10, 50)
            .deaf(NodeId(2), 50, 80)
            .validate(10)
            .is_ok());
        // Reboot windows on distinct nodes: fine.
        assert!(FaultPlan::new()
            .reboot(NodeId(1), 10, 50)
            .reboot(NodeId(2), 10, 50)
            .validate(10)
            .is_ok());
        // A hand-built reboot with no recovery slot is rejected.
        let plan = FaultPlan {
            faults: vec![NodeFault {
                node: NodeId(1),
                kind: FaultKind::Reboot,
                from: 10,
                until: None,
            }],
        };
        let err = plan.validate(10).unwrap_err();
        assert!(err.contains("recovery slot"), "{err}");
        // Empty plan is always valid.
        assert!(FaultPlan::new().validate(0).is_ok());
    }

    #[test]
    fn random_crashes_are_deterministic_and_spare_node_zero() {
        let a = FaultPlan::random_crashes(20, 5, 300, 42);
        let b = FaultPlan::random_crashes(20, 5, 300, 42);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 5);
        assert!(a.faults.iter().all(|f| f.node.0 != 0));
        assert!(a.faults.iter().all(|f| f.kind == FaultKind::Crash));
        let c = FaultPlan::random_crashes(20, 5, 300, 43);
        assert_ne!(a, c, "different seed should pick different victims");
        // Requesting more crashes than candidates clamps.
        assert_eq!(FaultPlan::random_crashes(4, 10, 0, 1).faults.len(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::new().crash(NodeId(1), 100).deaf(NodeId(2), 5, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        let model = GilbertElliott::new(0.1, 0.4);
        let json = serde_json::to_string(&model).unwrap();
        let back: GilbertElliott = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
