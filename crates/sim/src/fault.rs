//! Deterministic fault injection: scheduled per-node radio faults and
//! the Gilbert–Elliott burst-error channel.
//!
//! Both impairments are *additive* to the healthy simulation: a run with
//! an empty [`FaultPlan`] and no burst model configured draws from
//! exactly the same RNG streams as before and is bit-identical to a run
//! on a build without this module. Faults are pure predicates of
//! `(node, slot)` enforced by the engine (so the naive and event-horizon
//! steppers agree by construction), and the burst chain advances only on
//! reception attempts, from its own dedicated RNG stream.

use crate::ids::{NodeId, Slot};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kind of an injected node fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node's radio dies at `from` and never recovers: nothing it
    /// sends reaches the air and it decodes nothing. `until` is ignored.
    Crash,
    /// Receive path dead during the window: the node decodes no frames.
    /// Carrier sense still works — deafness models a broken decoder (or
    /// persistent in-band interference), not a missing antenna.
    Deaf,
    /// Transmit path dead during the window: the node's frames are
    /// silently dropped before they reach the air. The node itself still
    /// believes it transmitted (a dead power amplifier is invisible to
    /// the MAC), so its counters and half-duplex bookkeeping advance.
    TxMute,
}

impl FaultKind {
    fn tag(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Deaf => "deaf",
            FaultKind::TxMute => "mute",
        }
    }
}

/// One scheduled fault: `kind` afflicts `node` during `[from, until)`
/// (`until = None` means forever; `Crash` is always forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFault {
    /// Afflicted station.
    pub node: NodeId,
    /// What breaks.
    pub kind: FaultKind,
    /// First faulty slot.
    pub from: Slot,
    /// One past the last faulty slot; `None` = never recovers.
    pub until: Option<Slot>,
}

impl NodeFault {
    fn active_at(&self, slot: Slot) -> bool {
        if slot < self.from {
            return false;
        }
        match self.kind {
            FaultKind::Crash => true,
            _ => self.until.is_none_or(|u| slot < u),
        }
    }

    /// Whether the fault is active anywhere in `[from, to)`.
    fn active_during(&self, from: Slot, to: Slot) -> bool {
        if to <= self.from {
            return false;
        }
        match self.kind {
            FaultKind::Crash => true,
            _ => self.until.is_none_or(|u| from < u),
        }
    }
}

/// A deterministic schedule of node faults, applied by the engine.
///
/// The plan is a pure function of `(node, slot)`: it draws no randomness
/// at simulation time, so fast and naive stepping see identical fault
/// states, and an empty plan changes nothing at all.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<NodeFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a permanent crash of `node` starting at `at`.
    pub fn crash(mut self, node: NodeId, at: Slot) -> Self {
        self.faults.push(NodeFault {
            node,
            kind: FaultKind::Crash,
            from: at,
            until: None,
        });
        self
    }

    /// Adds a deafness window `[from, until)` for `node`.
    pub fn deaf(mut self, node: NodeId, from: Slot, until: Slot) -> Self {
        self.faults.push(NodeFault {
            node,
            kind: FaultKind::Deaf,
            from,
            until: Some(until),
        });
        self
    }

    /// Adds a TX-mute window `[from, until)` for `node`.
    pub fn mute(mut self, node: NodeId, from: Slot, until: Slot) -> Self {
        self.faults.push(NodeFault {
            node,
            kind: FaultKind::TxMute,
            from,
            until: Some(until),
        });
        self
    }

    /// Whether `node` cannot decode frames at `slot` (crashed or deaf).
    pub fn blocks_rx(&self, node: NodeId, slot: Slot) -> bool {
        self.faults.iter().any(|f| {
            f.node == node
                && matches!(f.kind, FaultKind::Crash | FaultKind::Deaf)
                && f.active_at(slot)
        })
    }

    /// Whether frames sent by `node` at `slot` are dropped before the
    /// air (crashed or TX-muted).
    pub fn blocks_tx(&self, node: NodeId, slot: Slot) -> bool {
        self.faults.iter().any(|f| {
            f.node == node
                && matches!(f.kind, FaultKind::Crash | FaultKind::TxMute)
                && f.active_at(slot)
        })
    }

    /// Whether `node` is crashed at `slot`.
    pub fn crashed(&self, node: NodeId, slot: Slot) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.kind == FaultKind::Crash && f.active_at(slot))
    }

    /// Whether any fault impairs `node` at any point during `[from, to)`.
    /// Used to split delivery metrics into reachable vs. faulted
    /// receivers: a receiver counts as reachable for a message only if it
    /// was healthy for the message's whole service window.
    pub fn impaired_during(&self, node: NodeId, from: Slot, to: Slot) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.active_during(from, to))
    }

    /// A plan crashing `count` distinct nodes drawn from `1..n_nodes`
    /// (node 0 is spared so at least one healthy sender remains) at slot
    /// `at`, using a dedicated RNG stream derived from `seed`. The same
    /// seed always yields the same victims.
    pub fn random_crashes(n_nodes: usize, count: usize, at: Slot, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6661_756c_7473); // "faults"
        let mut victims: Vec<u32> = Vec::new();
        let pool = n_nodes.saturating_sub(1);
        let count = count.min(pool);
        while victims.len() < count {
            let v = rng.random_range(1..n_nodes) as u32;
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        victims.sort_unstable();
        let mut plan = FaultPlan::new();
        for v in victims {
            plan = plan.crash(NodeId(v), at);
        }
        plan
    }

    /// Parses a semicolon-separated fault spec, e.g.
    /// `crash:5@1000;deaf:3@200..800;mute:7@0..500`. Each entry is
    /// `kind:node@from` (crash) or `kind:node@from..until` (windowed
    /// faults; `until` may be omitted for a permanent fault).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(';').filter(|s| !s.trim().is_empty()) {
            let entry = entry.trim();
            let (kind_s, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` missing `kind:`"))?;
            let kind = match kind_s {
                "crash" => FaultKind::Crash,
                "deaf" => FaultKind::Deaf,
                "mute" => FaultKind::TxMute,
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            let (node_s, when_s) = rest
                .split_once('@')
                .ok_or_else(|| format!("fault entry `{entry}` missing `@slot`"))?;
            let node: u32 = node_s
                .parse()
                .map_err(|_| format!("bad node id `{node_s}` in `{entry}`"))?;
            let (from, until) = match when_s.split_once("..") {
                Some((a, b)) => {
                    let from = a
                        .parse()
                        .map_err(|_| format!("bad slot `{a}` in `{entry}`"))?;
                    let until = b
                        .parse()
                        .map_err(|_| format!("bad slot `{b}` in `{entry}`"))?;
                    (from, Some(until))
                }
                None => {
                    let from = when_s
                        .parse()
                        .map_err(|_| format!("bad slot `{when_s}` in `{entry}`"))?;
                    (from, None)
                }
            };
            if until.is_some_and(|u| u <= from) {
                return Err(format!("empty fault window in `{entry}`"));
            }
            plan.faults.push(NodeFault {
                node: NodeId(node),
                kind,
                from,
                until,
            });
        }
        Ok(plan)
    }

    /// Renders the plan back into the [`FaultPlan::parse`] spec syntax.
    pub fn spec(&self) -> String {
        self.faults
            .iter()
            .map(|f| match (f.kind, f.until) {
                (FaultKind::Crash, _) | (_, None) => {
                    format!("{}:{}@{}", f.kind.tag(), f.node.0, f.from)
                }
                (_, Some(u)) => format!("{}:{}@{}..{}", f.kind.tag(), f.node.0, f.from, u),
            })
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// The two-state Gilbert–Elliott burst-loss model.
///
/// Each receiver carries an independent two-state Markov chain (Good /
/// Bad). The chain is stepped once per frame that would otherwise be
/// decoded at that receiver: first the state transitions (Good→Bad with
/// probability `p`, Bad→Good with probability `r`), then the frame is
/// lost iff the new state is Bad. The stationary loss rate is
/// `p / (p + r)`; mean burst length is `1 / r` frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(Good → Bad) per reception attempt.
    pub p: f64,
    /// P(Bad → Good) per reception attempt.
    pub r: f64,
}

impl GilbertElliott {
    /// Creates a model, validating both probabilities.
    pub fn new(p: f64, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        assert!((0.0..=1.0).contains(&r), "r must be in [0, 1]");
        GilbertElliott { p, r }
    }

    /// The closed-form stationary loss rate `p / (p + r)` (0 when both
    /// probabilities are 0: the chain starts Good and never leaves).
    pub fn stationary_loss(&self) -> f64 {
        if self.p + self.r == 0.0 {
            0.0
        } else {
            self.p / (self.p + self.r)
        }
    }
}

/// One receiver's chain state. Starts in the Good state.
#[derive(Debug, Clone, Copy)]
pub struct BurstChain {
    model: GilbertElliott,
    bad: bool,
}

impl BurstChain {
    /// A fresh chain in the Good state.
    pub fn new(model: GilbertElliott) -> Self {
        BurstChain { model, bad: false }
    }

    /// Advances the chain by one reception attempt and returns whether
    /// the frame is lost (the chain is in the Bad state after the
    /// transition). Exactly one RNG draw per step, regardless of state.
    pub fn step(&mut self, rng: &mut SmallRng) -> bool {
        let u: f64 = rng.random();
        self.bad = if self.bad {
            u >= self.model.r
        } else {
            u < self.model.p
        };
        self.bad
    }

    /// Whether the chain is currently in the Bad (lossy) state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stationary_loss_matches_closed_form() {
        for &(p, r) in &[(0.05, 0.25), (0.1, 0.1), (0.02, 0.5)] {
            let model = GilbertElliott::new(p, r);
            let mut chain = BurstChain::new(model);
            let mut rng = SmallRng::seed_from_u64(7);
            let trials = 200_000;
            let lost = (0..trials).filter(|_| chain.step(&mut rng)).count();
            let rate = lost as f64 / trials as f64;
            let want = model.stationary_loss();
            assert!(
                (rate - want).abs() < 0.01,
                "p={p} r={r}: empirical {rate} vs closed-form {want}"
            );
        }
    }

    #[test]
    fn degenerate_p_zero_never_loses() {
        let mut chain = BurstChain::new(GilbertElliott::new(0.0, 0.3));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..10_000).all(|_| !chain.step(&mut rng)));
        assert_eq!(GilbertElliott::new(0.0, 0.3).stationary_loss(), 0.0);
        assert_eq!(GilbertElliott::new(0.0, 0.0).stationary_loss(), 0.0);
    }

    #[test]
    fn degenerate_r_zero_absorbs_into_bad() {
        // With r = 0 the Bad state is absorbing: once the first G→B
        // transition fires, every later frame is lost.
        let mut chain = BurstChain::new(GilbertElliott::new(1.0, 0.0));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1000).all(|_| chain.step(&mut rng)));
        assert_eq!(GilbertElliott::new(0.4, 0.0).stationary_loss(), 1.0);
    }

    #[test]
    fn fault_predicates_respect_windows() {
        let plan = FaultPlan::new()
            .crash(NodeId(1), 100)
            .deaf(NodeId(2), 10, 20)
            .mute(NodeId(3), 30, 40);
        // Crash: rx and tx blocked from 100 on, forever.
        assert!(!plan.blocks_rx(NodeId(1), 99));
        assert!(plan.blocks_rx(NodeId(1), 100));
        assert!(plan.blocks_tx(NodeId(1), 1_000_000));
        assert!(plan.crashed(NodeId(1), 100));
        assert!(!plan.crashed(NodeId(2), 15));
        // Deaf: rx blocked only inside the window; tx unaffected.
        assert!(plan.blocks_rx(NodeId(2), 10));
        assert!(plan.blocks_rx(NodeId(2), 19));
        assert!(!plan.blocks_rx(NodeId(2), 20));
        assert!(!plan.blocks_tx(NodeId(2), 15));
        // Mute: tx blocked only inside the window; rx unaffected.
        assert!(plan.blocks_tx(NodeId(3), 30));
        assert!(!plan.blocks_tx(NodeId(3), 40));
        assert!(!plan.blocks_rx(NodeId(3), 35));
        // Healthy node untouched.
        assert!(!plan.blocks_rx(NodeId(0), 500));
    }

    #[test]
    fn impaired_during_covers_window_overlap() {
        let plan = FaultPlan::new()
            .deaf(NodeId(2), 10, 20)
            .crash(NodeId(1), 50);
        assert!(!plan.impaired_during(NodeId(2), 0, 10));
        assert!(plan.impaired_during(NodeId(2), 0, 11));
        assert!(plan.impaired_during(NodeId(2), 19, 100));
        assert!(!plan.impaired_during(NodeId(2), 20, 100));
        assert!(!plan.impaired_during(NodeId(1), 0, 50));
        assert!(plan.impaired_during(NodeId(1), 49, 51));
        assert!(plan.impaired_during(NodeId(1), 1000, 1001));
    }

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan::parse("crash:5@1000; deaf:3@200..800;mute:7@0..500").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.spec(), "crash:5@1000;deaf:3@200..800;mute:7@0..500");
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("bogus:1@2").is_err());
        assert!(FaultPlan::parse("deaf:1").is_err());
        assert!(FaultPlan::parse("deaf:1@9..9").is_err());
        assert!(FaultPlan::parse("deaf:x@9").is_err());
    }

    #[test]
    fn random_crashes_are_deterministic_and_spare_node_zero() {
        let a = FaultPlan::random_crashes(20, 5, 300, 42);
        let b = FaultPlan::random_crashes(20, 5, 300, 42);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 5);
        assert!(a.faults.iter().all(|f| f.node.0 != 0));
        assert!(a.faults.iter().all(|f| f.kind == FaultKind::Crash));
        let c = FaultPlan::random_crashes(20, 5, 300, 43);
        assert_ne!(a, c, "different seed should pick different victims");
        // Requesting more crashes than candidates clamps.
        assert_eq!(FaultPlan::random_crashes(4, 10, 0, 1).faults.len(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::new().crash(NodeId(1), 100).deaf(NodeId(2), 5, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        let model = GilbertElliott::new(0.1, 0.4);
        let json = serde_json::to_string(&model).unwrap();
        let back: GilbertElliott = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
