//! The shared radio channel: transmission bookkeeping and per-receiver
//! reception resolution.
//!
//! Reception rule (per receiver `r`, for a frame `f` whose airtime just
//! ended): `r` decodes `f` iff
//!
//! 1. `r` is within the transmission radius of `f`'s sender,
//! 2. `r` was not itself transmitting during any slot of `f` (half-duplex),
//! 3. no other transmission audible at `r` overlapped `f` in time — unless
//!    *all* overlapping frames are control frames occupying exactly the
//!    same slot (a synchronized pile-up, e.g. simultaneous CTS replies), in
//!    which case the strongest frame (nearest sender) is decoded with the
//!    capture probability of the configured [`Capture`] model.
//!
//! Every audible station receives every decodable frame (promiscuous
//! delivery); MAC layers decide whether a frame is addressed to them or
//! triggers a NAV yield.
//!
//! # Hot-path bookkeeping
//!
//! The saturated regime is where the paper's protocols differ, so the
//! channel maintains incremental indexes at launch/expiry time instead of
//! rescanning the transmission list per slot:
//!
//! * an **end-slot bucket ring** (`ends`) so resolution touches only the
//!   frames actually ending at the resolved slot, in launch order,
//! * **per-receiver audible lists** (`audible`) and **per-sender on-air
//!   lists** (`own`) so interference and half-duplex checks in
//!   [`Channel::resolve_ended_into`] scan only the handful of records
//!   audible at one station; every list entry is a denormalized
//!   [`AirRef`] carrying the interference window (start/end/sender/kind)
//!   inline, so the hot scans never chase the record slab,
//! * **per-station carrier watermarks** (`air_until`) raised at launch
//!   over the sender and its neighborhood, so carrier sense
//!   ([`Channel::busy_prev_slot`]) and global airtime occupancy
//!   ([`Channel::any_active`]) are O(1) comparisons instead of bitset
//!   ring maintenance. The watermarks are exact for the engine's query
//!   pattern — all of a slot's carrier-sense reads happen before that
//!   slot's launches, and launches are time-ordered.
//!
//! All bookkeeping is behaviorally invisible: outcomes, RNG draw order,
//! and the airtime ledger are bit-identical to the naive full-rescan
//! reference in [`reference`], which doubles as a differential oracle via
//! [`Channel::enable_crosscheck`].

pub mod reference;

use crate::capture::Capture;
use crate::fault::{BurstChain, GilbertElliott};
use crate::frame::Frame;
use crate::ids::{NodeId, Slot};
use crate::ledger::AirtimeLedger;
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A frame on the air, occupying slots `[start, end)`. The frame payload
/// is reference-counted so multicast delivery shares one allocation
/// across every receiver instead of cloning it per reception.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// The frame being transmitted.
    pub frame: Arc<Frame>,
    /// First occupied slot.
    pub start: Slot,
    /// One past the last occupied slot.
    pub end: Slot,
}

impl Transmission {
    #[inline]
    fn overlaps(&self, other: &Transmission) -> bool {
        self.start < other.end && other.start < self.end
    }

    #[inline]
    fn occupies(&self, slot: Slot) -> bool {
        self.start <= slot && slot < self.end
    }
}

/// A successfully decoded frame, to be delivered to `receiver`. Every
/// receiver of a multicast frame shares the same [`Arc`]ed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Reception {
    /// Station that decoded the frame.
    pub receiver: NodeId,
    /// The decoded frame.
    pub frame: Arc<Frame>,
    /// Whether decoding required the capture effect.
    pub captured: bool,
}

/// A collision observed at a receiver (for tracing and statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct CollisionEvent {
    /// Station at which the frames collided.
    pub receiver: NodeId,
    /// Senders of the frames involved.
    pub senders: Vec<NodeId>,
    /// The sender whose frame was captured, if any.
    pub captured: Option<NodeId>,
}

/// Result of resolving one slot's ended transmissions.
#[derive(Debug, Default, PartialEq)]
pub struct SlotOutcome {
    /// Frames decoded this slot, in deterministic order.
    pub receptions: Vec<Reception>,
    /// Collisions observed this slot.
    pub collisions: Vec<CollisionEvent>,
    /// Receivers that lost an otherwise clean frame to a random frame
    /// error this slot.
    pub frame_errors: Vec<NodeId>,
    /// Receivers that lost an otherwise decodable frame to the
    /// Gilbert–Elliott burst channel this slot.
    pub burst_errors: Vec<NodeId>,
}

impl SlotOutcome {
    /// Empties all event lists, keeping their allocations.
    pub fn clear(&mut self) {
        self.receptions.clear();
        self.collisions.clear();
        self.frame_errors.clear();
        self.burst_errors.clear();
    }
}

/// Burst-loss state: the configured model, one chain per receiver, and
/// the model's own RNG stream (isolated from the i.i.d. FER / capture
/// draws so enabling bursts never perturbs the other streams).
#[derive(Debug, Clone)]
struct BurstState {
    model: GilbertElliott,
    rng: SmallRng,
    chains: Vec<BurstChain>,
}

impl BurstState {
    /// Steps the chains over this slot's decoded receptions (in
    /// deterministic reception order) and moves losses from
    /// `outcome.receptions` to `outcome.burst_errors`. Returns the number
    /// of frames lost. Chains advance only on reception attempts, so the
    /// naive and event-horizon steppers (which see identical reception
    /// sequences) stay bit-exact.
    fn apply(&mut self, outcome: &mut SlotOutcome) -> u64 {
        let mut lost = 0;
        let mut i = 0;
        while i < outcome.receptions.len() {
            let r = outcome.receptions[i].receiver;
            if r.index() >= self.chains.len() {
                self.chains
                    .resize(r.index() + 1, BurstChain::new(self.model));
            }
            if self.chains[r.index()].step(&mut self.rng) {
                outcome.burst_errors.push(r);
                outcome.receptions.remove(i);
                lost += 1;
            } else {
                i += 1;
            }
        }
        lost
    }
}

/// A slab-resident transmission record. `seq` is the global launch
/// counter, used to restore launch order when the end-slot ring is
/// rebuilt after a `max_len` growth.
#[derive(Debug)]
struct Rec {
    tx: Transmission,
    seq: u64,
}

/// A denormalized reference to a slab record, carried by the end
/// buckets and the per-node audible/on-air lists: everything the hot
/// scans test — the occupancy window, the sender, and whether the frame
/// is a control frame (capture-pile-up membership) — lives inline, so
/// interference resolution touches the slab once per ended frame
/// instead of once per list entry.
#[derive(Debug, Clone, Copy)]
struct AirRef {
    /// Slab index of the full record.
    idx: u32,
    /// Sending station.
    src: NodeId,
    /// Whether the frame is a control frame.
    ctrl: bool,
    /// First occupied slot.
    start: Slot,
    /// One past the last occupied slot.
    end: Slot,
}

impl AirRef {
    fn of(idx: u32, tx: &Transmission) -> Self {
        AirRef {
            idx,
            src: tx.frame.src,
            ctrl: tx.frame.kind.is_control(),
            start: tx.start,
            end: tx.end,
        }
    }

    #[inline]
    fn overlaps(&self, start: Slot, end: Slot) -> bool {
        self.start < end && start < self.end
    }

    #[inline]
    fn occupies(&self, slot: Slot) -> bool {
        self.start <= slot && slot < self.end
    }
}

/// Removes one occurrence of `idx` from a bookkeeping list. The lists
/// are tiny (records audible at one station within the interference
/// window), so a linear scan + `swap_remove` beats any fancier
/// structure; entry order within these lists is not observable.
#[inline]
fn list_remove(list: &mut Vec<AirRef>, idx: u32) {
    if let Some(pos) = list.iter().position(|e| e.idx == idx) {
        list.swap_remove(pos);
    }
}

/// The shared radio medium.
#[derive(Debug)]
pub struct Channel {
    /// Transmission records, slab-allocated so the per-node index lists
    /// can hold stable `u32` handles.
    slab: Vec<Option<Rec>>,
    /// Free slab slots, reused before growing.
    free: Vec<u32>,
    /// Number of live records (active plus interference-history tail).
    live: usize,
    /// Global launch counter (restores launch order on ring rebuilds).
    next_seq: u64,
    capture: Capture,
    max_len: u32,
    /// One past the last slot any transmission ever begun will occupy
    /// (monotone). Slots at or beyond it are dead air unless a new
    /// transmission starts first.
    latest_end: Slot,
    /// Station count the index structures are bound to (0 until the
    /// first launch binds a topology).
    n_nodes: usize,
    /// End-slot bucket ring: `ends[end % ends.len()]` holds the records
    /// ending at `end`, in launch order. Ring length `2 * max_len + 2`
    /// keeps live ends collision-free.
    ends: Vec<Vec<AirRef>>,
    /// Per-receiver audible records: `audible[r]` holds every retained
    /// record whose sender is in range of `r` (under the current
    /// topology). Maintained at launch/expiry and rebuilt by
    /// [`Channel::retune`].
    audible: Vec<Vec<AirRef>>,
    /// Per-sender on-air records: `own[s]` holds every retained record
    /// sent by `s` (half-duplex checks, [`Channel::is_transmitting`]).
    own: Vec<Vec<AirRef>>,
    /// Per-station carrier watermark: one past the last slot any
    /// transmission audible at the station (its neighbors' or its own)
    /// ever launched will occupy. Monotone under launches; recomputed by
    /// [`Channel::retune`]. Because launches are time-ordered and every
    /// carrier-sense read for a slot happens before that slot's
    /// launches, `air_until[i] >= now` is exactly "the medium at `i` was
    /// busy during `now - 1`".
    air_until: Vec<Slot>,
    /// Next end slot the pruner will drain (monotone).
    prune_cursor: Slot,
    /// Scratch: records ending at the resolved slot.
    ended_scratch: Vec<AirRef>,
    /// Scratch: interferers at one receiver.
    interferer_scratch: Vec<AirRef>,
    /// Recycled `CollisionEvent::senders` vectors, refilled from the
    /// previous slot's outcome so saturated resolution does not allocate
    /// per collision event.
    sender_pool: Vec<Vec<NodeId>>,
    /// Scratch: slot intervals of frames destroyed by collisions during
    /// one resolution pass, drained into the ledger afterwards.
    collided_scratch: Vec<(Slot, Slot)>,
    /// Per-slot airtime classification (idle / data / control /
    /// collision), stamped as transmissions start and resolve.
    ledger: AirtimeLedger,
    /// Independent per-reception frame error probability (transmission
    /// errors other than collisions — noise, fading). The paper's
    /// Section 6 analysis folds these into its `q`; default 0.
    fer: f64,
    /// Gilbert–Elliott burst-loss state, if configured.
    burst: Option<BurstState>,
    /// Naive full-rescan shadow channel, if crosschecking is enabled:
    /// every launch is mirrored and every resolution is replayed against
    /// it (with a cloned RNG) and asserted byte-identical.
    shadow: Option<Box<reference::ReferenceChannel>>,
    /// Count of frame receptions destroyed by collisions (monotone).
    pub collisions_total: u64,
    /// Count of frame receptions destroyed by random frame errors.
    pub frame_errors_total: u64,
    /// Count of frame receptions destroyed by the burst-error channel.
    pub burst_errors_total: u64,
    /// Count of slots during which at least one transmission was on the
    /// air anywhere in the network (global airtime utilization).
    pub busy_slots: u64,
}

impl Channel {
    /// Creates an idle channel with the given capture model.
    pub fn new(capture: Capture) -> Self {
        let max_len = 1u32;
        Channel {
            slab: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            capture,
            max_len,
            latest_end: 0,
            n_nodes: 0,
            ends: vec![Vec::new(); Self::end_ring_len(max_len)],
            audible: Vec::new(),
            own: Vec::new(),
            air_until: Vec::new(),
            prune_cursor: 0,
            ended_scratch: Vec::new(),
            interferer_scratch: Vec::new(),
            sender_pool: Vec::new(),
            collided_scratch: Vec::new(),
            ledger: AirtimeLedger::new(),
            fer: 0.0,
            burst: None,
            shadow: None,
            collisions_total: 0,
            frame_errors_total: 0,
            burst_errors_total: 0,
            busy_slots: 0,
        }
    }

    /// End-bucket ring length for a given longest frame: live ends span
    /// at most `(now - max_len, now + max_len]`, so `2 * max_len + 2`
    /// rows keep distinct live ends in distinct buckets.
    fn end_ring_len(max_len: u32) -> usize {
        2 * max_len as usize + 2
    }

    /// Sets the independent frame error rate applied to every otherwise
    /// successful reception.
    pub fn set_fer(&mut self, fer: f64) {
        assert!(
            (0.0..1.0).contains(&fer),
            "frame error rate must be in [0, 1)"
        );
        self.fer = fer;
        if let Some(shadow) = &mut self.shadow {
            shadow.set_fer(fer);
        }
    }

    /// The configured frame error rate.
    pub fn fer(&self) -> f64 {
        self.fer
    }

    /// Enables the Gilbert–Elliott burst-error channel, seeding its
    /// dedicated RNG stream. Per-receiver chains start in the Good state
    /// and advance once per reception attempt at that receiver.
    pub fn set_burst(&mut self, model: GilbertElliott, seed: u64) {
        let model = GilbertElliott::new(model.p, model.r); // re-validate
        self.burst = Some(BurstState {
            model,
            rng: SmallRng::seed_from_u64(seed),
            chains: Vec::new(),
        });
        if let Some(shadow) = &mut self.shadow {
            shadow.mirror_burst(self.burst.clone());
        }
    }

    /// The configured burst model, if any.
    pub fn burst(&self) -> Option<GilbertElliott> {
        self.burst.as_ref().map(|b| b.model)
    }

    /// The configured capture model.
    pub fn capture(&self) -> Capture {
        self.capture
    }

    /// Enables the differential shadow channel: every launch is mirrored
    /// into a naive full-rescan [`reference::ReferenceChannel`], and every
    /// [`Channel::resolve_ended_into`] replays it there with a cloned RNG,
    /// asserting that outcomes, the RNG draw stream, the airtime ledger,
    /// carrier sense, and half-duplex state are all byte-identical. Test
    /// instrumentation — roughly doubles resolution cost.
    ///
    /// # Panics
    ///
    /// If any transmission has already been launched (the shadow must see
    /// the full history).
    pub fn enable_crosscheck(&mut self) {
        assert!(
            self.live == 0 && self.latest_end == 0,
            "crosscheck must be enabled on a fresh channel"
        );
        let mut shadow = Box::new(reference::ReferenceChannel::new(self.capture));
        shadow.set_fer(self.fer);
        shadow.mirror_burst(self.burst.clone());
        self.shadow = Some(shadow);
    }

    /// Whether the naive shadow channel is active.
    pub fn crosscheck_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Binds the index structures to a station count the first time a
    /// transmission launches (or after construction).
    fn bind(&mut self, topo: &Topology) {
        if self.n_nodes == topo.len() {
            return;
        }
        assert!(
            self.live == 0,
            "channel topology changed while transmissions are retained — use retune()"
        );
        self.n_nodes = topo.len();
        self.audible = vec![Vec::new(); self.n_nodes];
        self.own = vec![Vec::new(); self.n_nodes];
        self.air_until = vec![0; self.n_nodes];
    }

    /// Rebinds the index structures to a changed topology (node
    /// mobility): audible lists and carrier watermarks are recomputed
    /// from the retained records, so in-flight transmissions sense and
    /// resolve against the new geometry. Called by the engine from
    /// `Engine::set_topology`.
    pub fn retune(&mut self, topo: &Topology, _now: Slot) {
        if self.n_nodes != topo.len() {
            self.bind(topo);
            return;
        }
        for list in &mut self.audible {
            list.clear();
        }
        // Records audible under the old geometry may not be under the
        // new one, so the watermarks restart from scratch. Every
        // retained record started in the past, so the rebuilt
        // watermarks stay exact for all future carrier-sense reads.
        for w in &mut self.air_until {
            *w = 0;
        }
        for (i, slot) in self.slab.iter().enumerate() {
            let Some(rec) = slot else { continue };
            let e = AirRef::of(i as u32, &rec.tx);
            let w = &mut self.air_until[e.src.index()];
            *w = (*w).max(e.end);
            for &r in topo.neighbors(e.src) {
                self.audible[r.index()].push(e);
                let w = &mut self.air_until[r.index()];
                *w = (*w).max(e.end);
            }
        }
    }

    /// Grows the end-bucket ring after `max_len` increased: records are
    /// re-bucketed by end slot in launch order.
    fn rebuild_rings(&mut self) {
        self.ends = vec![Vec::new(); Self::end_ring_len(self.max_len)];
        let mut recs: Vec<(u64, AirRef)> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let rec = slot.as_ref()?;
                Some((rec.seq, AirRef::of(i as u32, &rec.tx)))
            })
            .collect();
        recs.sort_unstable_by_key(|&(seq, _)| seq);
        let er = self.ends.len() as u64;
        for (_, e) in recs {
            self.ends[(e.end % er) as usize].push(e);
        }
    }

    /// Starts a transmission at slot `now`. The topology supplies the
    /// audibility sets the incremental indexes are keyed on; it must be
    /// the same one later resolution calls use (the engine guarantees
    /// this, and re-keys via [`Channel::retune`] on mobility). Panics
    /// (debug) if the sender already has a frame on the air — MAC layers
    /// are half-duplex.
    pub fn begin_tx(&mut self, frame: Frame, now: Slot, topo: &Topology) {
        self.bind(topo);
        debug_assert!(
            !self.own[frame.src.index()].iter().any(|e| e.end > now),
            "station {} started a transmission while already transmitting",
            frame.src
        );
        let len = frame.slots.max(1);
        if len > self.max_len {
            self.max_len = len;
            self.rebuild_rings();
        }
        let end = now + Slot::from(len);
        self.latest_end = self.latest_end.max(end);
        self.ledger.mark_tx(frame.kind, now, end);
        if let Some(shadow) = &mut self.shadow {
            shadow.begin_tx(frame.clone(), now);
        }
        let src = frame.src;
        let rec = Rec {
            tx: Transmission {
                frame: Arc::new(frame),
                start: now,
                end,
            },
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(rec);
                i
            }
            None => {
                self.slab.push(Some(rec));
                (self.slab.len() - 1) as u32
            }
        };
        self.live += 1;
        let e = AirRef::of(idx, &self.rec(idx).tx);
        let er = self.ends.len() as u64;
        self.ends[(end % er) as usize].push(e);
        self.own[src.index()].push(e);
        let w = &mut self.air_until[src.index()];
        *w = (*w).max(end);
        for &r in topo.neighbors(src) {
            self.audible[r.index()].push(e);
            let w = &mut self.air_until[r.index()];
            *w = (*w).max(end);
        }
    }

    /// The per-slot airtime ledger accumulated so far.
    pub fn ledger(&self) -> &AirtimeLedger {
        &self.ledger
    }

    /// Whether slot `slot` is dead air: every transmission ever begun
    /// ends strictly before it, so nothing resolves at `slot`, no
    /// station's carrier sense reads busy at `slot`, and (absent new
    /// transmissions) the same holds for every later slot. The engine's
    /// event-horizon stepper may only skip quiescent slots.
    pub fn quiescent_at(&self, slot: Slot) -> bool {
        self.latest_end < slot
    }

    #[inline]
    fn rec(&self, idx: u32) -> &Rec {
        self.slab[idx as usize]
            .as_ref()
            .expect("index lists only hold live records")
    }

    /// Whether the medium at `node` was busy during slot `now - 1`:
    /// true if any audible transmission (or the node's own) occupied it.
    /// At `now == 0` the medium has no history and reads idle. O(1)
    /// from the per-station carrier watermark, which is exact as long
    /// as every retained transmission started before `now` — the
    /// engine's phase order (all of a slot's carrier-sense reads
    /// precede its launches) guarantees this.
    pub fn busy_prev_slot(&self, node: NodeId, now: Slot, _topo: &Topology) -> bool {
        now > 0 && self.air_until.get(node.index()).is_some_and(|&w| w >= now)
    }

    /// Whether `node` has a frame of its own on the air at slot `now`.
    /// Served from the per-sender on-air list — O(frames `node` has
    /// retained), not O(all transmissions).
    pub fn is_transmitting(&self, node: NodeId, now: Slot) -> bool {
        self.own
            .get(node.index())
            .is_some_and(|list| list.iter().any(|e| e.occupies(now)))
    }

    /// Resolves all transmissions whose airtime ends at slot `now` and
    /// returns the decoded receptions plus collision records.
    pub fn resolve_ended(&mut self, now: Slot, topo: &Topology, rng: &mut SmallRng) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        self.resolve_ended_into(now, topo, rng, &mut outcome);
        outcome
    }

    /// Like [`Channel::resolve_ended`], but clears and fills a
    /// caller-owned [`SlotOutcome`], reusing its vectors (and internal
    /// index scratch) across slots instead of allocating fresh ones.
    pub fn resolve_ended_into(
        &mut self,
        now: Slot,
        topo: &Topology,
        rng: &mut SmallRng,
        outcome: &mut SlotOutcome,
    ) {
        // Recycle the previous slot's collision sender lists before the
        // outcome is cleared: collision events are the only per-event
        // allocation left on the saturated resolve path.
        for c in outcome.collisions.drain(..) {
            if self.sender_pool.len() < 64 {
                let mut v = c.senders;
                v.clear();
                self.sender_pool.push(v);
            }
        }
        outcome.clear();
        if self.quiescent_at(now) {
            return;
        }
        let shadow_rng = self.shadow.as_ref().map(|_| rng.clone());
        let mut ended = std::mem::take(&mut self.ended_scratch);
        let mut interferers = std::mem::take(&mut self.interferer_scratch);
        let mut collided = std::mem::take(&mut self.collided_scratch);
        let mut senders_pool = std::mem::take(&mut self.sender_pool);
        ended.clear();
        collided.clear();
        let er = self.ends.len() as u64;
        // Bucket order is launch order, matching the naive reference's
        // scan order — observable through burst-chain stepping and trace
        // event order. The end filter drops the stale residents a
        // prune-free caller can leave behind.
        ended.extend(
            self.ends[(now % er) as usize]
                .iter()
                .copied()
                .filter(|e| e.end == now),
        );
        for &e in &ended {
            let f = &self.rec(e.idx).tx;
            for &r in topo.neighbors(e.src) {
                self.resolve_at_receiver(
                    f,
                    e,
                    r,
                    topo,
                    rng,
                    outcome,
                    &mut interferers,
                    &mut collided,
                    &mut senders_pool,
                );
            }
        }
        for &(s, e) in &collided {
            self.ledger.mark_collided(s, e);
        }
        self.ended_scratch = ended;
        self.interferer_scratch = interferers;
        self.collided_scratch = collided;
        self.sender_pool = senders_pool;
        if let Some(burst) = &mut self.burst {
            self.burst_errors_total += burst.apply(outcome);
        }
        if let Some(mut shadow) = self.shadow.take() {
            let mut srng = shadow_rng.expect("snapshotted above");
            let sout = shadow.resolve_shadow(now, topo, &mut srng);
            assert_eq!(
                &sout, &*outcome,
                "incremental and naive channel outcomes diverged at slot {now}"
            );
            assert!(
                srng == *rng,
                "incremental and naive channel RNG streams diverged at slot {now}"
            );
            assert_eq!(
                shadow.ledger(),
                &self.ledger,
                "airtime ledgers diverged at slot {now}"
            );
            for i in 0..topo.len() {
                let n = NodeId(i as u32);
                assert_eq!(
                    shadow.busy_prev_slot(n, now, topo),
                    self.busy_prev_slot(n, now, topo),
                    "carrier sense diverged at node {n} slot {now}"
                );
                assert_eq!(
                    shadow.is_transmitting(n, now),
                    self.is_transmitting(n, now),
                    "half-duplex state diverged at node {n} slot {now}"
                );
            }
            assert_eq!(
                shadow.any_active(now),
                self.any_active(now),
                "airtime occupancy diverged at slot {now}"
            );
            self.shadow = Some(shadow);
        }
    }

    /// Resolves one ended frame at one receiver. `f` is the full record
    /// behind `e` (fetched once per ended frame by the caller); every
    /// scan below runs on denormalized [`AirRef`] entries, so no slab
    /// access happens here besides the shared-payload clone on success.
    #[allow(clippy::too_many_arguments)]
    fn resolve_at_receiver(
        &self,
        f: &Transmission,
        e: AirRef,
        receiver: NodeId,
        topo: &Topology,
        rng: &mut SmallRng,
        outcome: &mut SlotOutcome,
        interferers: &mut Vec<AirRef>,
        collided: &mut Vec<(Slot, Slot)>,
        senders_pool: &mut Vec<Vec<NodeId>>,
    ) {
        // Half-duplex: a station transmitting during the frame hears
        // nothing. Only the receiver's own on-air records are scanned.
        if self.own[receiver.index()]
            .iter()
            .any(|o| o.overlaps(e.start, e.end))
        {
            return;
        }
        // Interferers: other transmissions audible at the receiver that
        // overlap this frame in time. The audible list already encodes
        // the in-range predicate.
        interferers.clear();
        interferers.extend(
            self.audible[receiver.index()]
                .iter()
                .copied()
                .filter(|t| t.idx != e.idx && t.overlaps(e.start, e.end)),
        );
        if interferers.is_empty() {
            if self.fer > 0.0 && rng.random::<f64>() < self.fer {
                outcome.frame_errors.push(receiver);
                return;
            }
            outcome.receptions.push(Reception {
                receiver,
                frame: Arc::clone(&f.frame),
                captured: false,
            });
            return;
        }

        // Collision: the frame and every interferer burned their airtime
        // (even a capture rescue destroys the other frames of the
        // pile-up). Marking is idempotent per interval, so the dedup
        // here only trims repeated ledger calls.
        let iv = (e.start, e.end);
        if !collided.contains(&iv) {
            collided.push(iv);
        }
        for t in interferers.iter() {
            let iv = (t.start, t.end);
            if !collided.contains(&iv) {
                collided.push(iv);
            }
        }

        // Capture can only rescue a synchronized control-frame
        // pile-up: every frame involved must be a control frame occupying
        // exactly the same slots as `f`.
        let synchronized = e.ctrl
            && interferers
                .iter()
                .all(|t| t.ctrl && t.start == e.start && t.end == e.end);

        let mut captured = None;
        if synchronized {
            // Strongest signal = nearest sender (ties broken by id), per
            // the DS capture model.
            let strongest = interferers
                .iter()
                .map(|t| t.src)
                .chain(std::iter::once(e.src))
                .min_by(|&a, &b| {
                    topo.distance(receiver, a)
                        .partial_cmp(&topo.distance(receiver, b))
                        .expect("distances are finite")
                        .then(a.cmp(&b))
                })
                .expect("at least one sender");
            // Exactly one capture draw per pile-up per receiver: perform it
            // when resolving the strongest frame (only it can be captured).
            if strongest == e.src {
                let k = interferers.len() + 1;
                if rng.random::<f64>() < self.capture.capture_prob(k)
                    && (self.fer == 0.0 || rng.random::<f64>() >= self.fer)
                {
                    captured = Some(strongest);
                    outcome.receptions.push(Reception {
                        receiver,
                        frame: Arc::clone(&f.frame),
                        captured: true,
                    });
                }
                // Record the pile-up once, from the strongest frame's
                // perspective.
                let mut senders = senders_pool.pop().unwrap_or_default();
                senders.extend(interferers.iter().map(|t| t.src));
                senders.push(e.src);
                senders.sort();
                outcome.collisions.push(CollisionEvent {
                    receiver,
                    senders,
                    captured,
                });
            }
        } else {
            let mut senders = senders_pool.pop().unwrap_or_default();
            senders.extend(interferers.iter().map(|t| t.src));
            senders.push(e.src);
            senders.sort();
            outcome.collisions.push(CollisionEvent {
                receiver,
                senders,
                captured: None,
            });
        }
    }

    /// Counts collision events into the running total. Called by the
    /// engine after tracing, so the trace and the counter agree.
    pub fn count_collisions(&mut self, n: usize) {
        self.collisions_total += n as u64;
    }

    /// Drops transmissions that can no longer interfere with anything:
    /// a frame ended at `e` can only overlap frames still on the air if
    /// one of them started before `e`, and any such frame has length
    /// greater than `now - e`; beyond the longest frame length seen, the
    /// record is garbage. Drains the end-bucket ring in end order, so
    /// each call is O(records actually expiring), and unregisters each
    /// record from the per-node lists (`topo` supplies the audibility
    /// sets — the same topology resolution uses).
    pub fn prune(&mut self, now: Slot, topo: &Topology) {
        let Some(limit) = now.checked_sub(Slot::from(self.max_len)) else {
            return;
        };
        // Buckets beyond the newest end are empty; after draining up to
        // there the cursor can jump (post-fast-forward calls would
        // otherwise walk millions of empty buckets).
        let drained = limit.min(self.latest_end);
        let er = self.ends.len() as u64;
        while self.prune_cursor <= drained {
            let b = (self.prune_cursor % er) as usize;
            if !self.ends[b].is_empty() {
                // While the cursor is still sweeping up from far behind
                // (fresh channel, post-fast-forward), a bucket can also
                // hold entries whose end merely aliases the cursor slot
                // modulo the ring — keep those, preserving launch order.
                let mut bucket = std::mem::take(&mut self.ends[b]);
                let mut keep = 0;
                for i in 0..bucket.len() {
                    let e = bucket[i];
                    if e.end == self.prune_cursor {
                        let rec = self.slab[e.idx as usize]
                            .take()
                            .expect("end buckets only hold live records");
                        let src = rec.tx.frame.src;
                        list_remove(&mut self.own[src.index()], e.idx);
                        for &r in topo.neighbors(src) {
                            list_remove(&mut self.audible[r.index()], e.idx);
                        }
                        self.free.push(e.idx);
                        self.live -= 1;
                    } else {
                        debug_assert!(e.end > self.prune_cursor);
                        bucket[keep] = e;
                        keep += 1;
                    }
                }
                bucket.truncate(keep);
                self.ends[b] = bucket;
            }
            self.prune_cursor += 1;
        }
        self.prune_cursor = self.prune_cursor.max(limit + 1);
        if let Some(shadow) = &mut self.shadow {
            shadow.prune(now);
        }
    }

    /// Number of transmission records currently retained (active plus the
    /// short interference-history tail).
    pub fn records(&self) -> usize {
        self.live
    }

    /// Whether any transmission is on the air at slot `now`. O(1) from
    /// the global airtime watermark: a record ending after `now` is
    /// unprunable (hence retained) and, with time-ordered launches,
    /// started at or before `now` — so it occupies `now`. Exact for
    /// queries at or after the latest launch slot, which is the only
    /// pattern the engine (and the monotone shadow crosscheck) issues;
    /// strictly-past slots may over-report.
    pub fn any_active(&self, now: Slot) -> bool {
        self.latest_end > now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Dest, Frame, FrameKind};
    use crate::ids::MsgId;
    use rand::SeedableRng;
    use rmm_geom::Point;

    fn nid(n: u32) -> NodeId {
        NodeId(n)
    }

    fn mid(n: u32) -> MsgId {
        MsgId::new(nid(n), 0)
    }

    /// 0 and 2 both in range of 1; 0 and 2 hidden from each other.
    fn hidden_terminal_topo() -> Topology {
        Topology::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.15, 0.0),
                Point::new(0.3, 0.0),
            ],
            0.2,
        )
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn rts(src: u32, dst: u32) -> Frame {
        Frame::control(FrameKind::Rts, nid(src), Dest::Node(nid(dst)), 0, mid(src))
    }

    #[test]
    fn lone_transmission_is_received_by_all_neighbors() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(1, 0), 0, &topo);
        let out = ch.resolve_ended(1, &topo, &mut r);
        let mut receivers: Vec<NodeId> = out.receptions.iter().map(|x| x.receiver).collect();
        receivers.sort();
        assert_eq!(receivers, vec![nid(0), nid(2)]);
        assert!(out.collisions.is_empty());
    }

    #[test]
    fn out_of_range_node_hears_nothing() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0, &topo);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert_eq!(out.receptions.len(), 1);
        assert_eq!(out.receptions[0].receiver, nid(1));
    }

    #[test]
    fn hidden_terminal_collision_at_middle_node() {
        // 0 and 2 transmit simultaneously: they cannot hear each other, and
        // their frames collide at 1 — the textbook hidden-terminal failure.
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0, &topo);
        ch.begin_tx(rts(2, 1), 0, &topo);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert!(out.receptions.is_empty());
        assert_eq!(out.collisions.len(), 1);
        assert_eq!(out.collisions[0].receiver, nid(1));
        assert_eq!(out.collisions[0].senders, vec![nid(0), nid(2)]);
    }

    #[test]
    fn half_duplex_sender_misses_overlapping_frame() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        // 1 transmits a 1-slot frame while 0 also transmits: 1 is deaf.
        ch.begin_tx(rts(1, 2), 0, &topo);
        ch.begin_tx(rts(0, 1), 0, &topo);
        let out = ch.resolve_ended(1, &topo, &mut r);
        // Node 1's frame is heard fine by 0? No: 0 is transmitting too.
        // Node 2 hears 1's frame cleanly (0 is out of 2's range).
        assert_eq!(out.receptions.len(), 1);
        assert_eq!(out.receptions[0].receiver, nid(2));
        assert_eq!(out.receptions[0].frame.src, nid(1));
    }

    #[test]
    fn partial_overlap_destroys_long_frame() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::ZorziRao);
        let mut r = rng();
        // 0 sends 5-slot data to 1; 2 fires a control frame mid-way.
        ch.begin_tx(
            Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 5),
            0,
            &topo,
        );
        ch.begin_tx(rts(2, 1), 2, &topo);
        let out3 = ch.resolve_ended(3, &topo, &mut r);
        // The control frame also dies at 1 (overlap, not synchronized).
        assert!(out3.receptions.iter().all(|x| x.receiver != nid(1)));
        let out5 = ch.resolve_ended(5, &topo, &mut r);
        assert!(
            out5.receptions.is_empty(),
            "data frame should be destroyed at node 1"
        );
        assert_eq!(out5.collisions.len(), 1);
    }

    #[test]
    fn capture_none_never_rescues_synchronized_controls() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0, &topo);
        ch.begin_tx(rts(2, 1), 0, &topo);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert!(out.receptions.is_empty());
    }

    #[test]
    fn capture_certain_rescues_strongest() {
        // Capture model that always captures: the nearer sender wins.
        let topo = Topology::new(
            vec![
                Point::new(0.0, 0.0),  // receiver... actually sender 0
                Point::new(0.05, 0.0), // receiver 1
                Point::new(0.2, 0.0),  // sender 2 (farther from 1)
            ],
            0.2,
        );
        let mut ch = Channel::new(Capture::Rayleigh { z0: 0.0 }); // prob = k·1 ≥ 1 → clamped to 1
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0, &topo);
        ch.begin_tx(rts(2, 1), 0, &topo);
        let out = ch.resolve_ended(1, &topo, &mut r);
        let got: Vec<_> = out
            .receptions
            .iter()
            .filter(|x| x.receiver == nid(1))
            .collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].frame.src, nid(0), "nearest sender must capture");
        assert!(got[0].captured);
    }

    #[test]
    fn capture_statistics_match_model() {
        // Two synchronized CTS frames, C_2 = 0.55: over many trials the
        // strongest should be captured roughly 55% of the time.
        let topo = Topology::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.05, 0.0),
                Point::new(0.2, 0.0),
            ],
            0.2,
        );
        let mut r = rng();
        let trials = 4000;
        let mut captured = 0;
        for i in 0..trials {
            let mut ch = Channel::new(Capture::ZorziRao);
            ch.begin_tx(rts(0, 1), i, &topo);
            ch.begin_tx(rts(2, 1), i, &topo);
            let out = ch.resolve_ended(i + 1, &topo, &mut r);
            captured += out
                .receptions
                .iter()
                .filter(|x| x.receiver == nid(1))
                .count();
        }
        let rate = captured as f64 / trials as f64;
        assert!(
            (rate - 0.55).abs() < 0.04,
            "capture rate {rate} too far from 0.55"
        );
    }

    #[test]
    fn busy_prev_slot_reflects_occupancy() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        ch.begin_tx(
            Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 5),
            0,
            &topo,
        );
        // Node 1 (in range): busy for decisions at slots 1..=5.
        assert!(!ch.busy_prev_slot(nid(1), 0, &topo));
        for t in 1..=5 {
            assert!(ch.busy_prev_slot(nid(1), t, &topo), "slot {t}");
        }
        assert!(!ch.busy_prev_slot(nid(1), 6, &topo));
        // Node 2 (out of 0's range): never busy.
        for t in 0..7 {
            assert!(!ch.busy_prev_slot(nid(2), t, &topo));
        }
        // The sender itself senses its own transmission.
        assert!(ch.busy_prev_slot(nid(0), 3, &topo));
    }

    #[test]
    fn is_transmitting_served_from_on_air_records() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        assert!(!ch.is_transmitting(nid(0), 0), "idle channel");
        ch.begin_tx(
            Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 5),
            2,
            &topo,
        );
        ch.begin_tx(rts(2, 1), 2, &topo);
        for t in 2..7 {
            assert!(ch.is_transmitting(nid(0), t), "slot {t}");
        }
        assert!(!ch.is_transmitting(nid(0), 1), "before airtime");
        assert!(!ch.is_transmitting(nid(0), 7), "after airtime");
        assert!(ch.is_transmitting(nid(2), 2));
        assert!(!ch.is_transmitting(nid(2), 3), "control frame ended");
        assert!(!ch.is_transmitting(nid(1), 4), "never transmitted");
        // The record outlives its airtime (interference history) but the
        // predicate stays false; once pruned it stays false too.
        let _ = ch.resolve_ended(3, &topo, &mut r);
        let _ = ch.resolve_ended(7, &topo, &mut r);
        ch.prune(100, &topo);
        assert_eq!(ch.records(), 0);
        assert!(!ch.is_transmitting(nid(0), 4));
    }

    #[test]
    fn prune_keeps_interference_history() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        // Long data from 0 at [0,5); short control from 2 at [0,1).
        ch.begin_tx(
            Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 5),
            0,
            &topo,
        );
        ch.begin_tx(rts(2, 1), 0, &topo);
        let _ = ch.resolve_ended(1, &topo, &mut r);
        ch.prune(1, &topo);
        // The ended control frame must survive pruning: it still overlaps
        // the ongoing data frame and must destroy it at slot 5.
        let out = ch.resolve_ended(5, &topo, &mut r);
        assert!(out.receptions.is_empty());
        // Eventually records are dropped.
        ch.prune(100, &topo);
        assert_eq!(ch.records(), 0);
    }

    #[test]
    fn burst_channel_drops_receptions_into_burst_errors() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        // p = 1, r = 0: every chain goes Bad on its first step and stays
        // there, so every otherwise clean reception is lost.
        ch.set_burst(GilbertElliott::new(1.0, 0.0), 9);
        let mut r = rng();
        for i in 0..5 {
            ch.begin_tx(rts(1, 0), i * 2, &topo);
            let out = ch.resolve_ended(i * 2 + 1, &topo, &mut r);
            assert!(out.receptions.is_empty());
            assert_eq!(out.burst_errors.len(), 2, "receivers 0 and 2");
            ch.prune(i * 2 + 1, &topo);
        }
        assert_eq!(ch.burst_errors_total, 10);
    }

    #[test]
    fn burst_p_zero_is_inert() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        ch.set_burst(GilbertElliott::new(0.0, 0.5), 9);
        let mut r = rng();
        ch.begin_tx(rts(1, 0), 0, &topo);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert_eq!(out.receptions.len(), 2);
        assert!(out.burst_errors.is_empty());
        assert_eq!(ch.burst_errors_total, 0);
    }

    #[test]
    fn any_active_tracks_airtime() {
        // Queries advance monotonically with the launches, matching the
        // engine's pattern (the O(1) watermark answers exactly for
        // `now` at or after the latest launch slot).
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        assert!(!ch.any_active(0));
        assert!(!ch.any_active(2));
        ch.begin_tx(rts(0, 1), 3, &topo);
        assert!(ch.any_active(3));
        assert!(!ch.any_active(4));
        ch.begin_tx(
            Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 3),
            5,
            &topo,
        );
        assert!(ch.any_active(5));
        assert!(ch.any_active(7));
        assert!(!ch.any_active(8));
    }

    #[test]
    fn crosscheck_shadows_a_saturated_history() {
        // Drive an irregular launch schedule (overlaps, pile-ups, FER,
        // bursts, long frames) with the naive shadow attached: every
        // resolve asserts byte-identical outcomes internally.
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::ZorziRao);
        ch.set_fer(0.05);
        ch.set_burst(GilbertElliott::new(0.1, 0.4), 7);
        ch.enable_crosscheck();
        let mut r = rng();
        let mut total = 0;
        // Engine phase order per slot: resolve first, then launch, then
        // prune — the crosscheck's carrier-sense asserts rely on every
        // retained record having started before the resolved slot.
        for slot in 0..200u64 {
            let out = ch.resolve_ended(slot, &topo, &mut r);
            total += out.receptions.len() + out.collisions.len();
            if slot % 3 == 0 && !ch.is_transmitting(nid(0), slot) {
                ch.begin_tx(
                    Frame::data(nid(0), Dest::Node(nid(1)), 4, mid(0), 4),
                    slot,
                    &topo,
                );
            }
            if slot % 5 == 0 && !ch.is_transmitting(nid(2), slot) {
                ch.begin_tx(rts(2, 1), slot, &topo);
            }
            if slot % 7 == 0 && !ch.is_transmitting(nid(1), slot) {
                ch.begin_tx(rts(1, 0), slot, &topo);
            }
            ch.prune(slot, &topo);
        }
        assert!(total > 0, "schedule produced no channel activity");
    }

    #[test]
    fn max_len_growth_rebuilds_rings_consistently() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        ch.enable_crosscheck();
        let mut r = rng();
        // Short frames establish state, then a much longer frame forces a
        // ring rebuild mid-history; resolution must stay identical.
        ch.begin_tx(rts(2, 1), 0, &topo);
        let _ = ch.resolve_ended(1, &topo, &mut r);
        ch.begin_tx(
            Frame::data(nid(0), Dest::Node(nid(1)), 9, mid(0), 9),
            1,
            &topo,
        );
        for slot in 2..=12 {
            let _ = ch.resolve_ended(slot, &topo, &mut r);
            ch.prune(slot, &topo);
        }
        // The 9-slot frame's record stays until its interference window
        // closes (end 10 + max_len 9), then pruning drains it.
        assert_eq!(ch.records(), 1);
        ch.prune(19, &topo);
        assert_eq!(ch.records(), 0);
    }
}
