//! The shared radio channel: transmission bookkeeping and per-receiver
//! reception resolution.
//!
//! Reception rule (per receiver `r`, for a frame `f` whose airtime just
//! ended): `r` decodes `f` iff
//!
//! 1. `r` is within the transmission radius of `f`'s sender,
//! 2. `r` was not itself transmitting during any slot of `f` (half-duplex),
//! 3. no other transmission audible at `r` overlapped `f` in time — unless
//!    *all* overlapping frames are control frames occupying exactly the
//!    same slot (a synchronized pile-up, e.g. simultaneous CTS replies), in
//!    which case the strongest frame (nearest sender) is decoded with the
//!    capture probability of the configured [`Capture`] model.
//!
//! Every audible station receives every decodable frame (promiscuous
//! delivery); MAC layers decide whether a frame is addressed to them or
//! triggers a NAV yield.

use crate::capture::Capture;
use crate::fault::{BurstChain, GilbertElliott};
use crate::frame::Frame;
use crate::ids::{NodeId, Slot};
use crate::ledger::AirtimeLedger;
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A frame on the air, occupying slots `[start, end)`.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// The frame being transmitted.
    pub frame: Frame,
    /// First occupied slot.
    pub start: Slot,
    /// One past the last occupied slot.
    pub end: Slot,
}

impl Transmission {
    #[inline]
    fn overlaps(&self, other: &Transmission) -> bool {
        self.start < other.end && other.start < self.end
    }

    #[inline]
    fn occupies(&self, slot: Slot) -> bool {
        self.start <= slot && slot < self.end
    }
}

/// A successfully decoded frame, to be delivered to `receiver`.
#[derive(Debug, Clone)]
pub struct Reception {
    /// Station that decoded the frame.
    pub receiver: NodeId,
    /// The decoded frame.
    pub frame: Frame,
    /// Whether decoding required the capture effect.
    pub captured: bool,
}

/// A collision observed at a receiver (for tracing and statistics).
#[derive(Debug, Clone)]
pub struct CollisionEvent {
    /// Station at which the frames collided.
    pub receiver: NodeId,
    /// Senders of the frames involved.
    pub senders: Vec<NodeId>,
    /// The sender whose frame was captured, if any.
    pub captured: Option<NodeId>,
}

/// Result of resolving one slot's ended transmissions.
#[derive(Debug, Default)]
pub struct SlotOutcome {
    /// Frames decoded this slot, in deterministic order.
    pub receptions: Vec<Reception>,
    /// Collisions observed this slot.
    pub collisions: Vec<CollisionEvent>,
    /// Receivers that lost an otherwise clean frame to a random frame
    /// error this slot.
    pub frame_errors: Vec<NodeId>,
    /// Receivers that lost an otherwise decodable frame to the
    /// Gilbert–Elliott burst channel this slot.
    pub burst_errors: Vec<NodeId>,
}

impl SlotOutcome {
    /// Empties all event lists, keeping their allocations.
    pub fn clear(&mut self) {
        self.receptions.clear();
        self.collisions.clear();
        self.frame_errors.clear();
        self.burst_errors.clear();
    }
}

/// Burst-loss state: the configured model, one chain per receiver, and
/// the model's own RNG stream (isolated from the i.i.d. FER / capture
/// draws so enabling bursts never perturbs the other streams).
#[derive(Debug)]
struct BurstState {
    model: GilbertElliott,
    rng: SmallRng,
    chains: Vec<BurstChain>,
}

impl BurstState {
    /// Steps the chains over this slot's decoded receptions (in
    /// deterministic reception order) and moves losses from
    /// `outcome.receptions` to `outcome.burst_errors`. Returns the number
    /// of frames lost. Chains advance only on reception attempts, so the
    /// naive and event-horizon steppers (which see identical reception
    /// sequences) stay bit-exact.
    fn apply(&mut self, outcome: &mut SlotOutcome) -> u64 {
        let mut lost = 0;
        let mut i = 0;
        while i < outcome.receptions.len() {
            let r = outcome.receptions[i].receiver;
            if r.index() >= self.chains.len() {
                self.chains
                    .resize(r.index() + 1, BurstChain::new(self.model));
            }
            if self.chains[r.index()].step(&mut self.rng) {
                outcome.burst_errors.push(r);
                outcome.receptions.remove(i);
                lost += 1;
            } else {
                i += 1;
            }
        }
        lost
    }
}

/// The shared radio medium.
#[derive(Debug)]
pub struct Channel {
    transmissions: Vec<Transmission>,
    capture: Capture,
    max_len: u32,
    /// One past the last slot any transmission ever begun will occupy
    /// (monotone). Slots at or beyond it are dead air unless a new
    /// transmission starts first.
    latest_end: Slot,
    /// Scratch: indices of transmissions ending at the resolved slot.
    ended_scratch: Vec<usize>,
    /// Scratch: indices of interferers at one receiver.
    interferer_scratch: Vec<usize>,
    /// Scratch: slot intervals of frames destroyed by collisions during
    /// one resolution pass, drained into the ledger afterwards.
    collided_scratch: Vec<(Slot, Slot)>,
    /// Per-slot airtime classification (idle / data / control /
    /// collision), stamped as transmissions start and resolve.
    ledger: AirtimeLedger,
    /// Independent per-reception frame error probability (transmission
    /// errors other than collisions — noise, fading). The paper's
    /// Section 6 analysis folds these into its `q`; default 0.
    fer: f64,
    /// Gilbert–Elliott burst-loss state, if configured.
    burst: Option<BurstState>,
    /// Count of frame receptions destroyed by collisions (monotone).
    pub collisions_total: u64,
    /// Count of frame receptions destroyed by random frame errors.
    pub frame_errors_total: u64,
    /// Count of frame receptions destroyed by the burst-error channel.
    pub burst_errors_total: u64,
    /// Count of slots during which at least one transmission was on the
    /// air anywhere in the network (global airtime utilization).
    pub busy_slots: u64,
}

impl Channel {
    /// Creates an idle channel with the given capture model.
    pub fn new(capture: Capture) -> Self {
        Channel {
            transmissions: Vec::new(),
            capture,
            max_len: 1,
            latest_end: 0,
            ended_scratch: Vec::new(),
            interferer_scratch: Vec::new(),
            collided_scratch: Vec::new(),
            ledger: AirtimeLedger::new(),
            fer: 0.0,
            burst: None,
            collisions_total: 0,
            frame_errors_total: 0,
            burst_errors_total: 0,
            busy_slots: 0,
        }
    }

    /// Sets the independent frame error rate applied to every otherwise
    /// successful reception.
    pub fn set_fer(&mut self, fer: f64) {
        assert!(
            (0.0..1.0).contains(&fer),
            "frame error rate must be in [0, 1)"
        );
        self.fer = fer;
    }

    /// The configured frame error rate.
    pub fn fer(&self) -> f64 {
        self.fer
    }

    /// Enables the Gilbert–Elliott burst-error channel, seeding its
    /// dedicated RNG stream. Per-receiver chains start in the Good state
    /// and advance once per reception attempt at that receiver.
    pub fn set_burst(&mut self, model: GilbertElliott, seed: u64) {
        let model = GilbertElliott::new(model.p, model.r); // re-validate
        self.burst = Some(BurstState {
            model,
            rng: SmallRng::seed_from_u64(seed),
            chains: Vec::new(),
        });
    }

    /// The configured burst model, if any.
    pub fn burst(&self) -> Option<GilbertElliott> {
        self.burst.as_ref().map(|b| b.model)
    }

    /// The configured capture model.
    pub fn capture(&self) -> Capture {
        self.capture
    }

    /// Starts a transmission at slot `now`. Panics (debug) if the sender
    /// already has a frame on the air — MAC layers are half-duplex.
    pub fn begin_tx(&mut self, frame: Frame, now: Slot) {
        debug_assert!(
            !self
                .transmissions
                .iter()
                .any(|t| t.frame.src == frame.src && t.end > now),
            "station {} started a transmission while already transmitting",
            frame.src
        );
        let len = frame.slots.max(1);
        self.max_len = self.max_len.max(len);
        let end = now + Slot::from(len);
        self.latest_end = self.latest_end.max(end);
        self.ledger.mark_tx(frame.kind, now, end);
        self.transmissions.push(Transmission {
            start: now,
            end,
            frame,
        });
    }

    /// The per-slot airtime ledger accumulated so far.
    pub fn ledger(&self) -> &AirtimeLedger {
        &self.ledger
    }

    /// Whether slot `slot` is dead air: every transmission ever begun
    /// ends strictly before it, so nothing resolves at `slot`, no
    /// station's carrier sense reads busy at `slot`, and (absent new
    /// transmissions) the same holds for every later slot. The engine's
    /// event-horizon stepper may only skip quiescent slots.
    pub fn quiescent_at(&self, slot: Slot) -> bool {
        self.latest_end < slot
    }

    /// Whether the medium at `node` was busy during slot `now - 1`:
    /// true if any audible transmission (or the node's own) occupied it.
    /// At `now == 0` the medium has no history and reads idle.
    pub fn busy_prev_slot(&self, node: NodeId, now: Slot, topo: &Topology) -> bool {
        if now == 0 {
            return false;
        }
        let prev = now - 1;
        self.transmissions
            .iter()
            .any(|t| t.occupies(prev) && (t.frame.src == node || topo.in_range(node, t.frame.src)))
    }

    /// Writes the carrier-sense map for decisions at slot `now` into
    /// `out`: `out[i]` is true iff the medium at `NodeId(i)` was busy
    /// during slot `now - 1`. Equivalent to calling
    /// [`Channel::busy_prev_slot`] for every station, but computed in
    /// one pass over the active transmissions (marking each sender and
    /// its audible neighbors) instead of rescanning the transmission
    /// list per station.
    pub fn busy_map(&self, now: Slot, topo: &Topology, out: &mut Vec<bool>) {
        out.clear();
        out.resize(topo.len(), false);
        if now == 0 || self.quiescent_at(now) {
            return;
        }
        let prev = now - 1;
        for t in &self.transmissions {
            if !t.occupies(prev) {
                continue;
            }
            out[t.frame.src.index()] = true;
            for &n in topo.neighbors(t.frame.src) {
                out[n.index()] = true;
            }
        }
    }

    /// Whether `node` has a frame of its own on the air at slot `now`.
    pub fn is_transmitting(&self, node: NodeId, now: Slot) -> bool {
        self.transmissions
            .iter()
            .any(|t| t.frame.src == node && t.occupies(now))
    }

    /// Resolves all transmissions whose airtime ends at slot `now` and
    /// returns the decoded receptions plus collision records.
    pub fn resolve_ended(&mut self, now: Slot, topo: &Topology, rng: &mut SmallRng) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        self.resolve_ended_into(now, topo, rng, &mut outcome);
        outcome
    }

    /// Like [`Channel::resolve_ended`], but clears and fills a
    /// caller-owned [`SlotOutcome`], reusing its vectors (and internal
    /// index scratch) across slots instead of allocating fresh ones.
    pub fn resolve_ended_into(
        &mut self,
        now: Slot,
        topo: &Topology,
        rng: &mut SmallRng,
        outcome: &mut SlotOutcome,
    ) {
        outcome.clear();
        if self.quiescent_at(now) {
            return;
        }
        let mut ended = std::mem::take(&mut self.ended_scratch);
        let mut interferers = std::mem::take(&mut self.interferer_scratch);
        let mut collided = std::mem::take(&mut self.collided_scratch);
        ended.clear();
        collided.clear();
        ended.extend((0..self.transmissions.len()).filter(|&i| self.transmissions[i].end == now));
        for &fi in &ended {
            let f = &self.transmissions[fi];
            for &r in topo.neighbors(f.frame.src) {
                self.resolve_at_receiver(
                    fi,
                    r,
                    topo,
                    rng,
                    outcome,
                    &mut interferers,
                    &mut collided,
                );
            }
        }
        for &(s, e) in &collided {
            self.ledger.mark_collided(s, e);
        }
        self.ended_scratch = ended;
        self.interferer_scratch = interferers;
        self.collided_scratch = collided;
        if let Some(burst) = &mut self.burst {
            self.burst_errors_total += burst.apply(outcome);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_at_receiver(
        &self,
        fi: usize,
        receiver: NodeId,
        topo: &Topology,
        rng: &mut SmallRng,
        outcome: &mut SlotOutcome,
        interferers: &mut Vec<usize>,
        collided: &mut Vec<(Slot, Slot)>,
    ) {
        let f = &self.transmissions[fi];
        // Half-duplex: a station transmitting during the frame hears nothing.
        if self
            .transmissions
            .iter()
            .any(|t| t.frame.src == receiver && t.overlaps(f))
        {
            return;
        }
        // Interferers: other transmissions audible at the receiver that
        // overlap this frame in time.
        interferers.clear();
        interferers.extend((0..self.transmissions.len()).filter(|&ti| {
            if ti == fi {
                return false;
            }
            let t = &self.transmissions[ti];
            t.overlaps(f) && topo.in_range(receiver, t.frame.src)
        }));
        if interferers.is_empty() {
            if self.fer > 0.0 && rng.random::<f64>() < self.fer {
                outcome.frame_errors.push(receiver);
                return;
            }
            outcome.receptions.push(Reception {
                receiver,
                frame: f.frame.clone(),
                captured: false,
            });
            return;
        }

        // Collision: the frame and every interferer burned their airtime
        // (even a capture rescue destroys the other frames of the
        // pile-up). The ledger dedups repeated marks, so recording the
        // same intervals at several receivers is harmless.
        collided.push((f.start, f.end));
        for &ti in interferers.iter() {
            let t = &self.transmissions[ti];
            collided.push((t.start, t.end));
        }

        // Capture can only rescue a synchronized control-frame
        // pile-up: every frame involved must be a control frame occupying
        // exactly the same slots as `f`.
        let synchronized = f.frame.kind.is_control()
            && interferers.iter().all(|&ti| {
                let t = &self.transmissions[ti];
                t.frame.kind.is_control() && t.start == f.start && t.end == f.end
            });

        let mut captured = None;
        if synchronized {
            // Strongest signal = nearest sender (ties broken by id), per
            // the DS capture model.
            let strongest = interferers
                .iter()
                .map(|&ti| self.transmissions[ti].frame.src)
                .chain(std::iter::once(f.frame.src))
                .min_by(|&a, &b| {
                    topo.distance(receiver, a)
                        .partial_cmp(&topo.distance(receiver, b))
                        .expect("distances are finite")
                        .then(a.cmp(&b))
                })
                .expect("at least one sender");
            // Exactly one capture draw per pile-up per receiver: perform it
            // when resolving the strongest frame (only it can be captured).
            if strongest == f.frame.src {
                let k = interferers.len() + 1;
                if rng.random::<f64>() < self.capture.capture_prob(k)
                    && (self.fer == 0.0 || rng.random::<f64>() >= self.fer)
                {
                    captured = Some(strongest);
                    outcome.receptions.push(Reception {
                        receiver,
                        frame: f.frame.clone(),
                        captured: true,
                    });
                }
                // Record the pile-up once, from the strongest frame's
                // perspective.
                let mut senders: Vec<NodeId> = interferers
                    .iter()
                    .map(|&ti| self.transmissions[ti].frame.src)
                    .collect();
                senders.push(f.frame.src);
                senders.sort();
                outcome.collisions.push(CollisionEvent {
                    receiver,
                    senders,
                    captured,
                });
            }
        } else {
            let mut senders: Vec<NodeId> = interferers
                .iter()
                .map(|&ti| self.transmissions[ti].frame.src)
                .collect();
            senders.push(f.frame.src);
            senders.sort();
            outcome.collisions.push(CollisionEvent {
                receiver,
                senders,
                captured: None,
            });
        }
    }

    /// Counts collision events into the running total. Called by the
    /// engine after tracing, so the trace and the counter agree.
    pub fn count_collisions(&mut self, n: usize) {
        self.collisions_total += n as u64;
    }

    /// Drops transmissions that can no longer interfere with anything:
    /// a frame ended at `e` can only overlap frames still on the air if
    /// one of them started before `e`, and any such frame has length
    /// greater than `now - e`; beyond the longest frame length seen, the
    /// record is garbage.
    pub fn prune(&mut self, now: Slot) {
        let horizon = Slot::from(self.max_len);
        self.transmissions.retain(|t| t.end + horizon > now);
    }

    /// Number of transmission records currently retained (active plus the
    /// short interference-history tail).
    pub fn records(&self) -> usize {
        self.transmissions.len()
    }

    /// Whether any transmission is on the air at slot `now`.
    pub fn any_active(&self, now: Slot) -> bool {
        self.transmissions.iter().any(|t| t.occupies(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Dest, Frame, FrameKind};
    use crate::ids::MsgId;
    use rand::SeedableRng;
    use rmm_geom::Point;

    fn nid(n: u32) -> NodeId {
        NodeId(n)
    }

    fn mid(n: u32) -> MsgId {
        MsgId::new(nid(n), 0)
    }

    /// 0 and 2 both in range of 1; 0 and 2 hidden from each other.
    fn hidden_terminal_topo() -> Topology {
        Topology::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.15, 0.0),
                Point::new(0.3, 0.0),
            ],
            0.2,
        )
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn rts(src: u32, dst: u32) -> Frame {
        Frame::control(FrameKind::Rts, nid(src), Dest::Node(nid(dst)), 0, mid(src))
    }

    #[test]
    fn lone_transmission_is_received_by_all_neighbors() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(1, 0), 0);
        let out = ch.resolve_ended(1, &topo, &mut r);
        let mut receivers: Vec<NodeId> = out.receptions.iter().map(|x| x.receiver).collect();
        receivers.sort();
        assert_eq!(receivers, vec![nid(0), nid(2)]);
        assert!(out.collisions.is_empty());
    }

    #[test]
    fn out_of_range_node_hears_nothing() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert_eq!(out.receptions.len(), 1);
        assert_eq!(out.receptions[0].receiver, nid(1));
    }

    #[test]
    fn hidden_terminal_collision_at_middle_node() {
        // 0 and 2 transmit simultaneously: they cannot hear each other, and
        // their frames collide at 1 — the textbook hidden-terminal failure.
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0);
        ch.begin_tx(rts(2, 1), 0);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert!(out.receptions.is_empty());
        assert_eq!(out.collisions.len(), 1);
        assert_eq!(out.collisions[0].receiver, nid(1));
        assert_eq!(out.collisions[0].senders, vec![nid(0), nid(2)]);
    }

    #[test]
    fn half_duplex_sender_misses_overlapping_frame() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        // 1 transmits a 1-slot frame while 0 also transmits: 1 is deaf.
        ch.begin_tx(rts(1, 2), 0);
        ch.begin_tx(rts(0, 1), 0);
        let out = ch.resolve_ended(1, &topo, &mut r);
        // Node 1's frame is heard fine by 0? No: 0 is transmitting too.
        // Node 2 hears 1's frame cleanly (0 is out of 2's range).
        assert_eq!(out.receptions.len(), 1);
        assert_eq!(out.receptions[0].receiver, nid(2));
        assert_eq!(out.receptions[0].frame.src, nid(1));
    }

    #[test]
    fn partial_overlap_destroys_long_frame() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::ZorziRao);
        let mut r = rng();
        // 0 sends 5-slot data to 1; 2 fires a control frame mid-way.
        ch.begin_tx(Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 5), 0);
        ch.begin_tx(rts(2, 1), 2);
        let out3 = ch.resolve_ended(3, &topo, &mut r);
        // The control frame also dies at 1 (overlap, not synchronized).
        assert!(out3.receptions.iter().all(|x| x.receiver != nid(1)));
        let out5 = ch.resolve_ended(5, &topo, &mut r);
        assert!(
            out5.receptions.is_empty(),
            "data frame should be destroyed at node 1"
        );
        assert_eq!(out5.collisions.len(), 1);
    }

    #[test]
    fn capture_none_never_rescues_synchronized_controls() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0);
        ch.begin_tx(rts(2, 1), 0);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert!(out.receptions.is_empty());
    }

    #[test]
    fn capture_certain_rescues_strongest() {
        // Capture model that always captures: the nearer sender wins.
        let topo = Topology::new(
            vec![
                Point::new(0.0, 0.0),  // receiver... actually sender 0
                Point::new(0.05, 0.0), // receiver 1
                Point::new(0.2, 0.0),  // sender 2 (farther from 1)
            ],
            0.2,
        );
        let mut ch = Channel::new(Capture::Rayleigh { z0: 0.0 }); // prob = k·1 ≥ 1 → clamped to 1
        let mut r = rng();
        ch.begin_tx(rts(0, 1), 0);
        ch.begin_tx(rts(2, 1), 0);
        let out = ch.resolve_ended(1, &topo, &mut r);
        let got: Vec<_> = out
            .receptions
            .iter()
            .filter(|x| x.receiver == nid(1))
            .collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].frame.src, nid(0), "nearest sender must capture");
        assert!(got[0].captured);
    }

    #[test]
    fn capture_statistics_match_model() {
        // Two synchronized CTS frames, C_2 = 0.55: over many trials the
        // strongest should be captured roughly 55% of the time.
        let topo = Topology::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.05, 0.0),
                Point::new(0.2, 0.0),
            ],
            0.2,
        );
        let mut r = rng();
        let trials = 4000;
        let mut captured = 0;
        for i in 0..trials {
            let mut ch = Channel::new(Capture::ZorziRao);
            ch.begin_tx(rts(0, 1), i);
            ch.begin_tx(rts(2, 1), i);
            let out = ch.resolve_ended(i + 1, &topo, &mut r);
            captured += out
                .receptions
                .iter()
                .filter(|x| x.receiver == nid(1))
                .count();
        }
        let rate = captured as f64 / trials as f64;
        assert!(
            (rate - 0.55).abs() < 0.04,
            "capture rate {rate} too far from 0.55"
        );
    }

    #[test]
    fn busy_prev_slot_reflects_occupancy() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        ch.begin_tx(Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 5), 0);
        // Node 1 (in range): busy for decisions at slots 1..=5.
        assert!(!ch.busy_prev_slot(nid(1), 0, &topo));
        for t in 1..=5 {
            assert!(ch.busy_prev_slot(nid(1), t, &topo), "slot {t}");
        }
        assert!(!ch.busy_prev_slot(nid(1), 6, &topo));
        // Node 2 (out of 0's range): never busy.
        for t in 0..7 {
            assert!(!ch.busy_prev_slot(nid(2), t, &topo));
        }
        // The sender itself senses its own transmission.
        assert!(ch.busy_prev_slot(nid(0), 3, &topo));
    }

    #[test]
    fn prune_keeps_interference_history() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        let mut r = rng();
        // Long data from 0 at [0,5); short control from 2 at [0,1).
        ch.begin_tx(Frame::data(nid(0), Dest::Node(nid(1)), 0, mid(0), 5), 0);
        ch.begin_tx(rts(2, 1), 0);
        let _ = ch.resolve_ended(1, &topo, &mut r);
        ch.prune(1);
        // The ended control frame must survive pruning: it still overlaps
        // the ongoing data frame and must destroy it at slot 5.
        let out = ch.resolve_ended(5, &topo, &mut r);
        assert!(out.receptions.is_empty());
        // Eventually records are dropped.
        ch.prune(100);
        assert_eq!(ch.records(), 0);
    }

    #[test]
    fn burst_channel_drops_receptions_into_burst_errors() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        // p = 1, r = 0: every chain goes Bad on its first step and stays
        // there, so every otherwise clean reception is lost.
        ch.set_burst(GilbertElliott::new(1.0, 0.0), 9);
        let mut r = rng();
        for i in 0..5 {
            ch.begin_tx(rts(1, 0), i * 2);
            let out = ch.resolve_ended(i * 2 + 1, &topo, &mut r);
            assert!(out.receptions.is_empty());
            assert_eq!(out.burst_errors.len(), 2, "receivers 0 and 2");
            ch.prune(i * 2 + 1);
        }
        assert_eq!(ch.burst_errors_total, 10);
    }

    #[test]
    fn burst_p_zero_is_inert() {
        let topo = hidden_terminal_topo();
        let mut ch = Channel::new(Capture::None);
        ch.set_burst(GilbertElliott::new(0.0, 0.5), 9);
        let mut r = rng();
        ch.begin_tx(rts(1, 0), 0);
        let out = ch.resolve_ended(1, &topo, &mut r);
        assert_eq!(out.receptions.len(), 2);
        assert!(out.burst_errors.is_empty());
        assert_eq!(ch.burst_errors_total, 0);
    }

    #[test]
    fn any_active_tracks_airtime() {
        let mut ch = Channel::new(Capture::None);
        assert!(!ch.any_active(0));
        ch.begin_tx(rts(0, 1), 3);
        assert!(!ch.any_active(2));
        assert!(ch.any_active(3));
        assert!(!ch.any_active(4));
    }
}
