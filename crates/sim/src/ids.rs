//! Identifiers: stations, messages, slots.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulation time, counted in slots from 0.
pub type Slot = u64;

/// A station (node) identifier; stations are dense indices `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The station's index into dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A MAC-level message identifier: originating station plus a per-station
/// sequence number (the paper's BMW protocol explicitly carries sequence
/// numbers in RTS/CTS frames; we give every protocol the same id space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MsgId {
    /// Originating station.
    pub src: NodeId,
    /// Per-station sequence number, starting at 0.
    pub seq: u32,
}

impl MsgId {
    /// Creates a message id.
    pub fn new(src: NodeId, seq: u32) -> Self {
        MsgId { src, seq }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.src, self.seq)
    }
}

/// Multiply-rotate hasher for small fixed-width keys ([`MsgId`],
/// [`NodeId`]). The std default (SipHash) costs more than the rest of a
/// reception's bookkeeping combined on the saturated path; id keys need
/// no HashDoS resistance — they are dense, simulator-generated values —
/// so a two-instruction mix per word is enough.
#[derive(Clone, Copy, Default)]
pub struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (derive may hash padding-free structs as raw
        // bytes on some layouts); word-at-a-time keeps it cheap.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(26);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix-style finalizer: low bits (the ones hash tables
        // index with) depend on every input bit.
        let mut h = self.0;
        h ^= h >> 31;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^ (h >> 27)
    }
}

/// `BuildHasher` for [`IdHasher`]-keyed tables.
pub type BuildIdHasher = std::hash::BuildHasherDefault<IdHasher>;

/// A hash set of message ids using the cheap id hasher.
pub type MsgSet = std::collections::HashSet<MsgId, BuildIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_index_roundtrip() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId(0).index(), 0);
    }

    #[test]
    fn msg_ids_are_distinct_across_sources_and_seqs() {
        let mut set = HashSet::new();
        for src in 0..4 {
            for seq in 0..4 {
                assert!(set.insert(MsgId::new(NodeId(src), seq)));
            }
        }
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(MsgId::new(NodeId(3), 9).to_string(), "n3#9");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(MsgId::new(NodeId(1), 5) < MsgId::new(NodeId(2), 0));
        assert!(MsgId::new(NodeId(1), 5) < MsgId::new(NodeId(1), 6));
    }
}
