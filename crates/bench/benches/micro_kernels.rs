//! Micro-benchmarks of the hot kernels underneath everything else: the
//! geometry engine (cover angles, arc unions, cover sets) and the slotted
//! channel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm::geom::{cover_angle, covers_disk, greedy_cover_set, min_cover_set, Arc, ArcSet, Point};
use rmm::prelude::*;
use std::hint::black_box;

const R: f64 = 0.2;

fn disk_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| loop {
            let x: f64 = rng.random_range(-R..=R);
            let y: f64 = rng.random_range(-R..=R);
            if x * x + y * y <= R * R {
                break Point::new(0.5 + x, 0.5 + y);
            }
        })
        .collect()
}

fn bench_geometry(c: &mut Criterion) {
    let pts = disk_points(64, 7);
    c.bench_function("geom_cover_angle", |b| {
        b.iter(|| cover_angle(black_box(&pts[0]), black_box(&pts[1]), R))
    });

    c.bench_function("geom_arcset_union_16", |b| {
        let arcs: Vec<Arc> = (0..16).map(|i| Arc::new(i as f64 * 0.4, 0.5)).collect();
        b.iter(|| {
            let set = ArcSet::from_arcs(arcs.iter().copied());
            set.covers_full_circle()
        })
    });

    c.bench_function("geom_covers_disk_12", |b| {
        let cover = &pts[1..13];
        b.iter(|| covers_disk(black_box(&pts[0]), black_box(cover), R))
    });

    let mut g = c.benchmark_group("geom_cover_set");
    for n in [6usize, 10, 20] {
        let pts = disk_points(n, 11);
        let set: Vec<usize> = (0..n).collect();
        g.bench_with_input(BenchmarkId::new("min", n), &n, |b, _| {
            b.iter(|| min_cover_set(black_box(&pts), black_box(&set), R))
        });
        g.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| greedy_cover_set(black_box(&pts), black_box(&set), R))
        });
    }
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    // A dense cell where every slot resolves receptions.
    c.bench_function("sim_engine_idle_slot_100nodes", |b| {
        let topo = rmm::workload::uniform_square(100, 0.2, 1);
        let mut nodes =
            rmm::mac::MacNode::build_network(&topo, ProtocolKind::Ieee80211, Default::default(), 1);
        let mut engine = Engine::new(topo, Capture::ZorziRao, 1);
        b.iter(|| {
            engine.step(&mut nodes);
            engine.now()
        })
    });

    c.bench_function("sim_busy_network_slot", |b| {
        let topo = rmm::workload::uniform_square(100, 0.2, 1);
        let mut nodes =
            rmm::mac::MacNode::build_network(&topo, ProtocolKind::Bmmm, Default::default(), 1);
        let mut engine = Engine::new(topo.clone(), Capture::ZorziRao, 1);
        let mut traffic = rmm::workload::TrafficGen::new(2e-3, Default::default(), 1);
        let mut arrivals = Vec::new();
        let mut t = 0u64;
        b.iter(|| {
            traffic.tick(engine.topology(), t, &mut arrivals);
            for a in &arrivals {
                nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
            }
            engine.step(&mut nodes);
            t += 1;
            t
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    use rmm::sim::{decode_frame, encode_frame, Dest, Frame, FrameKind, MsgId, NodeId};
    let rts = Frame::control(
        FrameKind::Rts,
        NodeId(3),
        Dest::Node(NodeId(7)),
        12,
        MsgId::new(NodeId(3), 41),
    );
    let data = Frame::data(
        NodeId(3),
        Dest::Node(NodeId(7)),
        2,
        MsgId::new(NodeId(3), 41),
        5,
    );
    c.bench_function("wire_encode_rts", |b| {
        b.iter(|| encode_frame(black_box(&rts), 50.0, 0))
    });
    let data_octets = encode_frame(&data, 50.0, 200);
    c.bench_function("wire_decode_data_1k", |b| {
        b.iter(|| decode_frame(black_box(&data_octets)).unwrap())
    });
    c.bench_function("wire_crc32_1k", |b| {
        b.iter(|| rmm::sim::crc32(black_box(&data_octets)))
    });
}

criterion_group!(benches, bench_geometry, bench_channel, bench_wire);
criterion_main!(benches);
