//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **capture model** — BSMA's delivery rate under no capture, the
//!   calibrated Zorzi–Rao curve, and physically-derived Rayleigh fading
//!   (capture only matters where CTS/NAK frames pile up),
//! * **NAV** — BMMM with Duration-based yielding disabled, measuring
//!   what the virtual carrier sense buys,
//! * **cover-set algorithm** — greedy vs exact MCS sizes on random
//!   receiver sets (LAMM's control-frame savings depend on them).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm::geom::{greedy_cover_set, min_cover_set, Point};
use rmm::prelude::*;
use rmm::workload::{mean_group_metrics, run_many};
use std::hint::black_box;

fn scenario() -> Scenario {
    Scenario {
        n_nodes: 60,
        sim_slots: 2_000,
        n_runs: 2,
        ..Scenario::default()
    }
}

fn capture_ablation(c: &mut Criterion) {
    let mut rates = Vec::new();
    for (name, capture) in [
        ("none", Capture::None),
        ("zorzi-rao", Capture::ZorziRao),
        ("rayleigh-10dB", Capture::Rayleigh { z0: 10.0 }),
    ] {
        let s = Scenario {
            capture,
            ..scenario()
        };
        let m = mean_group_metrics(&run_many(&s, ProtocolKind::Bsma));
        eprintln!(
            "[ablation_capture] BSMA under {name}: delivery={:.3} phases={:.2}",
            m.delivery_rate, m.avg_contention_phases
        );
        rates.push((name, m.delivery_rate, m.avg_contention_phases));
    }
    // Capture is what keeps BSMA alive: with no capture it must spend
    // more contention phases than with the Zorzi–Rao curve.
    let phases_of = |n: &str| rates.iter().find(|(m, _, _)| *m == n).unwrap().2;
    assert!(
        phases_of("none") > phases_of("zorzi-rao"),
        "no-capture BSMA should burn more contention phases"
    );
    // And BMMM does not care: it never produces synchronized pile-ups.
    let s_none = Scenario {
        capture: Capture::None,
        ..scenario()
    };
    let s_zr = Scenario {
        capture: Capture::ZorziRao,
        ..scenario()
    };
    let bmmm_none = mean_group_metrics(&run_many(&s_none, ProtocolKind::Bmmm));
    let bmmm_zr = mean_group_metrics(&run_many(&s_zr, ProtocolKind::Bmmm));
    eprintln!(
        "[ablation_capture] BMMM: none={:.3} zorzi-rao={:.3} (capture-insensitive)",
        bmmm_none.delivery_rate, bmmm_zr.delivery_rate
    );
    assert!((bmmm_none.delivery_rate - bmmm_zr.delivery_rate).abs() < 0.08);

    let s = Scenario {
        capture: Capture::None,
        ..scenario()
    };
    let mut g = c.benchmark_group("ablation_capture");
    g.sample_size(10);
    g.bench_function("bsma_no_capture_run", |b| {
        b.iter(|| run_one(black_box(&s), ProtocolKind::Bsma, 1))
    });
    g.finish();
}

fn nav_ablation(c: &mut Criterion) {
    let with_nav = scenario();
    let mut without_nav = scenario();
    without_nav.timing.nav_enabled = false;
    let on = mean_group_metrics(&run_many(&with_nav, ProtocolKind::Bmmm));
    let off = mean_group_metrics(&run_many(&without_nav, ProtocolKind::Bmmm));
    eprintln!(
        "[ablation_nav] BMMM delivery with NAV={:.3}, without NAV={:.3}",
        on.delivery_rate, off.delivery_rate
    );
    // Virtual carrier sense should not hurt; at these densities it
    // usually helps by protecting batches from hidden bystanders.
    assert!(on.delivery_rate + 0.05 >= off.delivery_rate);

    let mut g = c.benchmark_group("ablation_nav");
    g.sample_size(10);
    g.bench_function("bmmm_no_nav_run", |b| {
        b.iter(|| run_one(black_box(&without_nav), ProtocolKind::Bmmm, 1))
    });
    g.finish();
}

fn mcs_ablation(c: &mut Criterion) {
    const R: f64 = 0.2;
    let mut rng = SmallRng::seed_from_u64(3);
    let mut exact_total = 0usize;
    let mut greedy_total = 0usize;
    let trials = 200;
    for _ in 0..trials {
        let pts: Vec<Point> = (0..8)
            .map(|_| loop {
                let x: f64 = rng.random_range(-R..=R);
                let y: f64 = rng.random_range(-R..=R);
                if x * x + y * y <= R * R {
                    break Point::new(0.5 + x, 0.5 + y);
                }
            })
            .collect();
        let set: Vec<usize> = (0..8).collect();
        exact_total += min_cover_set(&pts, &set, R).len();
        greedy_total += greedy_cover_set(&pts, &set, R).len();
    }
    eprintln!(
        "[ablation_mcs] mean cover-set size over {trials} random 8-sets: \
         exact={:.2} greedy={:.2}",
        exact_total as f64 / trials as f64,
        greedy_total as f64 / trials as f64
    );
    assert!(exact_total <= greedy_total, "exact MCS can never be larger");
    // Greedy stays within ~20% of the optimum on these instances.
    assert!(
        (greedy_total as f64) <= exact_total as f64 * 1.2,
        "greedy blow-up: {greedy_total} vs {exact_total}"
    );

    c.bench_function("ablation_mcs_exact_8", |b| {
        let pts: Vec<Point> = (0..8)
            .map(|i| {
                let a = i as f64;
                Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin())
            })
            .collect();
        let set: Vec<usize> = (0..8).collect();
        b.iter(|| min_cover_set(black_box(&pts), black_box(&set), R))
    });
}

fn rak_ablation(c: &mut Criterion) {
    // The paper's core Section 4 design point: coordinated (RAK train)
    // vs uncoordinated (simultaneous, colliding) ACK collection.
    let s = scenario();
    let coordinated = mean_group_metrics(&run_many(&s, ProtocolKind::Bmmm));
    let uncoordinated = mean_group_metrics(&run_many(&s, ProtocolKind::BmmmUncoordinated));
    eprintln!(
        "[ablation_rak] delivery with RAK={:.3}, without RAK={:.3};          phases {:.2} vs {:.2}",
        coordinated.delivery_rate,
        uncoordinated.delivery_rate,
        coordinated.avg_contention_phases,
        uncoordinated.avg_contention_phases
    );
    assert!(
        coordinated.delivery_rate > uncoordinated.delivery_rate + 0.1,
        "removing the RAK train must hurt delivery substantially"
    );
    assert!(
        uncoordinated.avg_contention_phases > coordinated.avg_contention_phases,
        "uncoordinated ACK bursts must burn extra contention phases"
    );

    let mut g = c.benchmark_group("ablation_rak");
    g.sample_size(10);
    g.bench_function("bmmm_uncoordinated_run", |b| {
        b.iter(|| run_one(black_box(&s), ProtocolKind::BmmmUncoordinated, 1))
    });
    g.finish();
}

criterion_group!(
    benches,
    capture_ablation,
    nav_ablation,
    mcs_ablation,
    rak_ablation
);
criterion_main!(benches);
