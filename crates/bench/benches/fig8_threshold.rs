//! Figure 8: successful delivery rate vs reliability threshold.
//! One simulation per protocol, re-scored across thresholds (the
//! threshold only affects scoring); prints the series and benchmarks the
//! re-scoring kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use rmm::prelude::*;
use rmm_bench::{bench_scenario, PROTOCOLS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let mut all_msgs: Vec<(ProtocolKind, Vec<MessageMetric>)> = Vec::new();
    for p in PROTOCOLS {
        let results = rmm::workload::run_many(&s, p);
        let msgs: Vec<MessageMetric> = results
            .into_iter()
            .flat_map(|r| r.messages.into_iter().filter(|m| m.is_group))
            .collect();
        all_msgs.push((p, msgs));
    }
    let at = |p: ProtocolKind, t: f64| -> f64 {
        let msgs = &all_msgs.iter().find(|(q, _)| *q == p).unwrap().1;
        RunMetrics::compute(msgs, t).delivery_rate
    };
    for t in [0.5, 0.7, 0.9, 1.0] {
        eprintln!(
            "[fig8] threshold={t:.1}: BSMA={:.3} BMW={:.3} BMMM={:.3} LAMM={:.3}",
            at(ProtocolKind::Bsma, t),
            at(ProtocolKind::Bmw, t),
            at(ProtocolKind::Bmmm, t),
            at(ProtocolKind::Lamm, t)
        );
        // Paper: BMMM/LAMM above BMW/BSMA at every threshold.
        assert!(at(ProtocolKind::Bmmm, t) > at(ProtocolKind::Bmw, t));
        assert!(at(ProtocolKind::Lamm, t) > at(ProtocolKind::Bsma, t));
    }
    // Scoring is monotone decreasing in the threshold.
    for p in PROTOCOLS {
        assert!(at(p, 1.0) <= at(p, 0.5) + 1e-12, "{p:?}");
    }

    let bmmm_msgs = all_msgs
        .iter()
        .find(|(q, _)| *q == ProtocolKind::Bmmm)
        .unwrap()
        .1
        .clone();
    c.bench_function("fig8_rescore_threshold", |b| {
        b.iter(|| RunMetrics::compute(black_box(&bmmm_msgs), black_box(0.9)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
