//! Figures 9a/9b: average contention phases per message vs density and
//! load. Regenerates both series (asserting BMW's dominance of the
//! metric), then benchmarks the contention engine itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rmm::mac::Contention;
use rmm::prelude::*;
use rmm_bench::{bench_scenario, of, protocol_series};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for nodes in [40usize, 120] {
        let s = bench_scenario().with_nodes(nodes);
        let series = protocol_series(&s, &format!("fig9a nodes={nodes}"), |m| {
            m.avg_contention_phases
        });
        // Paper: BMW needs by far the most contention phases; BMMM/LAMM
        // no more than BSMA.
        assert!(of(&series, ProtocolKind::Bmw) > of(&series, ProtocolKind::Bsma));
        assert!(of(&series, ProtocolKind::Bmmm) <= of(&series, ProtocolKind::Bsma) + 0.2);
        assert!(of(&series, ProtocolKind::Lamm) <= of(&series, ProtocolKind::Bsma) + 0.2);
    }
    for rate in [2.5e-4, 1e-3] {
        let s = bench_scenario().with_rate(rate);
        let series = protocol_series(&s, &format!("fig9b rate={rate:.1e}"), |m| {
            m.avg_contention_phases
        });
        assert!(of(&series, ProtocolKind::Bmw) > of(&series, ProtocolKind::Bmmm));
    }

    // Micro: the contention engine's slot poll.
    c.bench_function("fig9_contention_poll", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cont = Contention::idle();
        b.iter(|| {
            cont.begin(31, &mut rng);
            let mut slots = 0u32;
            while !cont.poll(black_box(false), 4) {
                slots += 1;
            }
            slots
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
